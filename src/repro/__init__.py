"""repro — Incremental Diagnosis and Correction of Multiple Faults and
Errors.

A from-scratch Python reproduction of Veneris, Liu, Amiri & Abadir
(DATE 2002): a simulation-based incremental algorithm that diagnoses and
rectifies designs corrupted by multiple stuck-at faults or multiple
design errors, together with the full gate-level EDA substrate it needs
(netlists, bit-parallel logic/fault simulation, ATPG, the Abadir design
error model, benchmark generators and the paper's experiment harnesses).

Quick start::

    from repro import (IncrementalDiagnoser, DiagnosisConfig, Mode,
                       generators, random_patterns,
                       inject_stuck_at_faults)

    spec = generators.c17()
    workload = inject_stuck_at_faults(spec, count=2, seed=7)
    patterns = random_patterns(spec, 512, seed=1)
    result = IncrementalDiagnoser(
        spec, workload.impl, patterns,
        DiagnosisConfig(mode=Mode.STUCK_AT)).run()
    print(result.summary())
"""

from .circuit import (GateType, Gate, Netlist, Line, LineKind, LineTable,
                      SequentialSimulator, bench_io, expand_xor,
                      full_scan, generators, optimize_area, validate)
from .analyze import (Diagnostic, InvariantChecker, LintReport, Severity,
                      lint_netlist, set_load_lint_policy)
from .sim import (FaultSimulator, PatternSet, SimFault, Simulator,
                  all_faults, popcount, simulate, output_rows)
from .faults import (Correction, CorrectionKind, ErrorType, StuckAtFault,
                     Workload, apply_correction, collapsed_faults,
                     inject_design_errors, inject_stuck_at_faults,
                     observable_design_error_workload)
from .tgen import (Podem, deterministic_patterns, diagnosis_vectors,
                   random_patterns, reverse_order_compact)
from .diagnose import (DiagnosisConfig, DiagnosisResult, DiagnosisState,
                       HLevel, IncrementalDiagnoser, Mode, Solution,
                       diagnose, dictionary_diagnosis,
                       exhaustive_multifault_diagnosis, matches_truth,
                       rectifies, theorem1_bound)
from .errors import (DiagnosisError, InjectionError, InvariantViolation,
                     NetlistError, ParseError, ReproError,
                     SimulationError)

__version__ = "1.0.0"

__all__ = [
    "GateType", "Gate", "Netlist", "Line", "LineKind", "LineTable",
    "SequentialSimulator", "bench_io", "expand_xor", "full_scan",
    "generators", "optimize_area", "validate",
    "Diagnostic", "InvariantChecker", "LintReport", "Severity",
    "lint_netlist", "set_load_lint_policy",
    "FaultSimulator", "PatternSet", "SimFault", "Simulator", "all_faults",
    "popcount", "simulate", "output_rows",
    "Correction", "CorrectionKind", "ErrorType", "StuckAtFault",
    "Workload", "apply_correction", "collapsed_faults",
    "inject_design_errors", "inject_stuck_at_faults",
    "observable_design_error_workload",
    "Podem", "deterministic_patterns", "diagnosis_vectors",
    "random_patterns", "reverse_order_compact",
    "DiagnosisConfig", "DiagnosisResult", "DiagnosisState", "HLevel",
    "IncrementalDiagnoser", "Mode", "Solution", "diagnose",
    "dictionary_diagnosis", "exhaustive_multifault_diagnosis",
    "matches_truth", "rectifies", "theorem1_bound",
    "DiagnosisError", "InjectionError", "InvariantViolation",
    "NetlistError", "ParseError", "ReproError", "SimulationError",
    "__version__",
]
