"""Result objects returned by the diagnosis engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CorrectionRecord:
    """One applied correction, in stable (name-based) coordinates.

    ``signature`` survives netlist mutation and tree reordering, so a
    correction *set* is the frozenset of its members' signatures.
    """

    signature: str          # e.g. "sa1@n12" or "gate_replace[NOR]@g7"
    kind: str               # CorrectionKind value
    site: str               # line description ("n12" / "n12->g7.1")
    rank_position: int = 0  # position in its node's ranked list (0 = top)
    round_found: int = 0    # decision-tree round that applied it

    @property
    def driver_name(self) -> str:
        """Name of the gate driving the corrected line."""
        return self.site.split("->", 1)[0]

    @property
    def polarity(self) -> int | None:
        """Stuck value for sa corrections, else None."""
        if self.kind == "sa0":
            return 0
        if self.kind == "sa1":
            return 1
        return None


@dataclass(frozen=True)
class Solution:
    """A valid correction set: rectifies the design on every vector.

    ``netlist`` is the corrected implementation itself (the netlist with
    every correction already applied) — in DEDC mode this is the repaired
    design, in stuck-at mode the fault-modeled good netlist that matches
    the faulty device.

    ``aliases`` lists the descriptions of other correction sets whose
    repaired netlists were SAT-proven equivalent to this one and were
    collapsed into it by the dedup pass
    (:func:`repro.diagnose.dedup.dedup_solutions`); empty unless
    ``DiagnosisConfig.prove_dedup`` was on.
    """

    records: tuple
    netlist: object = None  # repro.circuit.Netlist (kept loose for eq)
    aliases: tuple = ()     # describe() strings of merged equivalents

    @property
    def key(self) -> frozenset:
        return frozenset(r.signature for r in self.records)

    @property
    def size(self) -> int:
        return len(self.records)

    @property
    def sites(self) -> frozenset:
        return frozenset(r.site for r in self.records)

    def describe(self) -> str:
        return " + ".join(sorted(r.signature for r in self.records))


def solution_sort_key(solution: Solution) -> tuple:
    """Canonical solution order: cardinality, then signature tuple.

    Discovery order depends on dict/tree traversal details — serial,
    sharded-parallel and resumed runs all discover the same solutions
    in different orders.  Sorting by (size, sorted signature tuple)
    makes every exact-mode result print identically however it was
    computed.
    """
    return (solution.size,
            tuple(sorted(r.signature for r in solution.records)))


def sort_solutions(solutions) -> list:
    """Solutions in canonical (cardinality, signature-tuple) order."""
    return sorted(solutions, key=solution_sort_key)


@dataclass
class EngineStats:
    """Timing and search-effort counters of one engine run."""

    nodes: int = 0
    rounds: int = 0
    diag_time: float = 0.0    # path trace + heuristic 1 (per-node diagnosis)
    corr_time: float = 0.0    # correction enumeration/screening/ranking
    apply_time: float = 0.0   # structural application + re-simulation
    total_time: float = 0.0
    levels_tried: list = field(default_factory=list)  # "N=2 h=0.3/0.7/0.95"
    truncated: bool = False   # some reachable work was dropped
    #: why the run was truncated, deduplicated, in discovery order —
    #: "node-budget", "time-budget", or a per-shard failure like
    #: "N=2 sa1@n12: worker failed: ...".  Empty iff not truncated.
    truncation_causes: list = field(default_factory=list)
    #: per-shard accounting appended by the scheduler merge, in plan
    #: order: {"shard", "nodes", "truncated", "wall_s", "error"}.
    #: Deterministic except "wall_s" (a measurement).
    shards: list = field(default_factory=list)
    prescreen_dropped: int = 0  # suspects removed by the static pre-screen
    facts_reused: int = 0     # child facts bundles warmed from the parent's
    facts_recomputed: int = 0  # child bundles that had to start from scratch
    delta_edits: int = 0      # journal edits replayed by the warm repairs
    dedup_checked: int = 0    # candidate pairs equivalence-checked
    dedup_merged: int = 0     # proven-equivalent candidates collapsed
    dedup_unknown: int = 0    # checks that exhausted the conflict budget
    dedup_time: float = 0.0   # wall time of the dedup pass
    #: per-stage instrumentation appended by the pipeline session, in
    #: execution order: {"stage", "target", "in", "out", "info",
    #: "wall_s"} — see :mod:`repro.diagnose.pipeline`.  Deterministic
    #: except "wall_s" (a measurement).
    stages: list = field(default_factory=list)

    def merge(self, other: "EngineStats") -> None:
        self.nodes += other.nodes
        self.rounds = max(self.rounds, other.rounds)
        self.diag_time += other.diag_time
        self.corr_time += other.corr_time
        self.apply_time += other.apply_time
        self.total_time += other.total_time
        self.levels_tried.extend(other.levels_tried)
        self.truncated = self.truncated or other.truncated
        for cause in other.truncation_causes:
            if cause not in self.truncation_causes:
                self.truncation_causes.append(cause)
        self.shards.extend(other.shards)
        self.prescreen_dropped += other.prescreen_dropped
        self.facts_reused += other.facts_reused
        self.facts_recomputed += other.facts_recomputed
        self.delta_edits += other.delta_edits
        self.dedup_checked += other.dedup_checked
        self.dedup_merged += other.dedup_merged
        self.dedup_unknown += other.dedup_unknown
        self.dedup_time += other.dedup_time
        self.stages.extend(other.stages)


def mark_truncated(stats: EngineStats, cause: str) -> None:
    """Flag dropped work, recording why (idempotent per cause)."""
    stats.truncated = True
    if cause not in stats.truncation_causes:
        stats.truncation_causes.append(cause)


@dataclass
class DiagnosisResult:
    """Everything a caller gets back from one diagnosis run."""

    solutions: list            # list[Solution] — canonical (cardinality,
    #                            signature-tuple) order in exact mode,
    #                            discovery order in DEDC mode
    stats: EngineStats
    num_vectors: int = 0
    initial_failing: int = 0

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    @property
    def min_size(self) -> int:
        return min((s.size for s in self.solutions), default=0)

    def distinct_sites(self) -> set:
        """Distinct lines a test engineer would probe (Table 1 '# sites')."""
        sites: set = set()
        for sol in self.solutions:
            sites |= set(sol.sites)
        return sites

    def summary(self) -> str:
        lines = [f"{len(self.solutions)} correction set(s); "
                 f"{len(self.distinct_sites())} distinct site(s); "
                 f"{self.stats.nodes} tree node(s) in "
                 f"{self.stats.total_time:.2f}s"]
        if self.stats.dedup_merged:
            lines[0] += (f" ({self.stats.dedup_merged} proven-equivalent"
                         f" candidate(s) collapsed)")
        for sol in self.solutions[:20]:
            line = f"  - {sol.describe()}"
            if sol.aliases:
                line += " (== " + ", ".join(sol.aliases) + ")"
            lines.append(line)
        if len(self.solutions) > 20:
            lines.append(f"  ... +{len(self.solutions) - 20} more")
        return "\n".join(lines)


def matches_truth(solution: Solution, truth) -> bool:
    """Tolerant ground-truth containment check.

    Each injected fault/error must be covered by a correction in the
    solution at the same driver gate (branch vs stem granularity is
    forgiven — tying a stem constant when only one branch remains is the
    same repair) with matching polarity for stuck-at records.
    """
    for rec in truth:
        want_driver = rec.site.split("->", 1)[0]
        want_pol = int(rec.kind[-1]) if rec.kind in ("sa0", "sa1") else None
        covered = False
        for cr in solution.records:
            if cr.driver_name != want_driver:
                continue
            if want_pol is not None and cr.polarity != want_pol:
                continue
            covered = True
            break
        if not covered:
            return False
    return True
