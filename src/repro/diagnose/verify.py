"""Validity checking of correction sets.

The paper's notion of a *valid* correction set is simulation-based: the
corrected implementation must produce the specification's responses for
every vector in V (actual and equivalent corrections both qualify, §2).
"""

from __future__ import annotations

from ..circuit.netlist import Netlist
from ..sim.compare import equivalent
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet


def rectifies(spec: Netlist, impl: Netlist, patterns: PatternSet) -> bool:
    """True when ``impl`` matches ``spec`` on every vector of ``patterns``."""
    spec_out = output_rows(spec, simulate(spec, patterns))
    impl_out = output_rows(impl, simulate(impl, patterns))
    return equivalent(spec_out, impl_out, patterns.nbits)


def exhaustively_equivalent(spec: Netlist, impl: Netlist) -> bool:
    """Ground-truth equivalence by exhaustive simulation (<= 20 PIs).

    Used by tests on small circuits to distinguish *actual* corrections
    from merely vector-set-equivalent ones.
    """
    patterns = PatternSet.exhaustive(spec.num_inputs)
    return rectifies(spec, impl, patterns)
