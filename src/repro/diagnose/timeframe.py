"""Sequential (non-scan) stuck-at diagnosis via time-frame expansion.

The paper's §4 extension: a physical fault in a sequential circuit is
*one* defect that is present in **every** clock cycle, so in the
time-frame-expanded model it occupies the same line in every frame.
Joint corrections — tie the line's instance in all frames to the same
constant — are therefore the unit of search here, reusing the packed
bit-list screening of the combinational engine:

* excitation screen: Theorem 1 applied to the union (over frames) of
  complemented ``Verr`` bits;
* ordering: actual post-correction failing count via one multi-stem
  cone propagation;
* iterative deepening on the number of faults, exactly like the exact
  combinational protocol.

The unroll/simulate/partition setup runs through the shared
``ingest``/``bitlists`` stages of :mod:`repro.diagnose.pipeline` and
the search is a :class:`TimeFrameStrategy`, so per-stage records land
in ``EngineStats.stages`` exactly like the combinational modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..errors import DiagnosisError
from ..circuit.unroll import unroll
from ..sim.logicsim import propagate, simulate
from ..sim.packing import popcount
from . import clock
from .bitlists import error_partition, reference_outputs
from .config import DiagnosisConfig
from .pipeline import DiagnosisSession, SearchStrategy, TraceWriter
from .report import CorrectionRecord, EngineStats, Solution
from .screening import theorem1_bound

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class TimeFrameResult:
    """Outcome of a sequential diagnosis run."""

    solutions: list
    stats: EngineStats
    frames: int
    num_sequences: int

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    def distinct_sites(self) -> set:
        sites: set = set()
        for sol in self.solutions:
            sites |= set(sol.sites)
        return sites


@dataclass
class _JointState:
    """Unrolled-model snapshot under a set of joint corrections."""

    values: np.ndarray
    err_mask: np.ndarray
    num_err: int
    forced: dict = field(default_factory=dict)  # line_index -> value


class TimeFrameStrategy(SearchStrategy):
    """Joint stuck-at search over the unrolled model (§4).

    Iterative deepening on joint-fault cardinality; every target level
    is one ``search`` stage record.  Path trace has no sequential
    analogue here — candidate lines are excitation-screened directly —
    and the reset-masking pre-screen is computed once at ingest, so
    those stages appear in the setup records, not per target.
    """

    name = "time-frame"

    def search(self, session: DiagnosisSession, diag) -> dict:
        stats = session.stats
        solutions: dict = {}
        budget = [diag.max_nodes]

        def dfs(state: _JointState, applied: tuple,
                target: int) -> None:
            remaining = target - len(applied)
            bound = theorem1_bound(state.num_err, remaining)
            candidates = []
            for line in diag.table:
                if line.index in state.forced:
                    continue
                if line.index in diag._masked_lines:
                    stats.prescreen_dropped += 1
                    continue
                for value in (0, 1):
                    delta = diag._joint_delta(state, line.index, value)
                    excited = popcount(delta & state.err_mask)
                    if excited >= max(1, bound):
                        candidates.append((excited, line.index, value))
            candidates.sort(key=lambda c: -c[0])
            for _excited, line_index, value in candidates:
                if budget[0] <= 0 or session.expired():
                    stats.truncated = True
                    return
                budget[0] -= 1
                child = diag._apply_joint(state, line_index, value)
                stats.nodes += 1
                site = diag.table.describe(line_index)
                record = CorrectionRecord(f"sa{value}@{site}",
                                          f"sa{value}", site)
                child_applied = applied + (record,)
                if child.num_err == 0:
                    key = frozenset(r.signature for r in child_applied)
                    solutions.setdefault(key, Solution(child_applied))
                elif len(child_applied) < target:
                    dfs(child, child_applied, target)

        for target in range(1, diag.max_faults + 1):
            nodes_before = stats.nodes
            with session.stage("search", target=target,
                               items_in=len(diag.table)) as rec:
                dfs(diag._root, (), target)
                rec.items_out = len(solutions)
                rec.info = {"nodes": stats.nodes - nodes_before,
                            "budget_left": budget[0],
                            "truncated": stats.truncated}
            if solutions:
                break
        return solutions


class TimeFrameDiagnoser:
    """Diagnose stuck-at faults in a non-scan sequential circuit.

    Args:
        spec: the good sequential netlist (with DFFs).
        device_out_provider: the faulty design — any netlist with the
            same interface (typically the physically faulty copy); it is
            unrolled and simulated to obtain the observed responses.
        sequences: iterable of input sequences (``frames`` cycles each,
            one bit-vector per cycle).
        frames: time frames to expand.
        max_faults: largest joint-fault cardinality attempted.
        config: optional :class:`~repro.diagnose.config.DiagnosisConfig`;
            only ``seq_prescreen`` is consulted here.  When set, lines
            whose driver :func:`repro.analyze.seq.seq_masked_signals`
            proves masked from reset are never tried as suspects (each
            is a proven whole-run no-op on every primary output); every
            skip is counted in ``stats.prescreen_dropped``.
        trace: optional :class:`~repro.diagnose.pipeline.TraceWriter`
            mirroring the stage records as JSONL events.
    """

    def __init__(self, spec: Netlist, device: Netlist, sequences,
                 frames: int = 8, max_faults: int = 2,
                 max_nodes: int = 2000,
                 time_budget: float | None = 60.0,
                 initial_state=0, config=None,
                 trace: TraceWriter | None = None):
        if spec.is_combinational:
            raise DiagnosisError(
                "time-frame diagnosis is for sequential circuits; use "
                "IncrementalDiagnoser for combinational ones")
        from ..circuit.unroll import pack_sequences

        if config is not None:
            config.validate(sequential=True)
        self.spec = spec
        self.frames = frames
        self.max_faults = max_faults
        self.max_nodes = max_nodes
        self.time_budget = time_budget
        self.session = DiagnosisSession(config or DiagnosisConfig(),
                                        trace=trace)
        with self.session.stage("ingest") as rec:
            self.table = LineTable(spec)
            self.model, self.umap = unroll(spec, frames,
                                           initial_state=initial_state)
            device_model, _ = unroll(device, frames,
                                     initial_state=initial_state)
            self.patterns = pack_sequences(spec, self.umap, sequences)
            self.device_out = reference_outputs(device_model,
                                                self.patterns)
            self._line_instances = self._map_lines()
            rec.items_in = self.patterns.nbits
            rec.items_out = len(self.device_out)
            rec.info = {"frames": frames,
                        "sequences": self.patterns.nbits,
                        "unrolled_gates": len(self.model.gates)}
        with self.session.stage("bitlists",
                                items_in=self.patterns.nbits) as rec:
            self._root = self._state_from_values(
                simulate(self.model, self.patterns), {})
            rec.items_out = self._root.num_err
            rec.info = {"num_err": self._root.num_err}
        with self.session.stage("prescreen",
                                items_in=len(self.table)) as rec:
            self._masked_lines: frozenset = frozenset()
            enabled = config is not None and config.seq_prescreen
            if enabled:
                from ..analyze.seq import seq_masked_signals

                masked = seq_masked_signals(spec, initial_state)
                # A branch fault's effect cone is contained in its
                # stem's, so one masked driver disposes of the stem and
                # every branch line it feeds.
                self._masked_lines = frozenset(
                    line.index for line in self.table
                    if line.driver in masked)
            rec.items_out = len(self.table) - len(self._masked_lines)
            rec.info = {"enabled": enabled,
                        "masked_lines": len(self._masked_lines)}
        self.session.freeze_setup()

    # ------------------------------------------------------------------
    def _map_lines(self) -> dict:
        """line index -> per-frame (stem signals, pin overrides).

        A stem fault forces the signal's instance in every frame.  A
        branch fault forces one pin of the sink's instance per frame;
        when the sink is a flip-flop, its unrolled instance is the
        explicit per-frame BUF whose pin 0 is the D input — frame 0's
        BUF reads the reset constant, so the D branch only acts from
        frame 1 on (faithful to the hardware: the reset value does not
        travel through the faulty wire).
        """
        from ..circuit.gatetypes import GateType

        mapping: dict = {}
        for line in self.table:
            stems = []
            pins = []
            sink_is_dff = (line.sink is not None and
                           self.spec.gates[line.sink].gtype
                           is GateType.DFF)
            for t in range(self.frames):
                inst = self.umap.instance[t]
                driver = inst.get(line.driver)
                if driver is None:
                    continue
                if line.is_stem:
                    stems.append(driver)
                    continue
                sink = inst.get(line.sink)
                if sink is None:
                    continue
                if sink_is_dff:
                    if t >= 1:
                        pins.append((sink, 0))
                else:
                    pins.append((sink, line.pin))
            mapping[line.index] = (stems, pins)
        return mapping

    def _state_from_values(self, values: np.ndarray,
                           forced: dict) -> _JointState:
        out = values[self.model.outputs]
        _diff, err, num_err = error_partition(out, self.device_out,
                                              self.patterns.nbits)
        return _JointState(values, err, num_err, dict(forced))

    def _joint_delta(self, state: _JointState, line_index: int,
                     value: int) -> np.ndarray:
        """Union over frames of the bits a joint stuck-at would flip."""
        stems, pins = self._line_instances[line_index]
        delta = np.zeros_like(state.err_mask)
        forced = np.full(len(delta), _ONES, dtype=np.uint64) if value \
            else np.zeros(len(delta), dtype=np.uint64)
        for sig in stems:
            delta |= state.values[sig] ^ forced
        for (sink, pin) in pins:
            src = self.model.gates[sink].fanin[pin]
            delta |= state.values[src] ^ forced
        return delta

    def _apply_joint(self, state: _JointState, line_index: int,
                     value: int) -> _JointState:
        """New state with the joint stuck-at imposed (value overrides,
        no structural mutation — frames share nothing downstream that a
        value override cannot express)."""
        stems, pins = self._line_instances[line_index]
        nwords = state.values.shape[1]
        forced_row = (np.full(nwords, _ONES, dtype=np.uint64) if value
                      else np.zeros(nwords, dtype=np.uint64))
        stem_over = {sig: forced_row for sig in stems}
        pin_over = {(sink, pin): forced_row for (sink, pin) in pins}
        # previously forced lines must stay forced during re-propagation
        for (prev_line, prev_value) in state.forced.items():
            prev_row = (np.full(nwords, _ONES, dtype=np.uint64)
                        if prev_value else
                        np.zeros(nwords, dtype=np.uint64))
            p_stems, p_pins = self._line_instances[prev_line]
            for sig in p_stems:
                stem_over.setdefault(sig, prev_row)
            for key in p_pins:
                pin_over.setdefault(key, prev_row)
        changed = propagate(self.model, state.values,
                            stem_overrides=stem_over,
                            pin_overrides=pin_over)
        values = np.array(state.values, copy=True)
        for idx, row in changed.items():
            values[idx] = row
        forced = dict(state.forced)
        forced[(line_index)] = value
        return self._state_from_values(values, forced)

    # ------------------------------------------------------------------
    def run(self) -> TimeFrameResult:
        session = self.session
        t0 = clock.now()
        stats = session.begin_run(
            time_budget=self.time_budget, mode="time-frame",
            frames=self.frames, vectors=self.patterns.nbits,
            initial_failing=self._root.num_err)
        solutions: dict = {}
        if self._root.num_err != 0:
            solutions = TimeFrameStrategy().search(session, self)
        with session.stage("verify", items_in=len(solutions)) as rec:
            rec.items_out = len(solutions)
            rec.info = {"method": "constructive"}
        with session.stage("report", items_in=len(solutions)) as rec:
            result = TimeFrameResult(list(solutions.values()), stats,
                                     self.frames, self.patterns.nbits)
            rec.items_out = len(result.solutions)
        stats.total_time = clock.now() - t0
        session.end_run(found=result.found,
                        solutions=len(result.solutions),
                        nodes=stats.nodes, truncated=stats.truncated,
                        total_s=stats.total_time)
        return result


def random_sequences(netlist: Netlist, count: int, frames: int,
                     seed: int = 0) -> list:
    """Random per-cycle stimulus for :class:`TimeFrameDiagnoser`."""
    import random

    rng = random.Random(seed)
    num_pis = netlist.num_inputs
    return [[[rng.randint(0, 1) for _ in range(num_pis)]
             for _ in range(frames)]
            for _ in range(count)]
