"""Path-trace: the first diagnosis step.

The paper uses the line-marking procedure of Venkataraman & Fuchs
(similar to critical path tracing): "For an erroneous vector v, path
trace starts from an erroneous primary output for v and traces backwards
toward the primary inputs of the circuit, while marking lines of
interest" (§2).  Its guarantee — it "always marks at least one line from
every set of valid corrections" — is what keeps the incremental search
complete; the test suite checks the guarantee empirically.

Marking rule at a gate, for the vector's simulated (faulty) values:

* if some inputs carry the gate's controlling value, trace through *all*
  controlling inputs;
* otherwise trace through all inputs (all are non-controlling, so every
  one of them is on a potentially sensitized path);
* NOT/BUF inputs always have controlling value (§2) and are always
  traced.

Both the stem line of each traced signal and the branch line of each
traversed fanout branch are marked.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

from ..circuit.gatetypes import GateType, controlling_value
from ..sim.packing import WORD_BITS, bit_indices
from .bitlists import DiagnosisState


def path_trace_vector(state: DiagnosisState, vector: int) -> set:
    """Line indices marked by path-tracing one failing vector."""
    netlist = state.netlist
    table = state.table
    word, bit = divmod(vector, WORD_BITS)
    shift = np.uint64(bit)
    one = np.uint64(1)
    column = ((state.values[:, word] >> shift) & one).astype(np.uint8)
    marked: set = set()
    visited: set = set()
    stack: list = []
    for pos, po in enumerate(netlist.outputs):
        if (int(state.diff[pos, word]) >> bit) & 1:
            stack.append(po)
    gates = netlist.gates
    while stack:
        signal = stack.pop()
        if signal in visited:
            continue
        visited.add(signal)
        marked.add(table.stem(signal).index)
        gate = gates[signal]
        if gate.gtype in (GateType.INPUT, GateType.CONST0,
                          GateType.CONST1, GateType.DFF):
            continue
        ctrl = controlling_value(gate.gtype)
        pins = range(len(gate.fanin))
        if ctrl is not None:
            controlling_pins = [p for p in pins
                                if column[gate.fanin[p]] == ctrl]
            if controlling_pins:
                pins = controlling_pins
        for pin in pins:
            branch = table.branch(signal, pin)
            if branch is not None:
                marked.add(branch.index)
            stack.append(gate.fanin[pin])
    return marked


def derive_seed(base_seed: int, signatures) -> int:
    """Per-node path-trace sampling seed.

    Reusing ``config.seed`` verbatim at every decision-tree node made
    the sampled failing-vector subset *correlated* across the whole
    search: every node with more failing vectors than the sample size
    drew "the same" random indices, so a pathological sample at the
    root stayed pathological all the way down.  Instead each node mixes
    the base seed with its applied-correction signatures.

    The hash is cryptographic (BLAKE2), not ``hash()``: stable across
    processes (``PYTHONHASHSEED``), interpreter versions and the
    worker pool, and independent of the order corrections were applied
    (signatures are sorted), so serial, parallel and resumed runs all
    sample identically at the same tree node.  A node with no applied
    corrections keeps ``base_seed`` itself — root sampling is unchanged
    from earlier releases.
    """
    if not signatures:
        return int(base_seed)
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(base_seed)).encode())
    for signature in sorted(signatures):
        digest.update(b"\x00")
        digest.update(signature.encode())
    return int.from_bytes(digest.digest(), "little")


def path_trace_counts(state: DiagnosisState, max_vectors: int = 24,
                      seed: int = 0) -> np.ndarray:
    """Mark counts per line over a sample of failing vectors.

    Lines with a high count are promoted to the second diagnosis step
    (§3.1: "we allow lines that have a high path-trace count to qualify").
    Returns an int array indexed by line-table position.
    """
    counts = np.zeros(len(state.table), dtype=np.int64)
    failing = bit_indices(state.err_mask, state.patterns.nbits)
    if not failing:
        return counts
    if len(failing) > max_vectors:
        rng = random.Random(seed)
        failing = rng.sample(failing, max_vectors)
    for vector in failing:
        for line in path_trace_vector(state, vector):
            counts[line] += 1
    return counts


def marked_lines(counts: np.ndarray) -> list:
    """Line indices with a nonzero path-trace count, highest count first."""
    nz = np.nonzero(counts)[0]
    return sorted((int(i) for i in nz),
                  key=lambda i: (-int(counts[i]), i))


def top_fraction(counts: np.ndarray, fraction: float) -> list:
    """The "top 5-20%" selection of §3.1 (at least one line).

    Tie-inclusive: every line whose count equals the cut-off line's count
    is kept, so equally-suspicious lines are never dropped arbitrarily.
    """
    ranked = marked_lines(counts)
    if not ranked:
        return []
    keep = max(1, int(round(len(ranked) * fraction)))
    cutoff = counts[ranked[keep - 1]]
    while keep < len(ranked) and counts[ranked[keep]] == cutoff:
        keep += 1
    return ranked[:keep]
