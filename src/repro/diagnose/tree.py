"""The decision tree and its round-based BFS/DFS traversal (§3.3, Fig. 2).

"Every node in this tree indicates a set of potential corrections ...; an
edge represents the application of a single (highly-ranked) correction to
enter the next execution level; the level of a node indicates the number
of corrections performed on the implementation so far. ...  Instead of
visiting nodes in the tree in a strictly BFS or DFS manner, the algorithm
visits them in rounds.  During each round, a single (highly-ranked)
correction is selected from every node currently present.  The correction
is applied to obtain a new node in the next level of the tree.  The
number of nodes in the tree at most doubles with each round."

:class:`DecisionTree` implements exactly that traversal;
:func:`round_visit_order` reproduces Fig. 2's round numbering for a
perfect binary tree (tested against the figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyze.invariants import InvariantChecker
from ..faults.models import apply_correction
from . import clock
from .bitlists import DiagnosisState
from .candidates import corrections_for_line, is_correctable_line
from .config import DiagnosisConfig, HLevel
from .pathtrace import derive_seed, path_trace_counts, top_fraction
from .potential import rank_lines
from .ranking import rank_corrections
from .report import (CorrectionRecord, EngineStats, Solution,
                     mark_truncated)
from .screening import (ScreenedCorrection, prescreen_suspects,
                        screen_corrections)

#: Facts sections the static pre-screen reads; the warm repair covers
#: exactly these and leaves the rest lazy.  Implications are excluded
#: on purpose: child pre-screens run shallow (``deep=False``), and a
#: warmed implication graph would silently upgrade their
#: ``blocked_signals`` verdicts — breaking bit-identity with the
#: ``incremental_facts=False`` path.
PRESCREEN_SECTIONS = frozenset(
    ("constants", "observable", "dominators", "cones"))


def warm_child_facts(parent, child, stats: EngineStats) -> None:
    """Warm ``child``'s dataflow-facts bundle from ``parent``'s.

    ``child`` must be a fresh ``parent.copy()`` (journal snapshot 0)
    mutated only through journalled mutators, so ``edits_since(0)`` is
    exactly the applied correction.  When the parent never materialized
    a bundle, or the correction fell back to a full invalidation, the
    child's first pre-screen recomputes from scratch instead; either
    way exactly one counter moves.
    """
    from ..analyze.dataflow import NetlistFacts
    base = getattr(parent, "_facts", None)
    delta = child.edits_since(0)
    if (not isinstance(base, NetlistFacts)
            or base.version != parent.version or delta is None):
        stats.facts_recomputed += 1
        return
    from ..analyze.incremental import warm_facts
    child._facts = warm_facts(child, base, delta,
                              sections=PRESCREEN_SECTIONS)
    stats.facts_reused += 1
    stats.delta_edits += len(delta)


@dataclass
class Node:
    """One decision-tree node: a partially corrected implementation."""

    state: DiagnosisState
    depth: int = 0
    applied: tuple = ()                 # CorrectionRecords so far
    pending: list | None = None         # ranked ScreenedCorrections
    next_rank: int = 0                  # position of next pending pop

    @property
    def expanded(self) -> bool:
        return self.pending is not None

    @property
    def open(self) -> bool:
        return self.pending is None or self.next_rank < len(self.pending)


class DecisionTree:
    """Round-based traversal for one (target cardinality, h-level) pair."""

    def __init__(self, root_state: DiagnosisState, target_errors: int,
                 h: HLevel, config: DiagnosisConfig,
                 stats: EngineStats | None = None,
                 candidate_fraction: float | None = None,
                 deadline: float | None = None):
        self.target = target_errors
        self.h = h
        self.config = config
        self.candidate_fraction = (candidate_fraction
                                   if candidate_fraction is not None
                                   else config.candidate_fraction)
        self.stats = stats if stats is not None else EngineStats()
        self.deadline = deadline
        self.root = Node(root_state)
        self.open_nodes: list[Node] = [self.root]
        self.solutions: list[Solution] = []
        self._seen_sets: set = set()
        self.invariants = (InvariantChecker()
                           if config.check_invariants else None)

    # ------------------------------------------------------------------
    # per-node candidate computation (the "diagnosis" + "correction"
    # phases of a single algorithm execution; their times are Table 2's
    # "diag." and "corr." columns)
    # ------------------------------------------------------------------
    def expand(self, node: Node) -> None:
        """Fill a node's ranked pending-correction list."""
        state = node.state
        config = self.config
        t0 = clock.now()
        # Per-node seed: reusing config.seed verbatim would correlate
        # the sampled path-trace across the whole search (see
        # pathtrace.derive_seed).
        seed = derive_seed(config.seed,
                           tuple(r.signature for r in node.applied))
        counts = path_trace_counts(state, config.pathtrace_samples,
                                   seed)
        candidate_lines = [line for line
                           in top_fraction(counts, self.candidate_fraction)
                           if is_correctable_line(state, line)]
        if config.static_prescreen:
            candidate_lines, dropped = prescreen_suspects(
                state, candidate_lines, deep=node.depth == 0)
            self.stats.prescreen_dropped += dropped
        potentials = rank_lines(state, candidate_lines, self.h.h1)
        if self.invariants:
            self.invariants.check_lines_live(state, candidate_lines)
        t1 = clock.now()
        self.stats.diag_time += t1 - t0
        required = max(1, int(self.h.h2 * state.num_err))
        screened: list[ScreenedCorrection] = []
        for pot in potentials:
            screened.extend(screen_corrections(
                state, corrections_for_line(state, pot.line, config),
                required, self.h.h3))
        ranked = rank_corrections(state, screened)
        node.pending = [sc for _rank, sc in
                        ranked[: config.corrections_per_node]]
        node.next_rank = 0
        self.stats.corr_time += clock.now() - t1

    # ------------------------------------------------------------------
    def apply(self, node: Node, sc: ScreenedCorrection,
              round_no: int, rank_position: int) -> Node:
        """Create the child node reached by applying one correction."""
        t0 = clock.now()
        state = node.state
        signature = sc.correction.describe(state.netlist, state.table)
        site = state.table.describe(sc.correction.line)
        record = CorrectionRecord(signature, sc.correction.kind.value,
                                  site, rank_position, round_no)
        child_netlist = state.netlist.copy()
        apply_correction(child_netlist, state.table, sc.correction)
        if (self.config.static_prescreen and self.config.incremental_facts
                and node.depth + 1 < self.target):
            # Only children that may expand (and hence pre-screen) are
            # worth warming; frontier nodes never read their facts.
            warm_child_facts(state.netlist, child_netlist, self.stats)
        child_state = DiagnosisState(child_netlist, state.patterns,
                                     state.spec_out)
        if self.invariants:
            self.invariants.check_state(child_state)
        self.stats.apply_time += clock.now() - t0
        self.stats.nodes += 1
        return Node(child_state, node.depth + 1,
                    node.applied + (record,))

    # ------------------------------------------------------------------
    def run(self, stop_at_first: bool = True,
            traversal: str = "rounds") -> list[Solution]:
        """Traverse until a solution, exhaustion, or caps.

        ``traversal`` selects the global flow: ``"rounds"`` is the
        paper's BFS/DFS trade-off; ``"dfs"`` and ``"bfs"`` are the two
        stand-alone strategies §3.3 argues against (kept for the
        ablation benches).
        """
        if traversal == "dfs":
            return self._run_dfs(stop_at_first)
        if traversal == "bfs":
            return self._run_bfs(stop_at_first)
        return self._run_rounds(stop_at_first)

    def _out_of_budget(self) -> bool:
        if self.stats.nodes >= self.config.max_nodes:
            mark_truncated(self.stats, "node-budget")
            return True
        if self.deadline is not None and clock.now() > self.deadline:
            mark_truncated(self.stats, "time-budget")
            return True
        return False

    def _register_child(self, child: Node,
                        stop_at_first: bool) -> bool:
        """Common child bookkeeping; True when the search should stop."""
        key = frozenset(r.signature for r in child.applied)
        if key in self._seen_sets:
            return False
        self._seen_sets.add(key)
        if child.state.rectified:
            self.solutions.append(Solution(child.applied,
                                           child.state.netlist))
            return stop_at_first
        if child.depth < self.target:
            self.open_nodes.append(child)
        return False

    def _run_dfs(self, stop_at_first: bool) -> list[Solution]:
        """Greedy depth-first: always deepen the newest open node."""
        while self.open_nodes:
            if self._out_of_budget():
                break
            node = self.open_nodes[-1]
            if not node.expanded:
                self.expand(node)
            if not node.open:
                self.open_nodes.pop()
                continue
            rank_position = node.next_rank
            sc = node.pending[rank_position]
            node.next_rank += 1
            child = self.apply(node, sc, 0, rank_position)
            if self._register_child(child, stop_at_first):
                return self.solutions
        return self.solutions

    def _run_bfs(self, stop_at_first: bool) -> list[Solution]:
        """Naive breadth-first: exhaust every node level by level."""
        frontier = [self.root]
        for level in range(self.target):
            next_frontier: list[Node] = []
            for node in frontier:
                if not node.expanded:
                    self.expand(node)
                for rank_position, sc in enumerate(node.pending):
                    if self._out_of_budget():
                        return self.solutions
                    child = self.apply(node, sc, level + 1, rank_position)
                    self.open_nodes = next_frontier  # children collect here
                    if self._register_child(child, stop_at_first):
                        return self.solutions
            frontier = next_frontier
            if not frontier:
                break
        return self.solutions

    def _run_rounds(self, stop_at_first: bool = True) -> list[Solution]:
        """Round-based traversal until a solution, exhaustion, or caps."""
        config = self.config
        for round_no in range(1, config.max_rounds + 1):
            self.stats.rounds = max(self.stats.rounds, round_no)
            if not self.open_nodes:
                break
            current = list(self.open_nodes)
            for node in current:
                if self._out_of_budget():
                    return self.solutions
                if not node.expanded:
                    self.expand(node)
                if not node.open:
                    self._close(node)
                    continue
                rank_position = node.next_rank
                sc = node.pending[rank_position]
                node.next_rank += 1
                if not node.open:
                    self._close(node)
                child = self.apply(node, sc, round_no, rank_position)
                key = frozenset(r.signature for r in child.applied)
                if key in self._seen_sets:
                    continue
                self._seen_sets.add(key)
                if child.state.rectified:
                    self.solutions.append(Solution(child.applied,
                                                   child.state.netlist))
                    if stop_at_first:
                        return self.solutions
                    continue
                if child.depth < self.target:
                    self.open_nodes.append(child)
        return self.solutions

    def _close(self, node: Node) -> None:
        if node in self.open_nodes:
            self.open_nodes.remove(node)


def round_visit_order(levels: int) -> dict:
    """Round number in which each node of a perfect binary decision tree
    is *created* by the paper's traversal (Fig. 2).

    Nodes are keyed by their path from the root: a tuple of 0/1 edge
    choices, the root being ``()`` (created in round 0).  Each round,
    every existing node with spare depth spawns its next child: the root
    spawns child (0,) in round 1, (1,) in round 2, and so on — matching
    the round numbers printed on Fig. 2's nodes.
    """
    created = {(): 0}
    children_spawned = {(): 0}
    round_no = 0
    while True:
        round_no += 1
        spawned_any = False
        for path in sorted(created, key=lambda p: (len(p), p)):
            if len(path) >= levels:
                continue
            nth = children_spawned.get(path, 0)
            if nth >= 2:  # binary: each node has two selectable corrections
                continue
            child = path + (nth,)
            if created.get(child) is None:
                created[child] = round_no
                children_spawned[path] = nth + 1
                spawned_any = True
        if not spawned_any:
            break
    return created
