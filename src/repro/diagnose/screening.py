"""Correction screening: static pre-screen, Theorem 1, heuristics 2 & 3.

**Static pre-screen**: before any heuristic runs, suspects whose
complement provably cannot reach a primary output — unobservable or
ODC-blocked per the dataflow facts — are dropped without a single
simulation (:func:`prescreen_suspects`).

**Theorem 1** (§3.2): among the lines l1..lN of any valid correction set,
the largest excitation set Vi has at least ``|V| / N`` vectors — so at
least one member correction must complement at least that many bits of
its line's ``Verr`` bit-list.  :func:`theorem1_bound` computes the bound;
:func:`screen_verr` applies it (or the stricter empirical ``h2``
threshold) with "a single simulation step on the gate driving l".

**Heuristic 3** (§3.2): "Any qualifying correction may sensitize only a
small number of new paths to previously correct primary outputs" — but
not zero, because partially-corrected designs can legitimately get worse
before they get better (the paper's Fig. 1 reconvergence example).
:func:`evaluate_correction` measures the actual effect by bit-parallel
propagation over the ``Vcorr`` bit-lists and rejects corrections whose
kept-correct fraction falls below ``h3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InjectionError
from ..faults.models import Correction, corrected_line_words
from ..sim.packing import popcount
from .bitlists import DiagnosisState, OverrideOutcome


def prescreen_suspects(state: DiagnosisState, lines,
                       deep: bool = False) -> tuple[list, int]:
    """Static suspect pre-screen: drop lines no correction can excite.

    Runs *before* Heuristic 1, on the dataflow facts of the node's
    netlist (:func:`repro.analyze.dataflow.netlist_facts` — cached on
    the netlist, so repeated expansions of one node pay nothing).  A
    suspect line is dropped when its driver signal

    * has no combinational path to any primary output, or
    * is ODC-blocked: some dominator of the signal has a side input,
      outside the signal's fanout cone, that provably carries the
      dominator's controlling value on every vector.

    Both conditions imply the complement of the line changes **no
    primary output on any input vector** (the side input is outside the
    perturbed region, so its constant proof survives the fault) — the
    line cannot explain any failing response, so no simulation is
    spent on it.  Branch lines inherit their stem's verdict: every
    branch path is a stem path, so a blocked stem blocks its branches.

    ``deep=True`` additionally uses implication- and hash-derived
    constants (pricier; the engine enables it for root-level
    expansions, where the facts are computed once per run).

    The drop is airtight per suspect.  Across a *tuple* of corrections
    the screen is re-applied per node on the partially-corrected
    netlist, which in principle can hide exotic tuples whose members
    pairwise mask each other's observability; the pre-screen shares
    this per-node character with the Theorem 1 screen and can be
    switched off via ``DiagnosisConfig(static_prescreen=False)``.

    Returns ``(kept_lines, dropped_count)`` with order preserved.
    """
    from ..analyze.dataflow import netlist_facts
    facts = netlist_facts(state.netlist)
    observable = facts.observable_set()
    blocked = facts.blocked_signals(deep=deep)
    kept = []
    dropped = 0
    for line_index in lines:
        driver = state.table[line_index].driver
        if driver not in observable or driver in blocked:
            dropped += 1
        else:
            kept.append(line_index)
    return kept, dropped


def theorem1_bound(num_failing: int, num_errors: int) -> int:
    """Minimum ``|Verr|`` bits the best member of an N-error correction
    set must complement: ``ceil(|V| / N)`` by the pigeonhole principle."""
    if num_failing <= 0:
        return 0
    if num_errors <= 0:
        raise ValueError("num_errors must be positive")
    return math.ceil(num_failing / num_errors)


@dataclass
class ScreenedCorrection:
    """A correction that survived screening, with its measured effect."""

    correction: Correction
    new_words: np.ndarray
    complemented: int          # Verr bits flipped (heuristic 2 count)
    outcome: OverrideOutcome   # propagation effect (heuristics 1 & 3)
    h1_score: float
    h3_score: float

    @property
    def fixes_all(self) -> bool:
        return self.outcome.fixes_all


def predicted_words(state: DiagnosisState,
                    corr: Correction) -> np.ndarray | None:
    """Corrected line values, or None when structurally impossible."""
    try:
        return corrected_line_words(state.netlist, state.table, corr,
                                    state.values)
    except InjectionError:
        return None


def screen_verr(state: DiagnosisState, corr: Correction,
                required_bits: int,
                new_words: np.ndarray | None = None) -> int | None:
    """Heuristic 2: count complemented ``Verr`` bits; None if rejected.

    ``required_bits`` is either the empirical ``h2 * |Verr|`` threshold
    or the Theorem 1 bound (exact mode).  A correction that changes no
    bit at all (on failing or passing vectors) is also rejected — it is
    a no-op.
    """
    if new_words is None:
        new_words = predicted_words(state, corr)
    if new_words is None:
        return None
    delta = new_words ^ state.line_values(corr.line)
    complemented = popcount(delta & state.err_mask)
    if complemented < max(required_bits, 1):
        return None
    return complemented


def evaluate_correction(state: DiagnosisState, corr: Correction,
                        required_bits: int,
                        h3: float) -> ScreenedCorrection | None:
    """Full screen: heuristic 2, then propagate and apply heuristic 3.

    Returns None when the correction is screened out.  ``h3 <= 0``
    disables the heuristic-3 screen (exact mode uses this so no valid
    tuple is pruned).
    """
    new_words = predicted_words(state, corr)
    if new_words is None:
        return None
    complemented = screen_verr(state, corr, required_bits, new_words)
    if complemented is None:
        return None
    outcome = state.outcome_of_override(corr.line, new_words)
    h1_score = outcome.h1_score(state)
    h3_score = outcome.h3_score(state)
    if h3 > 0 and h3_score < h3:
        return None
    return ScreenedCorrection(corr, new_words, complemented, outcome,
                              h1_score, h3_score)


def screen_corrections(state: DiagnosisState, corrections,
                       required_bits: int,
                       h3: float) -> list[ScreenedCorrection]:
    """Batched screen of many candidate corrections on one state.

    The whole sweep runs on the state's shared scratch diff matrix (see
    :meth:`DiagnosisState.outcome_of_override`), so screening a node's
    full correction vocabulary — typically hundreds of candidates —
    allocates nothing per candidate beyond each survivor's predicted
    line words.  Rejected corrections simply do not appear in the
    result; order is preserved otherwise.
    """
    survivors: list[ScreenedCorrection] = []
    for corr in corrections:
        sc = evaluate_correction(state, corr, required_bits, h3)
        if sc is not None:
            survivors.append(sc)
    return survivors
