"""Baseline diagnosis algorithms for comparison and ground truth.

* :func:`dictionary_diagnosis` — the classic single-stuck-at fault
  dictionary: fault-simulate every fault, return those whose response
  signature matches the observed failures exactly.  Fast and standard,
  but inherently single-fault.
* :func:`exhaustive_multifault_diagnosis` — brute force over all
  cardinality-N stuck-at combinations.  Exponential; usable only on
  small circuits, where it provides the ground truth the incremental
  engine's exact mode is validated against.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..faults.models import apply_correction, stuck_at_correction
from ..sim.compare import failing_vector_mask
from ..sim.faultsim import FaultSimulator, SimFault, all_faults
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, popcount
from .report import CorrectionRecord, Solution


def dictionary_diagnosis(spec: Netlist, impl: Netlist,
                         patterns: PatternSet) -> list[SimFault]:
    """Single-fault dictionary lookup.

    Simulates every stuck-at fault *on the specification* and returns
    faults whose full per-output response signature equals the observed
    (implementation) behaviour.  Empty when no single fault explains it.
    """
    spec_values = simulate(spec, patterns)
    spec_out = output_rows(spec, spec_values)
    impl_out = output_rows(impl, simulate(impl, patterns))
    observed = np.bitwise_xor(spec_out, impl_out)
    observed[:, -1] &= np.uint64(patterns.tail_mask())
    table = LineTable(spec)
    fsim = FaultSimulator(spec, patterns, table)
    matches = []
    for fault in all_faults(table):
        line = table[fault.line]
        forced = (np.zeros_like(spec_values[line.driver]) if fault.value == 0
                  else np.full_like(spec_values[line.driver],
                                    np.uint64(0xFFFFFFFFFFFFFFFF)))
        changed = _propagate(fsim, forced, stem=line.is_stem,
                             line=line)
        signature = np.zeros_like(observed)
        for pos, po in enumerate(spec.outputs):
            row = changed.get(po)
            diff = (row ^ spec_out[pos]) if row is not None \
                else np.zeros_like(spec_out[pos])
            signature[pos] = diff
        signature[:, -1] &= np.uint64(patterns.tail_mask())
        if np.array_equal(signature, observed):
            matches.append(fault)
    return matches


def _propagate(fsim: FaultSimulator, forced, stem: bool, line):
    from ..sim.logicsim import propagate

    if stem:
        return propagate(fsim.netlist, fsim.values,
                         stem_overrides={line.driver: forced})
    return propagate(fsim.netlist, fsim.values,
                     pin_overrides={(line.sink, line.pin): forced})


def exhaustive_multifault_diagnosis(spec: Netlist, impl: Netlist,
                                    patterns: PatternSet,
                                    max_faults: int = 2,
                                    max_lines: int = 80
                                    ) -> list[Solution]:
    """Brute-force all stuck-at tuples up to ``max_faults`` that rectify
    the implementation on ``patterns``.  Minimal-size tuples only.

    Intentionally naive (applies every combination structurally and
    re-simulates): this is the oracle, not a contender.
    """
    spec_out = output_rows(spec, simulate(spec, patterns))
    table = LineTable(impl)
    if len(table) > max_lines:
        raise ValueError(
            f"{len(table)} lines exceed the exhaustive-baseline cap "
            f"({max_lines}); use a smaller circuit")
    base_fail = popcount(failing_vector_mask(
        spec_out, output_rows(impl, simulate(impl, patterns)),
        patterns.nbits))
    if base_fail == 0:
        return []
    options = [(line.index, value) for line in table for value in (0, 1)]
    for size in range(1, max_faults + 1):
        solutions = []
        for combo in itertools.combinations(options, size):
            lines_used = [c[0] for c in combo]
            if len(set(lines_used)) < size:
                continue
            candidate = impl.copy()
            # Line indices shift as constants are added; apply via the
            # *original* table which stays valid for original lines.
            for line_index, value in combo:
                apply_correction(candidate, table,
                                 stuck_at_correction(table, line_index,
                                                     value))
            out = output_rows(candidate, simulate(candidate, patterns))
            if popcount(failing_vector_mask(spec_out, out,
                                            patterns.nbits)) == 0:
                records = tuple(
                    CorrectionRecord(f"sa{value}@{table.describe(li)}",
                                     f"sa{value}", table.describe(li))
                    for li, value in combo)
                solutions.append(Solution(records))
        if solutions:
            return solutions
    return []
