"""Ranked fault-dictionary diagnosis (the Poirot-style baseline [11]).

:func:`repro.diagnose.baselines.dictionary_diagnosis` demands an *exact*
response match, which multiple faults, noise, or unmodeled defects break
immediately.  Production dictionary tools (the paper cites Venkataraman
& Drummonds' Poirot) therefore *rank* candidates by how well their
simulated signature matches the observation.  This module implements the
two classic flavours:

* **pass/fail dictionary** — per fault, only which vectors fail is
  stored (compact);
* **full-response dictionary** — per fault, the failing (output, vector)
  pairs are stored (precise).

Scoring uses the standard intersection/prediction counts: a candidate is
ranked by how many observed failures it predicts (``hits``), penalized
for failures it predicts that did not occur (``mispredictions``) and for
observed failures it cannot explain (``misses``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..sim.compare import masked
from ..sim.faultsim import FaultSimulator, SimFault, all_faults
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, popcount


@dataclass(frozen=True)
class DictionaryMatch:
    """One ranked candidate from a dictionary lookup."""

    fault: SimFault
    site: str
    hits: int            # observed failures the candidate predicts
    misses: int          # observed failures it cannot explain
    mispredictions: int  # predicted failures that were not observed

    @property
    def exact(self) -> bool:
        return self.misses == 0 and self.mispredictions == 0

    def score(self) -> tuple:
        """Sort key: maximize hits, then minimize both error terms."""
        return (-self.hits, self.misses + self.mispredictions,
                self.site)


class FaultDictionary:
    """Precomputed stuck-at signatures for one netlist + vector set."""

    def __init__(self, netlist: Netlist, patterns: PatternSet,
                 full_response: bool = True,
                 faults: list | None = None,
                 static_skip: bool = True):
        self.netlist = netlist
        self.patterns = patterns
        self.full_response = full_response
        self.table = LineTable(netlist)
        fsim = FaultSimulator(netlist, patterns, self.table)
        self._good_out = fsim.good_outputs
        self._signatures: dict = {}
        #: Faults dropped without simulation because the implication
        #: bundle proves them untestable (zero detection mask under any
        #: vector set — behaviourally identical to the popcount filter
        #: below, minus the fault-simulation cost).
        self.statically_skipped = 0
        skip: frozenset = frozenset()
        if static_skip:
            from ..analyze.dataflow import netlist_facts
            skip = frozenset(netlist_facts(netlist).testability()
                             .untestable_line_keys(self.table))
        for fault in (faults if faults is not None
                      else all_faults(self.table)):
            if (fault.line, fault.value) in skip:
                self.statically_skipped += 1
                continue
            mask = fsim.detection_mask(fault)
            if popcount(mask) == 0:
                continue  # undetectable: never a candidate
            if full_response:
                line = self.table[fault.line]
                forced = (np.zeros_like(fsim.values[line.driver])
                          if fault.value == 0 else
                          np.full_like(fsim.values[line.driver],
                                       np.uint64(0xFFFFFFFFFFFFFFFF)))
                from ..sim.logicsim import propagate
                if line.is_stem:
                    changed = propagate(netlist, fsim.values,
                                        stem_overrides={line.driver:
                                                        forced})
                else:
                    changed = propagate(
                        netlist, fsim.values,
                        pin_overrides={(line.sink, line.pin): forced})
                rows = []
                for pos, po in enumerate(netlist.outputs):
                    row = changed.get(po)
                    rows.append((row ^ self._good_out[pos])
                                if row is not None
                                else np.zeros_like(self._good_out[pos]))
                signature = masked(np.vstack(rows), patterns.nbits)
            else:
                signature = mask[np.newaxis, :]
            self._signatures[fault.key()] = signature

    def __len__(self) -> int:
        return len(self._signatures)

    # ------------------------------------------------------------------
    def observe(self, device: Netlist) -> np.ndarray:
        """Observed failure signature of a faulty device."""
        device_out = output_rows(device, simulate(device, self.patterns))
        diff = masked(device_out ^ self._good_out, self.patterns.nbits)
        if self.full_response:
            return diff
        return np.bitwise_or.reduce(diff, axis=0)[np.newaxis, :]

    def lookup(self, device: Netlist, top: int = 10
               ) -> list[DictionaryMatch]:
        """Rank all dictionary faults against a device's behaviour."""
        observed = self.observe(device)
        matches = []
        for (line, value), signature in self._signatures.items():
            hits = popcount(signature & observed)
            mispredictions = popcount(signature & ~observed)
            misses = popcount(observed & ~signature)
            matches.append(DictionaryMatch(
                SimFault(line, value), self.table.describe(line),
                hits, misses, mispredictions))
        matches.sort(key=DictionaryMatch.score)
        return matches[:top]
