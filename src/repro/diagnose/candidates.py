"""Candidate-correction enumeration per line.

"Given an error location l that qualified, the algorithm exhaustively
compiles a list of corrections from the design error or fault model"
(§3.2).  Stuck-at mode tries the two fault models; design-error mode
tries every Abadir-model fix applicable at the line: gate replacement,
insert/remove inverter, and remove/replace/add input wire.

Wire corrections need new source signals.  The paper does not specify a
restriction; we score **every** structurally legal signal (live, outside
the driver's fanout cone) in one bit-parallel sweep — how many failing-
vector bits the rewired gate would flip minus how many passing-vector
bits it would corrupt — and keep the top ``wire_source_limit`` per pin
(DESIGN.md §7).  This keeps the wire-correction space bounded without
randomly missing the actual source, which path-trace alone cannot see
(a *missing* wire is outside every sensitized path).
"""

from __future__ import annotations

import numpy as np

from ..circuit.gatetypes import (GateType, REPLACEMENT_CLASSES,
                                 SOURCE_TYPES, eval_words)
from ..faults.models import Correction, CorrectionKind
from ..sim.packing import popcount
from .bitlists import DiagnosisState
from .config import DiagnosisConfig, Mode

if hasattr(np, "bitwise_count"):
    def _row_popcounts(matrix: np.ndarray) -> np.ndarray:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
else:  # pragma: no cover - depends on numpy version
    def _row_popcounts(matrix: np.ndarray) -> np.ndarray:
        return np.array([popcount(row) for row in matrix], dtype=np.int64)

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def is_correctable_line(state: DiagnosisState, line_index: int) -> bool:
    """Lines driven by constant gates are not fault/correction sites.

    Real netlists tie constants at cell boundaries, and — more
    importantly — the constants the engine itself introduces when
    applying stuck-at corrections must not become sites for *further*
    corrections (stacking two corrections on one site is just a
    different single correction, and its signature would reference an
    artifact gate no test engineer could probe).
    """
    driver = state.netlist.gates[state.table[line_index].driver]
    return driver.gtype not in (GateType.CONST0, GateType.CONST1)


def stuck_at_corrections(line_index: int) -> list[Correction]:
    """The two stuck-at fault models on a line."""
    return [Correction(line_index, CorrectionKind.STUCK_AT_0),
            Correction(line_index, CorrectionKind.STUCK_AT_1)]


def _legal_sources_mask(state: DiagnosisState, driver: int) -> np.ndarray:
    """Boolean mask over gate indices: may legally feed ``driver``.

    Detached gates are legal sources on purpose: a missing-input-wire
    error orphans its former source, and the repair must reconnect it.
    The fanout-cone exclusion keeps the rewiring acyclic either way.
    """
    netlist = state.netlist
    mask = np.ones(len(netlist.gates), dtype=bool)
    cone = netlist.sorted_cone(driver)
    mask[np.fromiter(cone, dtype=np.intp, count=len(cone))] = False
    mask[netlist.gates[driver].fanin] = False
    mask[driver] = False
    return mask


def _combine(base: np.ndarray, values: np.ndarray, gtype: GateType,
             invert: bool) -> np.ndarray:
    """New gate output for every candidate source at once.

    ``base`` is the gate's core (non-inverted) function over the retained
    fanins; ``values`` is the full value matrix, one candidate per row.
    """
    if gtype in (GateType.AND, GateType.NAND):
        new = values & base
    elif gtype in (GateType.OR, GateType.NOR):
        new = values | base
    else:  # XOR/XNOR
        new = values ^ base
    if invert:
        new = new ^ _ONES
    return new


_CORE_OF = {
    GateType.BUF: (GateType.AND, False),
    GateType.NOT: (GateType.AND, True),
    GateType.AND: (GateType.AND, False),
    GateType.NAND: (GateType.AND, True),
    GateType.OR: (GateType.OR, False),
    GateType.NOR: (GateType.OR, True),
    GateType.XOR: (GateType.XOR, False),
    GateType.XNOR: (GateType.XOR, True),
}


def scored_wire_sources(state: DiagnosisState, driver: int,
                        skip_pin: int | None, limit: int,
                        as_type: GateType | None = None) -> list[int]:
    """Best source signals for an add-wire (``skip_pin=None``) or
    replace-wire (``skip_pin=p``) correction on gate ``driver``.

    Scores every legal signal bit-parallel: (failing bits the new output
    flips) − (passing bits it corrupts); returns the top ``limit`` with
    positive flip counts.  ``as_type`` scores the gate as if promoted to
    that type (needed when a missing-wire error degraded OR->BUF etc.).
    """
    netlist = state.netlist
    gate = netlist.gates[driver]
    gtype = as_type or gate.gtype
    retained = [src for pin, src in enumerate(gate.fanin)
                if pin != skip_pin]
    if gtype not in _CORE_OF:
        return []
    core, invert = _CORE_OF[gtype]
    if retained:
        base = eval_words(core, [state.values[src] for src in retained])
    else:
        # Replacing the only fanin: the new source alone defines the core.
        base = (np.zeros_like(state.values[driver])
                if core in (GateType.OR, GateType.XOR)
                else np.full_like(state.values[driver], _ONES))
    old = state.values[driver]
    new = _combine(base, state.values, core, invert)
    delta = new ^ old
    err_flips = _row_popcounts(delta & state.err_mask)
    corr_flips = _row_popcounts(delta & state.corr_mask)
    score = err_flips - corr_flips
    legal = _legal_sources_mask(state, driver) & (err_flips > 0)
    if not legal.any():
        return []
    sentinel = score.min() - 1
    score = np.where(legal, score, sentinel)
    order = np.argsort(score, kind="stable")[::-1]
    return [int(g) for g in order[:limit] if legal[g]]


def design_error_corrections(state: DiagnosisState, line_index: int,
                             config: DiagnosisConfig
                             ) -> list[Correction]:
    """Every Abadir-model correction applicable at a line."""
    netlist = state.netlist
    line = state.table[line_index]
    driver_gate = netlist.gates[line.driver]
    corrections: list[Correction] = []
    # Inverter fixes apply to stems and branches alike.
    corrections.append(Correction(line_index,
                                  CorrectionKind.INSERT_INVERTER))
    if driver_gate.gtype is GateType.NOT:
        corrections.append(Correction(line_index,
                                      CorrectionKind.REMOVE_INVERTER))
    if not line.is_stem:
        return corrections
    if driver_gate.gtype in SOURCE_TYPES or \
            driver_gate.gtype is GateType.DFF:
        return corrections
    # Gate type replacement (same fanin count).
    n_in = len(driver_gate.fanin)
    for new_type in REPLACEMENT_CLASSES.get(driver_gate.gtype, ()):
        if new_type in (GateType.XOR, GateType.XNOR) and n_in > 4:
            continue  # implausibly wide parity gates
        corrections.append(Correction(line_index,
                                      CorrectionKind.GATE_REPLACE,
                                      new_type=new_type))
    # Wire removal (extra-input-wire error).
    if n_in >= 2:
        for pin in range(n_in):
            corrections.append(Correction(
                line_index, CorrectionKind.REMOVE_INPUT_WIRE, pin=pin))
        # Extra-gate error: the whole gate is spurious; consumers should
        # read one of its fanins directly.
        for pin in range(n_in):
            corrections.append(Correction(
                line_index, CorrectionKind.BYPASS_GATE, pin=pin))
    # Wire addition / replacement with bit-parallel-scored sources.
    limit = config.wire_source_limit
    if driver_gate.gtype in (GateType.BUF, GateType.NOT):
        # A unary gate may be a degraded multi-input gate; try restoring
        # each plausible identity along with the re-added wire.
        inverted = driver_gate.gtype is GateType.NOT
        promotions = ((GateType.NAND, GateType.NOR, GateType.XNOR)
                      if inverted
                      else (GateType.AND, GateType.OR, GateType.XOR))
        for promo in promotions:
            for src in scored_wire_sources(state, line.driver, None,
                                           limit, as_type=promo):
                corrections.append(Correction(
                    line_index, CorrectionKind.ADD_INPUT_WIRE,
                    other_signal=src, new_type=promo))
    else:
        for src in scored_wire_sources(state, line.driver, None, limit):
            corrections.append(Correction(
                line_index, CorrectionKind.ADD_INPUT_WIRE,
                other_signal=src))
    for pin in range(n_in):
        for src in scored_wire_sources(state, line.driver, pin, limit):
            corrections.append(Correction(
                line_index, CorrectionKind.REPLACE_INPUT_WIRE,
                pin=pin, other_signal=src))
    # Missing-gate error: insert a 2-input gate between this line and
    # its consumers.  Score each promotion type like an add-wire whose
    # "retained fanin" is the line itself.
    for promo in (GateType.AND, GateType.OR, GateType.XOR):
        for src in _scored_insert_sources(state, line.driver, promo,
                                          max(2, limit // 2)):
            corrections.append(Correction(
                line_index, CorrectionKind.INSERT_GATE,
                new_type=promo, other_signal=src))
    return corrections


def _scored_insert_sources(state: DiagnosisState, driver: int,
                           gtype: GateType, limit: int) -> list[int]:
    """Source candidates for an INSERT_GATE correction on a stem.

    The inserted gate computes ``gtype(line, src)``; scoring is the same
    failing-bits-flipped minus passing-bits-corrupted sweep as for wire
    corrections, with the line itself as the retained operand.
    """
    core, invert = _CORE_OF[gtype]
    base = state.values[driver]
    new = _combine(base, state.values, core, invert)
    delta = new ^ base
    err_flips = _row_popcounts(delta & state.err_mask)
    corr_flips = _row_popcounts(delta & state.corr_mask)
    score = err_flips - corr_flips
    legal = _legal_sources_mask(state, driver) & (err_flips > 0)
    if not legal.any():
        return []
    sentinel = score.min() - 1
    score = np.where(legal, score, sentinel)
    order = np.argsort(score, kind="stable")[::-1]
    return [int(g) for g in order[:limit] if legal[g]]


def corrections_for_line(state: DiagnosisState, line_index: int,
                         config: DiagnosisConfig) -> list[Correction]:
    """Mode dispatch: the correction vocabulary at one line."""
    if config.mode is Mode.STUCK_AT:
        return stuck_at_corrections(line_index)
    return design_error_corrections(state, line_index, config)


def wire_sources(state: DiagnosisState, driver: int, limit: int
                 ) -> list[int]:
    """Back-compat helper: best add-wire sources for ``driver``."""
    return scored_wire_sources(state, driver, None, limit)
