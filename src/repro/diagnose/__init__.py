"""The paper's contribution: incremental diagnosis & correction."""

from . import clock
from .bitlists import (DiagnosisState, OverrideOutcome,
                       error_partition, reference_outputs)
from .config import (DiagnosisConfig, FLOOR, HLevel, Mode,
                     default_schedule)
from .pathtrace import (derive_seed, marked_lines, path_trace_counts,
                        path_trace_vector, top_fraction)
from .potential import (LinePotential, correcting_potential,
                        correcting_potentials, rank_lines)
from .screening import (ScreenedCorrection, evaluate_correction,
                        screen_corrections, screen_verr, theorem1_bound)
from .candidates import (corrections_for_line, design_error_corrections,
                         stuck_at_corrections, wire_sources)
from .ranking import rank_corrections, rank_value
from .tree import DecisionTree, Node, round_visit_order
from .pipeline import (STAGE_ORDER, TRACE_SCHEMA, DiagnosisSession,
                       ExactStuckAtStrategy, FunctionStage,
                       LadderStrategy, SearchStrategy, Stage,
                       StageRecord, TraceWriter, run_stages,
                       select_strategy, validate_trace_events,
                       validate_trace_file)
from .engine import IncrementalDiagnoser, diagnose
from .dedup import dedup_solutions
from .report import (CorrectionRecord, DiagnosisResult, EngineStats,
                     Solution, matches_truth, solution_sort_key,
                     sort_solutions)
from .verify import exhaustively_equivalent, rectifies
from .baselines import (dictionary_diagnosis,
                        exhaustive_multifault_diagnosis)
from .timeframe import (TimeFrameDiagnoser, TimeFrameResult,
                        random_sequences)
from .satdiag import SatDiagnoser, SatDiagnosisResult
from .dictionary import DictionaryMatch, FaultDictionary

#: Alias matching the paper's terminology (DESIGN.md §3).
enumerate_corrections = corrections_for_line

__all__ = [
    "clock",
    "DiagnosisState", "OverrideOutcome", "error_partition",
    "reference_outputs",
    "STAGE_ORDER", "TRACE_SCHEMA", "DiagnosisSession",
    "ExactStuckAtStrategy", "FunctionStage", "LadderStrategy",
    "SearchStrategy", "Stage", "StageRecord", "TraceWriter",
    "run_stages", "select_strategy", "validate_trace_events",
    "validate_trace_file",
    "DiagnosisConfig", "FLOOR", "HLevel", "Mode", "default_schedule",
    "derive_seed", "marked_lines", "path_trace_counts",
    "path_trace_vector", "top_fraction",
    "LinePotential", "correcting_potential", "correcting_potentials",
    "rank_lines",
    "ScreenedCorrection", "evaluate_correction", "screen_corrections",
    "screen_verr", "theorem1_bound",
    "corrections_for_line", "design_error_corrections",
    "stuck_at_corrections", "wire_sources", "enumerate_corrections",
    "rank_corrections", "rank_value",
    "DecisionTree", "Node", "round_visit_order",
    "IncrementalDiagnoser", "diagnose", "dedup_solutions",
    "CorrectionRecord", "DiagnosisResult", "EngineStats", "Solution",
    "matches_truth", "solution_sort_key", "sort_solutions",
    "exhaustively_equivalent", "rectifies",
    "dictionary_diagnosis", "exhaustive_multifault_diagnosis",
    "TimeFrameDiagnoser", "TimeFrameResult", "random_sequences",
    "SatDiagnoser", "SatDiagnosisResult",
    "DictionaryMatch", "FaultDictionary",
]
