"""The incremental diagnosis and correction engine (top-level API).

Usage::

    from repro import IncrementalDiagnoser, DiagnosisConfig, Mode

    engine = IncrementalDiagnoser(spec, impl, patterns,
                                  DiagnosisConfig(mode=Mode.STUCK_AT))
    result = engine.run()
    for solution in result.solutions:
        print(solution.describe())

Two protocols from the paper:

* **Exact stuck-at diagnosis** (Table 1): the search tree is fully
  traversed; the engine returns *all* minimal-cardinality stuck-at fault
  tuples that explain the failing responses.  Candidates are screened by
  the Theorem 1 bound, so the traversal stays tractable without (in
  practice) losing tuples.
* **DEDC** (Table 2): the round-based BFS/DFS traversal with the
  h1/h2/h3 relaxation ladder returns the first valid correction set from
  the design-error model.

Minimality in both modes comes from iterative deepening on the target
cardinality: the engine never looks for N+1-correction sets while an
N-correction set exists.

Since the staged-pipeline refactor this class is a thin wrapper: it
ingests the netlists into a :class:`~repro.diagnose.pipeline.
DiagnosisSession` and delegates the deepening loop to the mode's
:class:`~repro.diagnose.pipeline.SearchStrategy` (exact stuck-at or
DEDC ladder).  Both strategies dispatch their shard plan through the
session's pluggable executor — :func:`repro.parallel.run_shards` by
default: ``DiagnosisConfig(jobs=1)`` executes the plan in-process,
``jobs=N`` on a process pool — with the same shard plan, per-shard
budgets and merge order either way, so the solution list and the
deterministic counters are identical at any pool width.  Per-stage
instrumentation lands in ``EngineStats.stages``.
"""

from __future__ import annotations

import math

import numpy as np

from ..analyze.invariants import InvariantChecker
from ..circuit.netlist import Netlist
from ..errors import DiagnosisError
from ..faults.models import CorrectionKind, apply_correction
from ..parallel import ShardResult
from ..sim.packing import PatternSet
from . import clock
from .bitlists import DiagnosisState, reference_outputs
from .candidates import is_correctable_line, stuck_at_corrections
from .config import DiagnosisConfig, Mode
from .pathtrace import derive_seed, marked_lines, path_trace_counts
from .pipeline import DiagnosisSession, TraceWriter, select_strategy
from .report import (CorrectionRecord, DiagnosisResult, EngineStats,
                     Solution, mark_truncated, sort_solutions)
from .screening import prescreen_suspects, screen_verr, theorem1_bound
from .tree import DecisionTree, warm_child_facts


class IncrementalDiagnoser:
    """Diagnose and correct a faulty implementation against its spec."""

    def __init__(self, spec: Netlist, impl: Netlist,
                 patterns: PatternSet,
                 config: DiagnosisConfig | None = None,
                 trace: TraceWriter | None = None,
                 executor=None):
        config = config or DiagnosisConfig()
        config.validate(sequential=False)
        if spec.num_inputs != impl.num_inputs:
            raise DiagnosisError(
                f"spec has {spec.num_inputs} inputs, implementation has "
                f"{impl.num_inputs}")
        if spec.num_outputs != impl.num_outputs:
            raise DiagnosisError(
                f"spec has {spec.num_outputs} outputs, implementation "
                f"has {impl.num_outputs}")
        if not impl.is_combinational:
            raise DiagnosisError(
                "implementation must be combinational; full-scan "
                "sequential designs first (repro.circuit.full_scan)")
        self.spec = spec
        self.impl = impl
        self.patterns = patterns
        self.config = config
        self.session = DiagnosisSession(config, trace=trace,
                                        executor=executor)
        with self.session.stage("ingest",
                                items_in=patterns.nbits) as rec:
            self.spec_out = reference_outputs(spec, patterns)
            rec.items_out = len(self.spec_out)
            rec.info = {"outputs": spec.num_outputs,
                        "vectors": patterns.nbits}
        with self.session.stage("bitlists",
                                items_in=patterns.nbits) as rec:
            self.root_state = DiagnosisState(impl, patterns,
                                             self.spec_out)
            rec.items_out = self.root_state.num_err
            rec.info = {"num_err": self.root_state.num_err,
                        "num_corr": self.root_state.num_corr}
        self.session.freeze_setup()
        self.invariants = (InvariantChecker()
                           if self.config.check_invariants else None)
        if self.invariants:
            self.invariants.check_state(self.root_state)

    # ------------------------------------------------------------------
    def run(self) -> DiagnosisResult:
        """Iterative-deepening search per the configured protocol."""
        session = self.session
        t0 = clock.now()
        stats = session.begin_run(
            mode=self.config.mode.value, exact=self.config.exact,
            jobs=self.config.jobs, vectors=self.patterns.nbits,
            initial_failing=self.root_state.num_err)
        self._deadline = session.deadline
        solutions: list[Solution] = []
        if not self.root_state.rectified:
            solutions = select_strategy(self.config).search(session,
                                                            self)
        if self.config.prove_dedup and len(solutions) > 1:
            from .dedup import dedup_solutions
            with session.stage("dedup", items_in=len(solutions)) as rec:
                solutions = dedup_solutions(
                    solutions, stats,
                    conflict_budget=self.config.prove_budget)
                rec.items_out = len(solutions)
                rec.info = {"checked": stats.dedup_checked,
                            "merged": stats.dedup_merged,
                            "unknown": stats.dedup_unknown}
        with session.stage("verify", items_in=len(solutions)) as rec:
            # Reported tuples are rectifying by construction (every
            # child state is re-checked against the full V); the stage
            # records that accounting rather than re-simulating.
            rec.items_out = len(solutions)
            rec.info = {"method": "constructive"}
        with session.stage("report", items_in=len(solutions)) as rec:
            result = DiagnosisResult(solutions, stats,
                                     self.patterns.nbits,
                                     self.root_state.num_err)
            rec.items_out = len(result.solutions)
        stats.total_time = clock.now() - t0
        session.end_run(found=result.found, solutions=len(solutions),
                        nodes=stats.nodes, truncated=stats.truncated,
                        total_s=stats.total_time)
        return result

    # ------------------------------------------------------------------
    # scheduler plumbing shared by both protocols
    # ------------------------------------------------------------------
    def _wall_deadline(self) -> float | None:
        """The run deadline as an epoch timestamp workers can share
        (``time.perf_counter`` is not comparable across processes)."""
        return self.session.wall_deadline()

    def _worker_payload(self) -> tuple:
        """One read-only pickle per worker: netlist + packed patterns."""
        return (self.impl, self.patterns, self.spec_out, self.config)

    def _local_context(self):
        from ..parallel import DiagnosisContext
        return DiagnosisContext(self.impl, self.patterns, self.spec_out,
                                self.config, root_state=self.root_state)

    def _merge_shard(self, stats: EngineStats, res: ShardResult,
                     label: str, merged: dict | None) -> None:
        """Back-compat alias for the session's shard merge."""
        self.session.merge_shard(stats, res, label, merged)


def _forced_words(state: DiagnosisState, corr) -> np.ndarray:
    """Packed constant words a stuck-at correction forces onto its line."""
    row = state.values[state.table[corr.line].driver]
    if corr.kind is CorrectionKind.STUCK_AT_1:
        return np.full_like(row, np.uint64(0xFFFFFFFFFFFFFFFF))
    return np.zeros_like(row)


def _attempt_label(target: int, h, fraction) -> str:
    return f"N={target} h={h}" + (" full" if fraction else "")


def fast_stuck_at_child(state: DiagnosisState, corr) -> DiagnosisState:
    """Child state for a stuck-at correction without re-simulation.

    Tying a line to a constant adds exactly one constant gate and
    only changes values inside the line's fanout cone; the child's
    value matrix is the parent's with the propagated rows replaced
    and the constant's row appended.  (Exact mode applies thousands
    of these; the incremental rebuild is the difference between
    milliseconds and microseconds per node.)
    """
    line = state.table[corr.line]
    if corr.kind is CorrectionKind.STUCK_AT_1:
        forced = np.full_like(state.values[line.driver],
                              np.uint64(0xFFFFFFFFFFFFFFFF))
    else:
        forced = np.zeros_like(state.values[line.driver])
    changed = state.propagate_line_override(corr.line, forced)
    child_netlist = state.netlist.copy()
    apply_correction(child_netlist, state.table, corr)
    values = np.vstack([state.values, forced[np.newaxis, :]])
    for idx, row in changed.items():
        if line.is_stem and idx == line.driver:
            continue  # the original driver keeps computing; its
            # consumers were rewired to the new constant gate
        values[idx] = row
    return DiagnosisState(child_netlist, state.patterns,
                          state.spec_out, values=values)


# ----------------------------------------------------------------------
# exact-mode node expansion, decomposed along the pipeline stages
# ----------------------------------------------------------------------
def pathtrace_suspects(state: DiagnosisState, applied_keys: frozenset,
                       config: DiagnosisConfig,
                       stats: EngineStats) -> list:
    """Path-trace-marked suspect lines at one node (pathtrace stage).

    Deterministic given ``(state, applied_keys, config)``: the sample
    uses the node's derived seed.
    """
    t0 = clock.now()
    counts = path_trace_counts(state, config.pathtrace_samples,
                               derive_seed(config.seed, applied_keys))
    lines = marked_lines(counts)
    stats.diag_time += clock.now() - t0
    return lines


def prescreen_lines(state: DiagnosisState, lines: list,
                    applied_keys: frozenset, config: DiagnosisConfig,
                    stats: EngineStats) -> list:
    """Static pre-screen of the marked suspects (prescreen stage)."""
    if not config.static_prescreen:
        return lines
    t0 = clock.now()
    lines, dropped = prescreen_suspects(state, lines,
                                        deep=not applied_keys)
    stats.prescreen_dropped += dropped
    stats.diag_time += clock.now() - t0
    return lines


def screen_and_rank(state: DiagnosisState, lines: list,
                    applied_keys: frozenset, remaining: int,
                    config: DiagnosisConfig, stats: EngineStats,
                    invariants=None) -> list:
    """Theorem 1 screen + outcome-guided ordering (rank-screen stage).

    Returns ordered ``(complemented, correction)`` pairs; every sort is
    stable, so the order is deterministic.
    """
    if invariants:
        invariants.check_theorem1(state.num_err, remaining)
        invariants.check_lines_live(state, lines)
    bound = theorem1_bound(state.num_err, remaining)
    bound = max(1, int(math.ceil(bound * config.theorem1_safety)))
    t1 = clock.now()
    screened = []
    for line in lines:
        if not is_correctable_line(state, line):
            continue
        for corr in stuck_at_corrections(line):
            complemented = screen_verr(state, corr, bound)
            if complemented is not None:
                screened.append((complemented, corr))
    screened.sort(key=lambda pair: -pair[0])
    # Outcome-guided ordering: for the most promising candidates
    # (by Verr bits complemented) measure the actual failing-
    # vector count after the correction and explore the best
    # first.  The tail keeps its heuristic order, so the
    # traversal stays exhaustive — only better directed.
    head_n = min(len(screened), config.corrections_per_node)
    scored_head = []
    for complemented, corr in screened[:head_n]:
        outcome = state.outcome_of_override(
            corr.line, _forced_words(state, corr))
        err_after = state.num_err - outcome.rectified_vectors \
            + outcome.broken_vectors
        scored_head.append((err_after, -complemented, corr))
    scored_head.sort(key=lambda t: t[:2])
    ordered = ([(-c, corr) for (_e, c, corr) in scored_head]
               + screened[head_n:])
    stats.corr_time += clock.now() - t1
    return ordered


def exact_candidates(state: DiagnosisState, applied_keys: frozenset,
                     remaining: int, config: DiagnosisConfig,
                     stats: EngineStats,
                     invariants=None) -> list:
    """Ordered ``(complemented, correction)`` candidates at one
    exact-mode node: path trace, static pre-screen, Theorem 1 screen,
    outcome-guided head ordering.

    Composes the three stage functions above.  Deterministic given
    ``(state, applied_keys, config)`` — which is what lets the root
    expansion double as the shard plan of the parallel scheduler.
    """
    lines = pathtrace_suspects(state, applied_keys, config, stats)
    lines = prescreen_lines(state, lines, applied_keys, config, stats)
    return screen_and_rank(state, lines, applied_keys, remaining,
                           config, stats, invariants)


class _SearchTruncated(Exception):
    """Unwinds the whole exact DFS when a budget or deadline expires.

    The pre-PR code checked the budget *after* marking a candidate
    visited — the last candidate was recorded as explored but never
    was — and a mid-DFS ``return`` only unwound one recursion level,
    so ancestor loops kept burning candidate-screening work after the
    budget was gone.  Raising propagates the stop cleanly through
    every level, and the check now runs before any marking.
    """


class _ExactSearch:
    """Exhaustive subtree exploration for the exact stuck-at protocol.

    One instance is one shard: a private visited set, node budget and
    deadline.  ``stats.truncated`` (with a cause) is set on *every*
    path that drops reachable work — budget exhaustion and deadline
    expiry both raise :class:`_SearchTruncated` before the dropped
    candidate is marked visited.
    """

    def __init__(self, config: DiagnosisConfig, target: int,
                 stats: EngineStats, deadline: float | None = None):
        self.config = config
        self.target = target
        self.stats = stats
        self.deadline = deadline
        self.visited: set = set()
        self.solutions: dict = {}
        self.budget = (config.worker_budget
                       if config.worker_budget is not None
                       else config.max_nodes)
        self.invariants = (InvariantChecker()
                           if config.check_invariants else None)

    def explore(self, state: DiagnosisState, applied: tuple,
                applied_keys: frozenset, ordered=None) -> None:
        if ordered is None:
            ordered = exact_candidates(state, applied_keys,
                                       self.target - len(applied),
                                       self.config, self.stats,
                                       self.invariants)
        for _complemented, corr in ordered:
            signature = corr.describe(state.netlist, state.table)
            if signature in applied_keys:
                continue
            new_keys = applied_keys | {signature}
            if new_keys in self.visited:
                continue
            self._check_budget()  # before marking: truncation must
            self.visited.add(new_keys)  # never hide unexplored work
            self.budget -= 1
            t0 = clock.now()
            child_state = fast_stuck_at_child(state, corr)
            self.stats.apply_time += clock.now() - t0
            if self.invariants:
                self.invariants.check_state(child_state)
            self.stats.nodes += 1
            record = CorrectionRecord(signature, corr.kind.value,
                                      state.table.describe(corr.line))
            child_applied = applied + (record,)
            if child_state.rectified:
                self.solutions.setdefault(
                    new_keys, Solution(child_applied,
                                       child_state.netlist))
            elif len(child_applied) < self.target:
                if (self.config.static_prescreen
                        and self.config.incremental_facts):
                    # The recursion is about to pre-screen this child:
                    # warm its facts from the parent's before it does.
                    warm_child_facts(state.netlist, child_state.netlist,
                                     self.stats)
                self.explore(child_state, child_applied, new_keys)

    def _check_budget(self) -> None:
        if self.budget <= 0:
            mark_truncated(self.stats, "node-budget")
            raise _SearchTruncated
        if clock.expired(self.deadline):
            mark_truncated(self.stats, "time-budget")
            raise _SearchTruncated


# ----------------------------------------------------------------------
# shard execution (runs in-process at jobs=1, in a worker at jobs>1)
# ----------------------------------------------------------------------
def execute_shard(context, task) -> ShardResult:
    """Run one shard of the scheduler's plan on a worker context.

    Budget/deadline exhaustion is reported as a truncated *result*;
    only genuine failures (crashes) surface as errors, and those are
    wrapped by the scheduler, not raised from here.
    """
    kind, index = task[0], task[1]
    stats = EngineStats()
    t0 = clock.now()
    if kind == "exact":
        _kind, _index, target, corr, wall_deadline = task
        search = _ExactSearch(context.config, target, stats,
                              clock.wall_to_perf(wall_deadline))
        try:
            search.explore(context.root_state, (), frozenset(),
                           ordered=((0, corr),))
        except _SearchTruncated:
            pass
        stats.total_time = clock.now() - t0
        found = sort_solutions(search.solutions.values())
        return ShardResult(index, found, stats)
    if kind == "attempt":
        _kind, _index, target, h, fraction, wall_deadline = task
        tree = DecisionTree(context.root_state, target, h,
                            context.config, stats,
                            candidate_fraction=fraction,
                            deadline=clock.wall_to_perf(wall_deadline))
        solutions = tree.run(stop_at_first=True,
                             traversal=context.config.traversal)
        stats.total_time = clock.now() - t0
        return ShardResult(index, solutions, stats)
    raise ValueError(f"unknown shard kind {kind!r}")


def diagnose(spec: Netlist, impl: Netlist, patterns: PatternSet,
             mode: Mode = Mode.STUCK_AT,
             trace: TraceWriter | None = None, **config_kwargs
             ) -> DiagnosisResult:
    """One-call convenience wrapper around :class:`IncrementalDiagnoser`."""
    config = DiagnosisConfig(mode=mode, **config_kwargs)
    return IncrementalDiagnoser(spec, impl, patterns, config,
                                trace=trace).run()
