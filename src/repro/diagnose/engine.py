"""The incremental diagnosis and correction engine (top-level API).

Usage::

    from repro import IncrementalDiagnoser, DiagnosisConfig, Mode

    engine = IncrementalDiagnoser(spec, impl, patterns,
                                  DiagnosisConfig(mode=Mode.STUCK_AT))
    result = engine.run()
    for solution in result.solutions:
        print(solution.describe())

Two protocols from the paper:

* **Exact stuck-at diagnosis** (Table 1): the search tree is fully
  traversed; the engine returns *all* minimal-cardinality stuck-at fault
  tuples that explain the failing responses.  Candidates are screened by
  the Theorem 1 bound, so the traversal stays tractable without (in
  practice) losing tuples.
* **DEDC** (Table 2): the round-based BFS/DFS traversal with the
  h1/h2/h3 relaxation ladder returns the first valid correction set from
  the design-error model.

Minimality in both modes comes from iterative deepening on the target
cardinality: the engine never looks for N+1-correction sets while an
N-correction set exists.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..analyze.invariants import InvariantChecker
from ..circuit.netlist import Netlist
from ..errors import DiagnosisError
from ..faults.models import CorrectionKind, apply_correction
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet
from .bitlists import DiagnosisState
from .candidates import is_correctable_line, stuck_at_corrections
from .config import DiagnosisConfig, Mode
from .pathtrace import marked_lines, path_trace_counts
from .report import (CorrectionRecord, DiagnosisResult, EngineStats,
                     Solution)
from .screening import prescreen_suspects, screen_verr, theorem1_bound
from .tree import DecisionTree


class IncrementalDiagnoser:
    """Diagnose and correct a faulty implementation against its spec."""

    def __init__(self, spec: Netlist, impl: Netlist,
                 patterns: PatternSet,
                 config: DiagnosisConfig | None = None):
        if spec.num_inputs != impl.num_inputs:
            raise DiagnosisError(
                f"spec has {spec.num_inputs} inputs, implementation has "
                f"{impl.num_inputs}")
        if spec.num_outputs != impl.num_outputs:
            raise DiagnosisError(
                f"spec has {spec.num_outputs} outputs, implementation "
                f"has {impl.num_outputs}")
        if not impl.is_combinational:
            raise DiagnosisError(
                "implementation must be combinational; full-scan "
                "sequential designs first (repro.circuit.full_scan)")
        self.spec = spec
        self.impl = impl
        self.patterns = patterns
        self.config = config or DiagnosisConfig()
        self.spec_out = output_rows(spec, simulate(spec, patterns))
        self.root_state = DiagnosisState(impl, patterns, self.spec_out)
        self.invariants = (InvariantChecker()
                           if self.config.check_invariants else None)
        if self.invariants:
            self.invariants.check_state(self.root_state)

    # ------------------------------------------------------------------
    def run(self) -> DiagnosisResult:
        """Iterative-deepening search per the configured protocol."""
        t0 = time.perf_counter()
        self._deadline = (t0 + self.config.time_budget
                          if self.config.time_budget else None)
        stats = EngineStats()
        solutions: list[Solution] = []
        if self.root_state.rectified:
            stats.total_time = time.perf_counter() - t0
            return DiagnosisResult([], stats, self.patterns.nbits, 0)
        for target in range(1, self.config.max_errors + 1):
            if self._deadline and time.perf_counter() > self._deadline:
                stats.truncated = True
                break
            if self.config.exact and self.config.mode is Mode.STUCK_AT:
                level = EngineStats()
                found = self._search_exact(target, level)
                stats.merge(level)
                stats.levels_tried.append(f"N={target} exact")
                if found:
                    solutions = found
                    break
            else:
                found = self._search_incremental(target, stats)
                if found:
                    solutions = found
                    break
        if self.config.prove_dedup and len(solutions) > 1:
            from .dedup import dedup_solutions
            solutions = dedup_solutions(
                solutions, stats,
                conflict_budget=self.config.prove_budget)
        stats.total_time = time.perf_counter() - t0
        return DiagnosisResult(solutions, stats, self.patterns.nbits,
                               self.root_state.num_err)

    # ------------------------------------------------------------------
    # DEDC / first-solution protocol
    # ------------------------------------------------------------------
    def _search_incremental(self, target: int,
                            stats: EngineStats) -> list[Solution]:
        ladder = self.config.ladder(target)
        # Relaxation ladder, then one last attempt with every path-trace-
        # marked line as a candidate (the "reduce progressively when the
        # algorithm returns with no corrections" endgame of §3.2).
        attempts = [(h, None) for h in ladder] + [(ladder[-1], 1.0)]
        for h, fraction in attempts:
            if self._deadline and time.perf_counter() > self._deadline:
                stats.truncated = True
                break
            tree = DecisionTree(self.root_state, target, h, self.config,
                                stats, candidate_fraction=fraction,
                                deadline=self._deadline)
            solutions = tree.run(stop_at_first=True,
                                 traversal=self.config.traversal)
            stats.levels_tried.append(
                f"N={target} h={h}" + (" full" if fraction else ""))
            if solutions:
                return solutions
        return []

    # ------------------------------------------------------------------
    # exact stuck-at protocol (Table 1)
    # ------------------------------------------------------------------
    def _fast_stuck_at_child(self, state: DiagnosisState,
                             corr) -> DiagnosisState:
        """Child state for a stuck-at correction without re-simulation.

        Tying a line to a constant adds exactly one constant gate and
        only changes values inside the line's fanout cone; the child's
        value matrix is the parent's with the propagated rows replaced
        and the constant's row appended.  (Exact mode applies thousands
        of these; the incremental rebuild is the difference between
        milliseconds and microseconds per node.)
        """
        line = state.table[corr.line]
        if corr.kind is CorrectionKind.STUCK_AT_1:
            forced = np.full_like(state.values[line.driver],
                                  np.uint64(0xFFFFFFFFFFFFFFFF))
        else:
            forced = np.zeros_like(state.values[line.driver])
        changed = state.propagate_line_override(corr.line, forced)
        child_netlist = state.netlist.copy()
        apply_correction(child_netlist, state.table, corr)
        values = np.vstack([state.values, forced[np.newaxis, :]])
        for idx, row in changed.items():
            if line.is_stem and idx == line.driver:
                continue  # the original driver keeps computing; its
                # consumers were rewired to the new constant gate
            values[idx] = row
        return DiagnosisState(child_netlist, state.patterns,
                              state.spec_out, values=values)

    def _search_exact(self, target: int,
                      stats: EngineStats) -> list[Solution]:
        config = self.config
        solutions: dict = {}
        visited: set = set()
        budget = [config.max_nodes]

        def dfs(state: DiagnosisState, applied: tuple,
                applied_keys: frozenset) -> None:
            remaining = target - len(applied)
            t0 = time.perf_counter()
            counts = path_trace_counts(state, config.pathtrace_samples,
                                       config.seed)
            lines = marked_lines(counts)
            if config.static_prescreen:
                lines, dropped = prescreen_suspects(state, lines,
                                                    deep=not applied)
                stats.prescreen_dropped += dropped
            stats.diag_time += time.perf_counter() - t0
            if self.invariants:
                self.invariants.check_theorem1(state.num_err, remaining)
                self.invariants.check_lines_live(state, lines)
            bound = theorem1_bound(state.num_err, remaining)
            bound = max(1, int(math.ceil(bound * config.theorem1_safety)))
            t1 = time.perf_counter()
            screened = []
            for line in lines:
                if not is_correctable_line(state, line):
                    continue
                for corr in stuck_at_corrections(line):
                    complemented = screen_verr(state, corr, bound)
                    if complemented is not None:
                        screened.append((complemented, corr))
            screened.sort(key=lambda pair: -pair[0])
            # Outcome-guided ordering: for the most promising candidates
            # (by Verr bits complemented) measure the actual failing-
            # vector count after the correction and explore the best
            # first.  The tail keeps its heuristic order, so the
            # traversal stays exhaustive — only better directed.
            head_n = min(len(screened), config.corrections_per_node)
            scored_head = []
            for complemented, corr in screened[:head_n]:
                outcome = state.outcome_of_override(
                    corr.line, _forced_words(state, corr))
                err_after = state.num_err - outcome.rectified_vectors                     + outcome.broken_vectors
                scored_head.append((err_after, -complemented, corr))
            scored_head.sort(key=lambda t: t[:2])
            ordered = ([(c, corr) for (_e, c, corr) in scored_head]
                       + screened[head_n:])
            stats.corr_time += time.perf_counter() - t1
            for _complemented, corr in ordered:
                signature = corr.describe(state.netlist, state.table)
                if signature in applied_keys:
                    continue
                new_keys = applied_keys | {signature}
                if new_keys in visited:
                    continue
                visited.add(new_keys)
                if budget[0] <= 0 or (
                        self._deadline
                        and time.perf_counter() > self._deadline):
                    stats.truncated = True
                    return
                budget[0] -= 1
                t2 = time.perf_counter()
                child_state = self._fast_stuck_at_child(state, corr)
                stats.apply_time += time.perf_counter() - t2
                if self.invariants:
                    self.invariants.check_state(child_state)
                stats.nodes += 1
                record = CorrectionRecord(
                    signature, corr.kind.value,
                    state.table.describe(corr.line))
                child_applied = applied + (record,)
                if child_state.rectified:
                    key = frozenset(new_keys)
                    if key not in solutions:
                        solutions[key] = Solution(child_applied,
                                                  child_state.netlist)
                elif len(child_applied) < target:
                    dfs(child_state, child_applied, new_keys)
                if budget[0] <= 0:
                    stats.truncated = True
                    return

        dfs(self.root_state, (), frozenset())
        return list(solutions.values())


def _forced_words(state: DiagnosisState, corr) -> np.ndarray:
    """Packed constant words a stuck-at correction forces onto its line."""
    row = state.values[state.table[corr.line].driver]
    if corr.kind is CorrectionKind.STUCK_AT_1:
        return np.full_like(row, np.uint64(0xFFFFFFFFFFFFFFFF))
    return np.zeros_like(row)


def diagnose(spec: Netlist, impl: Netlist, patterns: PatternSet,
             mode: Mode = Mode.STUCK_AT, **config_kwargs
             ) -> DiagnosisResult:
    """One-call convenience wrapper around :class:`IncrementalDiagnoser`."""
    config = DiagnosisConfig(mode=mode, **config_kwargs)
    return IncrementalDiagnoser(spec, impl, patterns, config).run()
