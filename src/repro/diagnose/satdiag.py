"""SAT-based multiple stuck-at diagnosis (baseline).

The same research group later recast diagnosis as Boolean satisfiability
(Smith, Veneris & Viglas, *Design Diagnosis Using Boolean
Satisfiability*).  This module implements that formulation over our
from-scratch CDCL solver as an independent cross-check for the
simulation-based engine:

* every suspect line gets two selector variables (stuck-at-0 /
  stuck-at-1, mutually exclusive);
* the netlist is Tseitin-encoded once per *constraint vector*, with each
  line's modeled value multiplexed between its driving function and the
  selected stuck value;
* output variables are pinned to the faulty device's observed responses;
* a sequential-counter constraint caps the number of active selectors
  at N, and solutions are enumerated with blocking clauses.

Encoding all of V would be wasteful, so a subset of failing + passing
vectors constrains the CNF and every SAT answer is then *verified by
simulation* against the full vector set — candidates that only fit the
subset are dropped (and their blocking clause keeps enumeration going).

Setup (device simulation, V partition, constraint-vector choice) runs
through the shared ``ingest``/``bitlists``/``rank-screen`` stages of
:mod:`repro.diagnose.pipeline`; the enumeration is a
:class:`SatSearchStrategy`, so ``result.stats.stages`` carries the same
per-stage breakdown as the other modes.  Because each model is
simulation-verified as soon as it is enumerated, the ``verify`` stage
here is a summary record of that interleaved work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.gatetypes import GateType
from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..faults.models import Correction, CorrectionKind, apply_correction
from ..sat.cnf import CnfBuilder
from ..sat.solver import SatSolver
from ..sim.compare import equivalent
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, WORD_BITS, bit_indices
from . import clock
from .bitlists import error_partition, reference_outputs
from .config import DiagnosisConfig
from .pipeline import DiagnosisSession, SearchStrategy, TraceWriter
from .report import CorrectionRecord, EngineStats, Solution


@dataclass
class SatDiagnosisResult:
    solutions: list = field(default_factory=list)
    sat_candidates: int = 0     # models returned by the solver
    verified: int = 0           # candidates surviving full-V simulation
    total_time: float = 0.0
    truncated: bool = False
    #: pipeline stats (stage records, truncation) of the run; kept
    #: optional so pickled pre-refactor results still load.
    stats: EngineStats | None = None

    @property
    def found(self) -> bool:
        return bool(self.solutions)


class SatSearchStrategy(SearchStrategy):
    """Selector-variable enumeration with interleaved verification.

    One ``search`` stage record per target cardinality; the solver's
    models are verified against the full V as they stream out, so the
    enumeration and verification costs share the stage.
    """

    name = "sat"

    def search(self, session: DiagnosisSession,
               diag) -> SatDiagnosisResult:
        result = SatDiagnosisResult()
        for target in range(1, diag.max_faults + 1):
            candidates_before = result.sat_candidates
            with session.stage("search", target=target,
                               items_in=len(diag.suspects)) as rec:
                diag._enumerate(target, result, session.deadline)
                rec.items_out = (result.sat_candidates
                                 - candidates_before)
                rec.info = {"verified": result.verified,
                            "solutions": len(result.solutions),
                            "truncated": result.truncated}
            if result.solutions or result.truncated:
                break
        return result


class SatDiagnoser:
    """Enumerate minimal stuck-at tuples explaining a faulty device."""

    def __init__(self, device: Netlist, good: Netlist,
                 patterns: PatternSet, max_faults: int = 2,
                 max_constraint_vectors: int = 24,
                 max_solutions: int = 64,
                 time_budget: float | None = 60.0,
                 suspects: list | None = None,
                 config: DiagnosisConfig | None = None,
                 trace: TraceWriter | None = None):
        if config is not None:
            config.validate()
        self.device = device
        self.good = good
        self.patterns = patterns
        self.max_faults = max_faults
        self.max_solutions = max_solutions
        self.time_budget = time_budget
        self.session = DiagnosisSession(config or DiagnosisConfig(),
                                        trace=trace)
        with self.session.stage("ingest",
                                items_in=patterns.nbits) as rec:
            self.table = LineTable(good)
            self.suspects = (list(suspects) if suspects is not None
                             else [line.index for line in self.table])
            self.device_out = reference_outputs(device, patterns)
            self.good_values = simulate(good, patterns)
            self.good_out = output_rows(good, self.good_values)
            rec.items_out = len(self.suspects)
            rec.info = {"suspects": len(self.suspects),
                        "vectors": patterns.nbits}
        with self.session.stage("bitlists",
                                items_in=patterns.nbits) as rec:
            _diff, self._err_mask, self._num_err = error_partition(
                self.device_out, self.good_out, patterns.nbits)
            rec.items_out = self._num_err
            rec.info = {"num_err": self._num_err}
        with self.session.stage("rank-screen",
                                items_in=patterns.nbits) as rec:
            self._constraint_vectors = self._pick_vectors(
                max_constraint_vectors)
            rec.items_out = len(self._constraint_vectors)
            rec.info = {"failing_chosen": min(
                self._num_err, max(1, max_constraint_vectors // 2))}
        self.session.freeze_setup()

    # ------------------------------------------------------------------
    def _pick_vectors(self, cap: int) -> list[int]:
        failing = bit_indices(self._err_mask, self.patterns.nbits)
        passing = [v for v in range(self.patterns.nbits)
                   if v not in set(failing)]
        half = max(1, cap // 2)
        chosen = failing[:half] + passing[: cap - len(failing[:half])]
        return chosen

    def _observed_bit(self, po_pos: int, vector: int) -> bool:
        word, bit = divmod(vector, WORD_BITS)
        return bool((int(self.device_out[po_pos, word]) >> bit) & 1)

    # ------------------------------------------------------------------
    def _encode(self) -> tuple[CnfBuilder, dict]:
        builder = CnfBuilder(SatSolver())
        netlist = self.good
        sel = {}
        for line_index in self.suspects:
            sel[line_index] = (builder.new_var(), builder.new_var())
            builder.add([-sel[line_index][0], -sel[line_index][1]])
        # suspects indexed by (kind: stem driver / branch sink+pin)
        stem_sel = {}
        pin_sel = {}
        for line_index, (s0, s1) in sel.items():
            line = self.table[line_index]
            if line.is_stem:
                stem_sel[line.driver] = (s0, s1)
            else:
                pin_sel[(line.sink, line.pin)] = (s0, s1)

        for vector in self._constraint_vectors:
            raw = {}       # gate -> fault-free function output var
            modeled = {}   # gate -> value seen by consumers
            vbits = self.patterns.vector(vector)
            order = netlist.topo_order()
            live = netlist.live_set() | set(netlist.inputs)
            for idx in order:
                if idx not in live:
                    continue
                gate = netlist.gates[idx]
                var = builder.new_var()
                raw[idx] = var
                if gate.gtype is GateType.INPUT:
                    position = netlist.inputs.index(idx)
                    builder.constant(var, bool(vbits[position]))
                else:
                    pin_vars = []
                    for pin, src in enumerate(gate.fanin):
                        base = modeled[src]
                        selector = pin_sel.get((idx, pin))
                        if selector is None:
                            pin_vars.append(base)
                        else:
                            s0, s1 = selector
                            pv = builder.new_var()
                            # s0 -> ~pv ; s1 -> pv ; else pv == base
                            builder.add([-s0, -pv])
                            builder.add([-s1, pv])
                            builder.add([s0, s1, -pv, base])
                            builder.add([s0, s1, pv, -base])
                            pin_vars.append(pv)
                    builder.encode_gate(gate.gtype, var, pin_vars)
                selector = stem_sel.get(idx)
                if selector is None:
                    modeled[idx] = var
                else:
                    s0, s1 = selector
                    mv = builder.new_var()
                    builder.add([-s0, -mv])
                    builder.add([-s1, mv])
                    builder.add([s0, s1, -mv, var])
                    builder.add([s0, s1, mv, -var])
                    modeled[idx] = mv
            for po_pos, po in enumerate(netlist.outputs):
                builder.constant(modeled[po],
                                 self._observed_bit(po_pos, vector))
        return builder, sel

    # ------------------------------------------------------------------
    def _verify(self, picks: list) -> Solution | None:
        """Simulate the candidate tuple against the full vector set."""
        candidate = self.good.copy()
        records = []
        for line_index, value in picks:
            kind = (CorrectionKind.STUCK_AT_1 if value
                    else CorrectionKind.STUCK_AT_0)
            corr = Correction(line_index, kind)
            site = self.table.describe(line_index)
            records.append(CorrectionRecord(f"sa{value}@{site}",
                                            f"sa{value}", site))
            apply_correction(candidate, self.table, corr)
        out = output_rows(candidate, simulate(candidate, self.patterns))
        if equivalent(out, self.device_out, self.patterns.nbits):
            return Solution(tuple(records), candidate)
        return None

    def _enumerate(self, target: int, result: SatDiagnosisResult,
                   deadline: float | None) -> None:
        """Enumerate and verify the models at one target cardinality."""
        builder, sel = self._encode()
        all_selectors = [v for pair in sel.values() for v in pair]
        builder.at_most_k(all_selectors, target)
        builder.at_least_one(all_selectors)
        solver = builder.solver
        while len(result.solutions) < self.max_solutions:
            if clock.expired(deadline):
                result.truncated = True
                break
            status = solver.solve()
            if status is not True:
                break
            model = solver.model()
            picks = []
            active = []
            for line_index, (s0, s1) in sel.items():
                if model.get(s0):
                    picks.append((line_index, 0))
                    active.append(s0)
                if model.get(s1):
                    picks.append((line_index, 1))
                    active.append(s1)
            result.sat_candidates += 1
            solver.block(active)
            solution = self._verify(picks)
            if solution is not None:
                keys = {s.key for s in result.solutions}
                if solution.key not in keys:
                    result.verified += 1
                    result.solutions.append(solution)

    def run(self) -> SatDiagnosisResult:
        session = self.session
        t0 = clock.now()
        stats = session.begin_run(
            time_budget=self.time_budget, mode="sat",
            vectors=self.patterns.nbits,
            initial_failing=self._num_err)
        result = SatSearchStrategy().search(session, self)
        result.stats = stats
        with session.stage("verify",
                           items_in=result.sat_candidates) as rec:
            rec.items_out = result.verified
            rec.info = {"method": "full-V simulation",
                        "interleaved": True}
        with session.stage("report",
                           items_in=len(result.solutions)) as rec:
            rec.items_out = len(result.solutions)
        result.total_time = clock.now() - t0
        stats.total_time = result.total_time
        stats.truncated = stats.truncated or result.truncated
        session.end_run(found=result.found,
                        solutions=len(result.solutions),
                        nodes=result.sat_candidates,
                        truncated=result.truncated,
                        total_s=result.total_time)
        return result
