"""SAT-based multiple stuck-at diagnosis (baseline).

The same research group later recast diagnosis as Boolean satisfiability
(Smith, Veneris & Viglas, *Design Diagnosis Using Boolean
Satisfiability*).  This module implements that formulation over our
from-scratch CDCL solver as an independent cross-check for the
simulation-based engine:

* every suspect line gets two selector variables (stuck-at-0 /
  stuck-at-1, mutually exclusive);
* the netlist is Tseitin-encoded once per *constraint vector*, with each
  line's modeled value multiplexed between its driving function and the
  selected stuck value;
* output variables are pinned to the faulty device's observed responses;
* a sequential-counter constraint caps the number of active selectors
  at N, and solutions are enumerated with blocking clauses.

Encoding all of V would be wasteful, so a subset of failing + passing
vectors constrains the CNF and every SAT answer is then *verified by
simulation* against the full vector set — candidates that only fit the
subset are dropped (and their blocking clause keeps enumeration going).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuit.gatetypes import GateType
from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..faults.models import Correction, CorrectionKind, apply_correction
from ..sat.cnf import CnfBuilder
from ..sat.solver import SatSolver
from ..sim.compare import equivalent
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, WORD_BITS, bit_indices
from .report import CorrectionRecord, Solution


@dataclass
class SatDiagnosisResult:
    solutions: list = field(default_factory=list)
    sat_candidates: int = 0     # models returned by the solver
    verified: int = 0           # candidates surviving full-V simulation
    total_time: float = 0.0
    truncated: bool = False

    @property
    def found(self) -> bool:
        return bool(self.solutions)


class SatDiagnoser:
    """Enumerate minimal stuck-at tuples explaining a faulty device."""

    def __init__(self, device: Netlist, good: Netlist,
                 patterns: PatternSet, max_faults: int = 2,
                 max_constraint_vectors: int = 24,
                 max_solutions: int = 64,
                 time_budget: float | None = 60.0,
                 suspects: list | None = None):
        self.device = device
        self.good = good
        self.patterns = patterns
        self.max_faults = max_faults
        self.max_solutions = max_solutions
        self.time_budget = time_budget
        self.table = LineTable(good)
        self.suspects = (list(suspects) if suspects is not None
                         else [line.index for line in self.table])
        self.device_out = output_rows(device,
                                      simulate(device, patterns))
        self.good_values = simulate(good, patterns)
        self.good_out = output_rows(good, self.good_values)
        self._constraint_vectors = self._pick_vectors(
            max_constraint_vectors)

    # ------------------------------------------------------------------
    def _pick_vectors(self, cap: int) -> list[int]:
        from ..sim.compare import failing_vector_mask

        fail = failing_vector_mask(self.device_out, self.good_out,
                                   self.patterns.nbits)
        failing = bit_indices(fail, self.patterns.nbits)
        passing = [v for v in range(self.patterns.nbits)
                   if v not in set(failing)]
        half = max(1, cap // 2)
        chosen = failing[:half] + passing[: cap - len(failing[:half])]
        return chosen

    def _observed_bit(self, po_pos: int, vector: int) -> bool:
        word, bit = divmod(vector, WORD_BITS)
        return bool((int(self.device_out[po_pos, word]) >> bit) & 1)

    # ------------------------------------------------------------------
    def _encode(self) -> tuple[CnfBuilder, dict]:
        builder = CnfBuilder(SatSolver())
        netlist = self.good
        sel = {}
        for line_index in self.suspects:
            sel[line_index] = (builder.new_var(), builder.new_var())
            builder.add([-sel[line_index][0], -sel[line_index][1]])
        # suspects indexed by (kind: stem driver / branch sink+pin)
        stem_sel = {}
        pin_sel = {}
        for line_index, (s0, s1) in sel.items():
            line = self.table[line_index]
            if line.is_stem:
                stem_sel[line.driver] = (s0, s1)
            else:
                pin_sel[(line.sink, line.pin)] = (s0, s1)

        for vector in self._constraint_vectors:
            raw = {}       # gate -> fault-free function output var
            modeled = {}   # gate -> value seen by consumers
            vbits = self.patterns.vector(vector)
            order = netlist.topo_order()
            live = netlist.live_set() | set(netlist.inputs)
            for idx in order:
                if idx not in live:
                    continue
                gate = netlist.gates[idx]
                var = builder.new_var()
                raw[idx] = var
                if gate.gtype is GateType.INPUT:
                    position = netlist.inputs.index(idx)
                    builder.constant(var, bool(vbits[position]))
                else:
                    pin_vars = []
                    for pin, src in enumerate(gate.fanin):
                        base = modeled[src]
                        selector = pin_sel.get((idx, pin))
                        if selector is None:
                            pin_vars.append(base)
                        else:
                            s0, s1 = selector
                            pv = builder.new_var()
                            # s0 -> ~pv ; s1 -> pv ; else pv == base
                            builder.add([-s0, -pv])
                            builder.add([-s1, pv])
                            builder.add([s0, s1, -pv, base])
                            builder.add([s0, s1, pv, -base])
                            pin_vars.append(pv)
                    builder.encode_gate(gate.gtype, var, pin_vars)
                selector = stem_sel.get(idx)
                if selector is None:
                    modeled[idx] = var
                else:
                    s0, s1 = selector
                    mv = builder.new_var()
                    builder.add([-s0, -mv])
                    builder.add([-s1, mv])
                    builder.add([s0, s1, -mv, var])
                    builder.add([s0, s1, mv, -var])
                    modeled[idx] = mv
            for po_pos, po in enumerate(netlist.outputs):
                builder.constant(modeled[po],
                                 self._observed_bit(po_pos, vector))
        return builder, sel

    # ------------------------------------------------------------------
    def _verify(self, picks: list) -> Solution | None:
        """Simulate the candidate tuple against the full vector set."""
        candidate = self.good.copy()
        records = []
        for line_index, value in picks:
            kind = (CorrectionKind.STUCK_AT_1 if value
                    else CorrectionKind.STUCK_AT_0)
            corr = Correction(line_index, kind)
            site = self.table.describe(line_index)
            records.append(CorrectionRecord(f"sa{value}@{site}",
                                            f"sa{value}", site))
            apply_correction(candidate, self.table, corr)
        out = output_rows(candidate, simulate(candidate, self.patterns))
        if equivalent(out, self.device_out, self.patterns.nbits):
            return Solution(tuple(records), candidate)
        return None

    def run(self) -> SatDiagnosisResult:
        result = SatDiagnosisResult()
        t0 = time.perf_counter()
        deadline = t0 + self.time_budget if self.time_budget else None
        for target in range(1, self.max_faults + 1):
            builder, sel = self._encode()
            all_selectors = [v for pair in sel.values() for v in pair]
            builder.at_most_k(all_selectors, target)
            builder.at_least_one(all_selectors)
            solver = builder.solver
            while len(result.solutions) < self.max_solutions:
                if deadline and time.perf_counter() > deadline:
                    result.truncated = True
                    break
                status = solver.solve()
                if status is not True:
                    break
                model = solver.model()
                picks = []
                active = []
                for line_index, (s0, s1) in sel.items():
                    if model.get(s0):
                        picks.append((line_index, 0))
                        active.append(s0)
                    if model.get(s1):
                        picks.append((line_index, 1))
                        active.append(s1)
                result.sat_candidates += 1
                solver.block(active)
                solution = self._verify(picks)
                if solution is not None:
                    keys = {s.key for s in result.solutions}
                    if solution.key not in keys:
                        result.verified += 1
                        result.solutions.append(solution)
            if result.solutions or result.truncated:
                break
        result.total_time = time.perf_counter() - t0
        return result
