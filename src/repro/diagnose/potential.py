"""Heuristic 1: the correcting potential of a suspect line.

Second diagnosis step (§3.1): "for each line l, we invert the logic
values in its Verr_l bit-list and propagate this difference throughout
the fan-out cone of l ... Inversion and propagation of all of its values
emulate the maximum effect any modification to this line can have on the
circuit.  Once done, we count the number of erroneous primary outputs
that are rectified and sort all lines according to these counts."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitlists import DiagnosisState


@dataclass(frozen=True)
class LinePotential:
    """Correcting potential of one candidate line."""

    line: int
    fixed_pairs: int          # failing (output, vector) pairs rectified
    rectified_vectors: int    # failing vectors fully rectified
    score: float              # fraction of failing pairs rectified

    def qualifies(self, h1: float) -> bool:
        return self.score >= h1


def correcting_potential(state: DiagnosisState,
                         line_index: int) -> LinePotential:
    """Evaluate heuristic 1 for one line.

    Only the failing-vector bits are inverted (that is exactly the
    ``Verr`` bit-list); passing vectors are untouched, so the measured
    effect is purely "how many failures could *any* modification of this
    line possibly repair".
    """
    flipped = state.line_values(line_index) ^ state.err_mask
    outcome = state.outcome_of_override(line_index, flipped)
    denom = state.num_err_pairs if state.num_err_pairs else 1
    return LinePotential(line_index, outcome.fixed_pairs,
                         outcome.rectified_vectors,
                         outcome.fixed_pairs / denom)


def correcting_potentials(state: DiagnosisState,
                          candidates) -> list[LinePotential]:
    """Batched heuristic-1 sweep over ``candidates``.

    The whole sweep shares the state's flip buffer and scratch diff
    matrix: each suspect costs one event-driven ``propagate`` over its
    cone plus a handful of in-place word operations — no per-suspect
    matrix allocations.
    """
    denom = state.num_err_pairs if state.num_err_pairs else 1
    err_mask = state.err_mask
    flip = np.empty_like(err_mask)
    out: list[LinePotential] = []
    for line in candidates:
        np.bitwise_xor(state.line_values(line), err_mask, out=flip)
        outcome = state.outcome_of_override(line, flip)
        out.append(LinePotential(line, outcome.fixed_pairs,
                                 outcome.rectified_vectors,
                                 outcome.fixed_pairs / denom))
    return out


def rank_lines(state: DiagnosisState, candidates,
               h1: float) -> list[LinePotential]:
    """Evaluate and sort candidate lines by decreasing potential.

    Lines failing the ``h1`` threshold are dropped ("eliminate lines that
    have no potential to lead towards an optimal solution", §3.1).
    """
    potentials = correcting_potentials(state, candidates)
    kept = [p for p in potentials if p.qualifies(h1)]
    kept.sort(key=lambda p: (-p.fixed_pairs, p.line))
    return kept
