"""Correction ranking (§3.3).

"The corrections returned at level i are ranked according to the
formula ``(1 - V_ratio) * h3 + V_ratio * h1`` and they are visited in
the decreasing order of ranks during execution.  In this formula,
V_ratio indicates the percentage of vectors with erroneous output
responses in V prior to the correction."

Intuition: when most vectors fail (V_ratio high) the engine prizes
corrections that repair failures (h1); when few fail it prizes
corrections that do not break passing vectors (h3).
"""

from __future__ import annotations

from .bitlists import DiagnosisState
from .screening import ScreenedCorrection


def rank_value(v_ratio: float, h1_score: float, h3_score: float) -> float:
    """The paper's ranking formula."""
    return (1.0 - v_ratio) * h3_score + v_ratio * h1_score


def rank_corrections(state: DiagnosisState,
                     screened: list[ScreenedCorrection]
                     ) -> list[tuple[float, ScreenedCorrection]]:
    """Sort screened corrections by decreasing rank (ties: more Verr bits
    complemented first, then deterministic correction order)."""
    v_ratio = state.v_ratio
    ranked = [(rank_value(v_ratio, sc.h1_score, sc.h3_score), sc)
              for sc in screened]
    ranked.sort(key=lambda pair: (-pair[0], -pair[1].complemented,
                                  pair[1].correction.line,
                                  pair[1].correction.kind.value))
    return ranked
