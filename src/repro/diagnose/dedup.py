"""SAT-backed dedup of functionally-equivalent correction candidates.

The paper's correction step (Section 4) matches suspect lines against
fault/error models and can return several correction sets whose
*repaired netlists* compute the identical function — a stuck-at-0 on a
stem and on its only surviving branch, say, or two gate replacements
that coincide on the reachable input space.  Simulation can never tell
such candidates apart (that is what "equivalent" means), so they
survive every vector and inflate the report a test engineer has to
walk.

This pass runs after the search: candidates of equal correction-set
size are equivalence-checked pairwise through a full miter
(:func:`repro.analyze.prove.prove_equivalent`) under a conflict budget.
A PROVEN verdict collapses the later candidate into the earlier one as
an *alias* — it is still reported, but as a name on the representative
rather than a separate line item.  REFUTED pairs stay separate (the
distinguishing vector exists, a tester could apply it); UNKNOWN pairs
also stay separate — a budget exhaustion must never merge candidates
that might differ.  Counts land in
:class:`~repro.diagnose.report.EngineStats` (``dedup_checked`` /
``dedup_merged`` / ``dedup_unknown``): the collapse is visible, never
silent.
"""

from __future__ import annotations

import dataclasses
from typing import List

from . import clock
from .report import EngineStats, Solution


def dedup_solutions(solutions: List[Solution], stats: EngineStats,
                    conflict_budget: int = 2000) -> List[Solution]:
    """Collapse proven-equivalent solutions into representatives.

    Keeps discovery order: the first member of each proven-equivalence
    class becomes the representative and gains the later members'
    descriptions as :attr:`Solution.aliases`.  Solutions without an
    attached repaired netlist are kept verbatim (nothing to compare).
    """
    from ..analyze.prove import ProofStatus, prove_equivalent

    t0 = clock.now()
    kept: List[Solution] = []
    for sol in solutions:
        merged = False
        if sol.netlist is not None:
            for i, rep in enumerate(kept):
                if rep.netlist is None or rep.size != sol.size:
                    continue
                stats.dedup_checked += 1
                verdict = prove_equivalent(
                    rep.netlist, sol.netlist,
                    conflict_budget=conflict_budget)
                if verdict.status is ProofStatus.PROVEN:
                    kept[i] = dataclasses.replace(
                        rep, aliases=rep.aliases + (sol.describe(),))
                    stats.dedup_merged += 1
                    merged = True
                    break
                if verdict.status is ProofStatus.UNKNOWN:
                    stats.dedup_unknown += 1
        if not merged:
            kept.append(sol)
    stats.dedup_time += clock.now() - t0
    return kept
