"""Diagnosis state: the paper's ``Verr``/``Vcorr`` bit-lists.

Section 2: "we simulate a number of random input test vectors V and
create two bit-lists, Verr_l and Vcorr_l, on every line l in the circuit.
The i-th entry of the Verr_l (Vcorr_l) list contains the logic value of l
when we simulate the i-th input test vector from V with erroneous
(correct) primary output responses."

We store the same information column-wise: one packed value matrix for
the whole implementation plus two packed vector masks (``err_mask``,
``corr_mask``) partitioning V.  ``Verr_l`` is then ``values[l] &
err_mask`` conceptually; every count the heuristics need reduces to an
AND + popcount.  The bit-lists are "properly updated during diagnosis and
correction" simply by rebuilding the state of each decision-tree node
from its (corrected) netlist.
"""

from __future__ import annotations

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..sim.compare import masked
from ..sim.logicsim import output_rows, propagate, simulate
from ..sim.packing import PatternSet, popcount, tail_mask


def reference_outputs(netlist: Netlist,
                      patterns: PatternSet) -> np.ndarray:
    """Packed output rows of a netlist over a pattern set.

    The shared *ingest* step of the staged pipeline
    (:mod:`repro.diagnose.pipeline`): the combinational engine uses it
    for the spec's reference responses, the time-frame and SAT
    diagnosers for the faulty device's observed responses.
    """
    return output_rows(netlist, simulate(netlist, patterns))


def error_partition(out: np.ndarray, ref_out: np.ndarray,
                    nbits: int) -> tuple:
    """Partition V against reference responses (the *bitlists* step).

    Returns ``(diff, err_mask, num_err)``: per-output packed mismatch
    rows (tail-masked), the packed mask of vectors failing on any
    output, and its popcount.  One definition shared by
    :class:`DiagnosisState`, the time-frame joint state and the SAT
    diagnoser's constraint-vector split.
    """
    diff = masked(out ^ ref_out, nbits)
    err_mask = np.bitwise_or.reduce(diff, axis=0)
    return diff, err_mask, popcount(err_mask)


class DiagnosisState:
    """Simulation snapshot of one implementation against the spec.

    This object is immutable in spirit: the decision tree creates a fresh
    state per node (after applying that node's correction to a netlist
    copy).

    Attributes:
        netlist: the (possibly partially corrected) implementation.
        table: its line table (fault/correction sites).
        values: packed value matrix, one row per signal.
        spec_out: packed spec responses, one row per primary output.
        diff: per-output packed mismatch rows (tail-masked).
        err_mask: packed mask of failing vectors (any output wrong).
        corr_mask: packed mask of passing vectors.
        num_err / num_corr: vector counts per partition.
        num_err_pairs: failing (output, vector) pairs.
    """

    def __init__(self, netlist: Netlist, patterns: PatternSet,
                 spec_out: np.ndarray,
                 values: np.ndarray | None = None):
        self.netlist = netlist
        self.patterns = patterns
        self.table = LineTable(netlist)
        self.values = simulate(netlist, patterns) if values is None \
            else values
        self.spec_out = spec_out
        out = output_rows(netlist, self.values)
        self.diff, self.err_mask, self.num_err = error_partition(
            out, spec_out, patterns.nbits)
        full = np.full_like(self.err_mask, np.uint64(0xFFFFFFFFFFFFFFFF))
        full[-1] = tail_mask(patterns.nbits)
        self.corr_mask = self.err_mask ^ full
        self.num_corr = patterns.nbits - self.num_err
        self.num_err_pairs = popcount(self.diff)
        # One scratch diff matrix reused by every outcome_of_override
        # call (the heuristic-1/3 sweeps evaluate hundreds of overrides
        # per tree node; allocating a fresh matrix each time dominated).
        self._diff_scratch: np.ndarray | None = None
        # Baseline big-int rows for the event kernel, shared by every
        # propagate call on this state (values never mutates in place).
        self._base_ints: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def rectified(self) -> bool:
        """True when the implementation matches the spec on all of V."""
        return self.num_err == 0

    @property
    def v_ratio(self) -> float:
        """Fraction of failing vectors (the ranking formula's V_ratio)."""
        if self.patterns.nbits == 0:
            return 0.0
        return self.num_err / self.patterns.nbits

    def line_values(self, line_index: int) -> np.ndarray:
        """Packed logic values carried by a line (== its stem signal)."""
        return self.values[self.table[line_index].driver]

    def verr_size(self) -> int:
        """|Verr|: entries in every line's erroneous bit-list."""
        return self.num_err

    def cone_of(self, signal: int) -> set:
        """Fanout cone of a signal (gate index set).

        Backed by the :meth:`Netlist.sorted_cone` cache, so the cone
        survives across every consumer working on this netlist.
        """
        return self.netlist.fanout_cone(signal)

    # ------------------------------------------------------------------
    def propagate_line_override(self, line_index: int,
                                new_words: np.ndarray) -> dict:
        """Push a hypothetical line value through its fanout cone.

        Stem lines override the whole signal, branch lines only the sink
        pin.  Returns the changed-row dict of
        :func:`repro.sim.logicsim.propagate`.
        """
        line = self.table[line_index]
        if line.is_stem:
            return propagate(self.netlist, self.values,
                             stem_overrides={line.driver: new_words},
                             base_ints=self._base_ints)
        return propagate(self.netlist, self.values,
                         pin_overrides={(line.sink, line.pin): new_words},
                         base_ints=self._base_ints)

    def outcome_of_override(self, line_index: int,
                            new_words: np.ndarray) -> "OverrideOutcome":
        """Propagate an override and summarize its effect on V.

        Reuses one per-state scratch diff matrix across calls, so a
        whole suspect-scoring sweep performs no per-candidate
        allocations beyond the propagate result itself.
        """
        changed = self.propagate_line_override(line_index, new_words)
        nbits = self.patterns.nbits
        if self._diff_scratch is None:
            self._diff_scratch = np.empty_like(self.diff)
        diff_after = self._diff_scratch
        np.copyto(diff_after, self.diff)
        for pos, po in enumerate(self.netlist.outputs):
            row = changed.get(po)
            if row is not None:
                np.bitwise_xor(row, self.spec_out[pos],
                               out=diff_after[pos])
        diff_after[..., -1] &= tail_mask(nbits)
        err_after = np.bitwise_or.reduce(diff_after, axis=0)
        rectified_vecs = popcount(self.err_mask & ~err_after)
        broken_vecs = popcount(self.corr_mask & err_after)
        fixed_pairs = popcount(self.diff & ~diff_after)
        return OverrideOutcome(rectified_vecs, broken_vecs, fixed_pairs,
                               popcount(err_after) == 0)


class OverrideOutcome:
    """Effect of one hypothetical line override on the vector set."""

    __slots__ = ("rectified_vectors", "broken_vectors", "fixed_pairs",
                 "fixes_all")

    def __init__(self, rectified_vectors: int, broken_vectors: int,
                 fixed_pairs: int, fixes_all: bool):
        self.rectified_vectors = rectified_vectors
        self.broken_vectors = broken_vectors
        self.fixed_pairs = fixed_pairs
        self.fixes_all = fixes_all

    def h1_score(self, state: DiagnosisState) -> float:
        """Fraction of failing vectors this override rectifies."""
        return (self.rectified_vectors / state.num_err
                if state.num_err else 1.0)

    def h3_score(self, state: DiagnosisState) -> float:
        """Fraction of passing vectors that stay passing."""
        return (1.0 - self.broken_vectors / state.num_corr
                if state.num_corr else 1.0)
