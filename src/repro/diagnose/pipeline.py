"""Staged diagnosis pipeline core: session, stages, instrumentation.

Every diagnosis mode — exact stuck-at, DEDC tree, time-frame
sequential, SAT-based — is one walk through the same stage sequence::

    ingest -> bitlists -> pathtrace -> prescreen -> rank-screen
           -> search -> dedup -> verify -> report

A :class:`DiagnosisSession` owns what the stages share: the config, the
run deadline, the shard executor and a single
:class:`~repro.diagnose.report.EngineStats`.  Each stage execution is
wrapped in :meth:`DiagnosisSession.stage`, which appends one structured
record to ``EngineStats.stages`` (and mirrors it to the opt-in
``--trace`` JSONL stream): stage name, optional deepening target,
input/output item counts, a free-form ``info`` dict and the stage's
wall time.  Wall times come from :mod:`repro.diagnose.clock` and are
*excluded* from the determinism contract; every other record field is a
deterministic function of ``(netlist, patterns, config)``.

Modes differ in how much of the sequence they delegate: the exact
protocol records ``pathtrace``/``prescreen``/``rank-screen`` for the
root expansion that doubles as its shard plan (the same computations
recur inside every search node, where they are accounted in the time
counters, not as stage records); the DEDC ladder folds them into the
per-node tree work and records its attempt plan under ``rank-screen``;
the SAT mode's ``verify`` is interleaved with enumeration and reported
as a summary record.  Iterative-deepening modes repeat the middle
stages once per target cardinality (``target`` tells them apart).

The search stage itself is a pluggable :class:`SearchStrategy` per
mode, and the shard scheduler of :mod:`repro.parallel` is the default
*executor* — any callable with :func:`repro.parallel.run_shards`'s
signature can replace it.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

from . import clock
from .report import EngineStats, mark_truncated, sort_solutions

#: JSONL trace stream schema (the ``run-start`` event carries it).
TRACE_SCHEMA = "repro.trace/1"

#: Canonical stage sequence.  A mode may skip stages or repeat the
#: per-target middle of the sequence, but never invents new names.
STAGE_ORDER = ("ingest", "bitlists", "pathtrace", "prescreen",
               "rank-screen", "search", "dedup", "verify", "report")


class StageRecord:
    """Mutable record handed to the body of one stage execution.

    The body fills ``items_out`` / ``info`` (and may correct
    ``items_in``); the session stamps ``wall_s`` and files the frozen
    dict into ``EngineStats.stages`` when the stage closes.
    """

    __slots__ = ("name", "target", "items_in", "items_out", "info",
                 "wall_s")

    def __init__(self, name: str, target: int | None = None,
                 items_in: int = 0):
        if name not in STAGE_ORDER:
            raise ValueError(f"unknown stage {name!r}; stages are "
                             f"{', '.join(STAGE_ORDER)}")
        self.name = name
        self.target = target
        self.items_in = items_in
        self.items_out = 0
        self.info: dict = {}
        self.wall_s = 0.0

    def to_dict(self) -> dict:
        return {"stage": self.name, "target": self.target,
                "in": self.items_in, "out": self.items_out,
                "info": dict(self.info), "wall_s": self.wall_s}


class Stage:
    """Protocol for a composable pipeline stage.

    ``run(session, payload)`` consumes the previous stage's payload and
    returns the next one, recording itself via ``session.stage``.
    Subclass it, or wrap a plain function with :class:`FunctionStage`.
    """

    name = "?"

    def run(self, session: "DiagnosisSession", payload):
        raise NotImplementedError


class FunctionStage(Stage):
    """A stage from a ``fn(session, payload, record) -> payload``."""

    def __init__(self, name: str, fn, target: int | None = None):
        self.name = name
        self.fn = fn
        self.target = target

    def run(self, session: "DiagnosisSession", payload):
        with session.stage(self.name, target=self.target) as record:
            return self.fn(session, payload, record)


def run_stages(session: "DiagnosisSession", stages, payload=None):
    """Thread a payload through a stage chain, recording each stage."""
    for stage in stages:
        payload = stage.run(session, payload)
    return payload


class TraceWriter:
    """Opt-in JSONL event stream (``repro diagnose --trace FILE``).

    One JSON object per line, ``seq``-numbered in emission order:
    ``run-start`` (carries the schema tag and run parameters), one
    ``stage`` event per closed stage record, ``run-end`` (outcome
    summary).  ``wall_s`` / ``total_s`` are measurements; every other
    field is deterministic.
    """

    def __init__(self, stream):
        self._stream = stream
        self._seq = 0

    def emit(self, event: str, **payload) -> None:
        line = {"seq": self._seq, "event": event}
        line.update(payload)
        self._stream.write(json.dumps(line, sort_keys=True) + "\n")
        self._seq += 1


def validate_trace_events(events) -> list:
    """Schema-check a parsed trace stream; returns error strings."""
    errors: list = []
    if not events:
        return ["empty trace"]
    for pos, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {pos}: not an object")
            continue
        if event.get("seq") != pos:
            errors.append(f"event {pos}: seq {event.get('seq')!r} out "
                          "of order")
        kind = event.get("event")
        if kind == "run-start":
            if event.get("schema") != TRACE_SCHEMA:
                errors.append(f"event {pos}: run-start schema must be "
                              f"{TRACE_SCHEMA}")
        elif kind == "stage":
            if event.get("stage") not in STAGE_ORDER:
                errors.append(f"event {pos}: unknown stage "
                              f"{event.get('stage')!r}")
            for key in ("in", "out"):
                value = event.get(key)
                if not isinstance(value, int) or value < 0:
                    errors.append(f"event {pos}: {key!r} must be a "
                                  "non-negative int")
            if not isinstance(event.get("wall_s"), (int, float)) \
                    or event["wall_s"] < 0:
                errors.append(f"event {pos}: wall_s must be a "
                              "non-negative number")
            if not isinstance(event.get("info"), dict):
                errors.append(f"event {pos}: info must be an object")
        elif kind == "run-end":
            for key in ("found", "solutions", "nodes", "truncated",
                        "total_s"):
                if key not in event:
                    errors.append(f"event {pos}: run-end missing {key}")
        else:
            errors.append(f"event {pos}: unknown event {kind!r}")
    if events and events[0].get("event") != "run-start":
        errors.append("first event must be run-start")
    if events and events[-1].get("event") != "run-end":
        errors.append("last event must be run-end")
    return errors


def validate_trace_file(path: str) -> list:
    """Parse and schema-check a ``--trace`` JSONL file."""
    events = []
    errors: list = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
    return errors + validate_trace_events(events)


class DiagnosisSession:
    """Shared resources and instrumentation of one diagnosis run.

    Owns the config, the single :class:`EngineStats`, the monotonic run
    deadline, the optional :class:`TraceWriter` and the shard executor
    (default: :func:`repro.parallel.run_shards`; any callable with the
    same signature plugs in).  Diagnosers record construction-time
    stages (``ingest``/``bitlists``/...) on the session, call
    :meth:`freeze_setup`, and then each :meth:`begin_run` starts a fresh
    ``EngineStats`` pre-seeded with copies of those setup records — so
    ``run()`` stays repeatable while the one-time setup cost remains
    visible in every result.
    """

    def __init__(self, config, trace: TraceWriter | None = None,
                 executor=None):
        if executor is None:
            from ..parallel import run_shards
            executor = run_shards
        self.config = config
        self.trace = trace
        self.executor = executor
        self.stats = EngineStats()
        self.deadline: float | None = None
        self._setup_stages: list = []
        # Construction-time stage events are deferred until the first
        # begin_run so the trace stream always opens with run-start.
        self._run_started = False

    # -- lifecycle -----------------------------------------------------
    def freeze_setup(self) -> None:
        """Snapshot construction-time stage records for replay."""
        self._setup_stages = [dict(rec) for rec in self.stats.stages]

    def begin_run(self, time_budget: float | None = None,
                  **payload) -> EngineStats:
        """Fresh stats (setup stages replayed), armed deadline, trace."""
        self.stats = EngineStats()
        self.stats.stages.extend(dict(rec) for rec in self._setup_stages)
        budget = (time_budget if time_budget is not None
                  else self.config.time_budget)
        self.deadline = clock.deadline_in(budget)
        self._run_started = True
        if self.trace:
            self.trace.emit("run-start", schema=TRACE_SCHEMA, **payload)
            for rec in self.stats.stages:
                self.trace.emit("stage", **rec)
        return self.stats

    def end_run(self, **payload) -> None:
        if self.trace:
            self.trace.emit("run-end", **payload)

    # -- deadline ------------------------------------------------------
    def expired(self) -> bool:
        return clock.expired(self.deadline)

    def wall_deadline(self) -> float | None:
        """The run deadline as an epoch timestamp workers can share."""
        return clock.perf_to_wall(self.deadline)

    # -- instrumentation -----------------------------------------------
    @contextmanager
    def stage(self, name: str, target: int | None = None,
              items_in: int = 0):
        """Record one stage execution (stats + trace) around a body."""
        record = StageRecord(name, target=target, items_in=items_in)
        t0 = clock.now()
        try:
            yield record
        finally:
            record.wall_s = clock.now() - t0
            frozen = record.to_dict()
            self.stats.stages.append(frozen)
            if self.trace and self._run_started:
                self.trace.emit("stage", **frozen)

    # -- shard plumbing (shared by the engine strategies) --------------
    def merge_shard(self, stats: EngineStats, res, label: str,
                    merged: dict | None) -> None:
        """Fold one shard's outcome into the level stats, in plan order.

        A failed shard (worker crash, deadline overrun) truncates the
        run but never drops its siblings' solutions.
        """
        if res.error is not None:
            mark_truncated(stats, f"{label}: {res.error}")
            stats.shards.append({"shard": label, "nodes": 0,
                                 "truncated": True, "wall_s": 0.0,
                                 "error": res.error})
            return
        stats.merge(res.stats)
        stats.shards.append({"shard": label, "nodes": res.stats.nodes,
                             "truncated": res.stats.truncated,
                             "wall_s": res.stats.total_time,
                             "error": None})
        if merged is not None:
            for solution in res.solutions:
                merged.setdefault(solution.key, solution)


# ----------------------------------------------------------------------
# search-stage strategies
# ----------------------------------------------------------------------
class SearchStrategy:
    """One diagnosis mode's search stage.

    ``search(session, diagnoser)`` runs the mode's deepening loop,
    recording per-target stage records on the session, and returns the
    mode's solution container.  The four concrete strategies are
    :class:`ExactStuckAtStrategy` and :class:`LadderStrategy` here plus
    ``TimeFrameStrategy`` (:mod:`repro.diagnose.timeframe`) and
    ``SatSearchStrategy`` (:mod:`repro.diagnose.satdiag`).
    """

    name = "?"

    def search(self, session: DiagnosisSession, diagnoser):
        raise NotImplementedError


def select_strategy(config) -> SearchStrategy:
    """The engine strategy a config asks for (validated upstream)."""
    from .config import Mode
    if config.exact and config.mode is Mode.STUCK_AT:
        return ExactStuckAtStrategy()
    return LadderStrategy()


class ExactStuckAtStrategy(SearchStrategy):
    """Exact stuck-at protocol (Table 1): iterative deepening over a
    sharded exhaustive search, one shard per screened root correction,
    merged in plan order (see :mod:`repro.parallel`)."""

    name = "exact-stuck-at"

    def search(self, session: DiagnosisSession, diagnoser):
        stats = session.stats
        for target in range(1, session.config.max_errors + 1):
            if session.expired():
                mark_truncated(stats, "time-budget")
                break
            level = EngineStats()
            found = self._search_level(session, diagnoser, target, level)
            stats.merge(level)
            stats.levels_tried.append(f"N={target} exact")
            if found:
                return found
        return []

    def _search_level(self, session: DiagnosisSession, diagnoser,
                      target: int, level: EngineStats) -> list:
        from .engine import (pathtrace_suspects, prescreen_lines,
                             screen_and_rank)
        config = session.config
        state = diagnoser.root_state
        with session.stage("pathtrace", target=target,
                           items_in=state.num_err) as rec:
            lines = pathtrace_suspects(state, frozenset(), config, level)
            rec.items_out = len(lines)
            rec.info = {"samples": config.pathtrace_samples}
        with session.stage("prescreen", target=target,
                           items_in=len(lines)) as rec:
            kept = prescreen_lines(state, lines, frozenset(), config,
                                   level)
            rec.items_out = len(kept)
            rec.info = {"enabled": config.static_prescreen,
                        "dropped": len(lines) - len(kept)}
        with session.stage("rank-screen", target=target,
                           items_in=len(kept)) as rec:
            ordered = screen_and_rank(state, kept, frozenset(), target,
                                      config, level,
                                      diagnoser.invariants)
            rec.items_out = len(ordered)
            rec.info = {"head": min(len(ordered),
                                    config.corrections_per_node)}
        if not ordered:
            return []
        with session.stage("search", target=target,
                           items_in=len(ordered)) as rec:
            wall_deadline = session.wall_deadline()
            tasks = [("exact", i, target, corr, wall_deadline)
                     for i, (_complemented, corr) in enumerate(ordered)]
            results = session.executor(
                tasks, config.jobs, payload=diagnoser._worker_payload(),
                context=diagnoser._local_context(),
                wall_deadline=wall_deadline)
            merged: dict = {}
            for res in results:
                signature = ordered[res.index][1].describe(
                    state.netlist, state.table)
                session.merge_shard(level, res,
                                    f"N={target} {signature}", merged)
            found = sort_solutions(merged.values())
            rec.items_out = len(found)
            rec.info = {"shards": len(tasks), "jobs": config.jobs,
                        "nodes": level.nodes,
                        "facts_reused": level.facts_reused,
                        "truncated": level.truncated}
        return found


class LadderStrategy(SearchStrategy):
    """DEDC / first-solution protocol (Table 2): the h1/h2/h3
    relaxation ladder, one decision-tree attempt per rung, then a final
    full-candidate attempt — serial or speculatively sharded, with
    identical deterministic counters either way."""

    name = "ladder"

    def search(self, session: DiagnosisSession, diagnoser):
        stats = session.stats
        for target in range(1, session.config.max_errors + 1):
            if session.expired():
                mark_truncated(stats, "time-budget")
                break
            found = self._search_level(session, diagnoser, target)
            if found:
                return found
        return []

    def _search_level(self, session: DiagnosisSession, diagnoser,
                      target: int) -> list:
        from .engine import _attempt_label
        config = session.config
        stats = session.stats
        ladder = config.ladder(target)
        # Relaxation ladder, then one last attempt with every path-
        # trace-marked line as a candidate (the "reduce progressively
        # when the algorithm returns with no corrections" endgame of
        # §3.2).  Path trace and pre-screen run inside every tree node
        # here, so this plan record is the level's rank-screen stage.
        attempts = [(h, None) for h in ladder] + [(ladder[-1], 1.0)]
        with session.stage("rank-screen", target=target,
                           items_in=len(ladder)) as rec:
            rec.items_out = len(attempts)
            rec.info = {"attempts": [_attempt_label(target, h, fraction)
                                     for h, fraction in attempts]}
        nodes_before = stats.nodes
        with session.stage("search", target=target,
                           items_in=len(attempts)) as rec:
            if config.jobs > 1 and len(attempts) > 1:
                found = self._sharded(session, diagnoser, target,
                                      attempts)
            else:
                found = self._serial(session, diagnoser, target,
                                     attempts)
            rec.items_out = len(found)
            rec.info = {"jobs": config.jobs,
                        "nodes": stats.nodes - nodes_before,
                        "truncated": stats.truncated}
        return found

    def _serial(self, session: DiagnosisSession, diagnoser, target: int,
                attempts: list) -> list:
        # Same per-attempt accounting (one shard record per rung
        # executed) as the sharded merge, so jobs=1 and jobs=N report
        # identical deterministic counters.
        from ..parallel import ShardResult
        from .engine import _attempt_label
        from .tree import DecisionTree
        config = session.config
        stats = session.stats
        for index, (h, fraction) in enumerate(attempts):
            if session.expired():
                mark_truncated(stats, "time-budget")
                break
            attempt_stats = EngineStats()
            t0 = clock.now()
            tree = DecisionTree(diagnoser.root_state, target, h, config,
                                attempt_stats,
                                candidate_fraction=fraction,
                                deadline=session.deadline)
            solutions = tree.run(stop_at_first=True,
                                 traversal=config.traversal)
            attempt_stats.total_time = clock.now() - t0
            label = _attempt_label(target, h, fraction)
            session.merge_shard(stats,
                                ShardResult(index, solutions,
                                            attempt_stats), label, None)
            stats.levels_tried.append(label)
            if solutions:
                return solutions
        return []

    def _sharded(self, session: DiagnosisSession, diagnoser,
                 target: int, attempts: list) -> list:
        """Speculative ladder: every rung runs as its own shard.

        The serial loop stops at the first rung that yields; here all
        rungs run concurrently and the merge keeps the earliest
        successful one, folding in only the stats of rungs the serial
        loop would have executed (rungs at or before the winner) so the
        deterministic counters match ``jobs=1``.  Work spent on
        discarded speculative rungs is real but unreported by design.
        """
        from .engine import _attempt_label
        stats = session.stats
        wall_deadline = session.wall_deadline()
        tasks = [("attempt", i, target, h, fraction, wall_deadline)
                 for i, (h, fraction) in enumerate(attempts)]
        results = session.executor(tasks, session.config.jobs,
                                   payload=diagnoser._worker_payload(),
                                   wall_deadline=wall_deadline)
        winner = None
        for res in results:
            if res.error is None and res.solutions:
                winner = res.index
                break
        last = winner if winner is not None else len(results) - 1
        for res in results[:last + 1]:
            h, fraction = attempts[res.index]
            label = _attempt_label(target, h, fraction)
            session.merge_shard(stats, res, label, None)
            if res.error is None:
                stats.levels_tried.append(label)
        if winner is None:
            return []
        return list(results[winner].solutions)
