"""Unified timing source for the diagnose layer.

Every deadline and stats timing in :mod:`repro.diagnose` goes through
this module, on the monotonic ``time.perf_counter`` scale — wall-clock
measurements are *observability only* and excluded from the engine's
determinism contract (solutions and deterministic counters are functions
of ``(netlist, patterns, config)``, never of elapsed time).

Epoch wall-clock (``time.time``) appears in exactly one role: converting
a deadline for the cross-process boundary, because ``perf_counter``
values are not comparable between processes.  :mod:`repro.parallel`
keeps its own ``time.time`` calls for the same reason — it *is* the
boundary; everything inside the diagnose layer converts through
:func:`perf_to_wall` / :func:`wall_to_perf`.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic timestamp (``time.perf_counter``)."""
    return time.perf_counter()


def wall_now() -> float:
    """Epoch timestamp — for the cross-process boundary only."""
    return time.time()


def deadline_in(budget: float | None) -> float | None:
    """Monotonic deadline ``budget`` seconds from now (None = no limit)."""
    if budget is None:
        return None
    return now() + budget


def expired(deadline: float | None) -> bool:
    """True once a monotonic deadline has passed (None never expires)."""
    return deadline is not None and now() > deadline


def perf_to_wall(deadline: float | None) -> float | None:
    """Monotonic deadline -> epoch timestamp workers can share."""
    if deadline is None:
        return None
    return wall_now() + max(0.0, deadline - now())


def wall_to_perf(wall_deadline: float | None) -> float | None:
    """Epoch deadline -> this process's monotonic scale."""
    if wall_deadline is None:
        return None
    return now() + (wall_deadline - wall_now())
