"""Configuration of the incremental diagnosis engine.

The paper drives its three heuristics with a triple ``h1/h2/h3`` that is
progressively relaxed when the search returns empty-handed (§3.3):

* runs initiate with ``1/1/1`` (single-error case),
* a typical relaxed run is ``0.3/0.7/0.95`` then ``0.3/0.5/0.85``,
* the floor is ``0.1/0.3/0.5``, after which a node is declared a failure
  leaf,
* ``h1`` is reduced before ``h2``/``h3`` as error cardinality grows,
  "since these two parameters are error independent".

:func:`default_schedule` reproduces that relaxation ladder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Mode(enum.Enum):
    """What correction vocabulary the engine may use."""

    STUCK_AT = "stuck-at"          # fault diagnosis: sa0/sa1 models
    DESIGN_ERROR = "design-error"  # DEDC: the Abadir error model


@dataclass(frozen=True)
class HLevel:
    """One rung of the relaxation ladder.

    Attributes:
        h1: minimum fraction of erroneous primary outputs a candidate
            *line* must be able to rectify (heuristic 1 threshold).
        h2: minimum fraction of ``Verr`` bits a candidate *correction*
            must complement (heuristic 2 / Theorem 1 screen).
        h3: minimum fraction of correct primary outputs that must stay
            correct after the correction (heuristic 3 threshold).
    """

    h1: float
    h2: float
    h3: float

    def __str__(self) -> str:
        return f"{self.h1:g}/{self.h2:g}/{self.h3:g}"


#: The paper's floor: below this a node is a failure leaf (§3.3).
FLOOR = HLevel(0.1, 0.3, 0.5)


def default_schedule(num_errors: int) -> list[HLevel]:
    """Relaxation ladder for a search targeting ``num_errors`` errors.

    Mirrors §3.3: strict levels first; as the target cardinality grows,
    ``h1`` is relaxed ahead of ``h2``/``h3``; everything bottoms out at
    the ``0.1/0.3/0.5`` floor.
    """
    if num_errors <= 1:
        ladder = [HLevel(1.0, 1.0, 1.0),
                  HLevel(0.6, 0.9, 0.98),
                  HLevel(0.3, 0.7, 0.95)]
    elif num_errors == 2:
        ladder = [HLevel(0.45, 0.9, 0.97),
                  HLevel(0.3, 0.7, 0.95),
                  HLevel(0.3, 0.5, 0.85)]
    else:
        ladder = [HLevel(0.3, 0.7, 0.95),
                  HLevel(0.3, 0.5, 0.85),
                  HLevel(0.2, 0.4, 0.7)]
    ladder.append(FLOOR)
    return ladder


@dataclass
class DiagnosisConfig:
    """Knobs of :class:`~repro.diagnose.engine.IncrementalDiagnoser`.

    Attributes:
        mode: correction vocabulary (stuck-at vs design-error).
        max_errors: largest correction-set cardinality attempted.
        exact: exhaustively traverse the tree and return *all* minimal
            correction tuples (the paper's Table 1 protocol) instead of
            stopping at the first valid set (Table 2 protocol).
        candidate_fraction: fraction of path-trace-marked lines promoted
            to the second diagnosis step ("top 5-20%", §3.1); exact mode
            keeps every marked line.
        pathtrace_samples: failing vectors sampled per path-trace pass.
        wire_source_limit: candidate new-source signals tried per gate
            for add/replace-wire corrections.
        corrections_per_node: pending-list length per tree node (the
            corrections kept after ranking).
        max_nodes: hard cap on decision-tree nodes per search level.
            In the exact protocol the search is sharded into one
            subtree per screened root correction (see
            :mod:`repro.parallel`) and the cap applies *per shard*
            unless ``worker_budget`` overrides it.
        jobs: process-pool width for the sharded search.  ``1``
            (default) runs the same shard plan in-process; any ``N``
            returns the identical solution list and deterministic
            counters (the scheduler's determinism contract, valid when
            ``time_budget`` is None).
        worker_budget: per-shard node budget; None means each shard
            inherits ``max_nodes``.  Deliberately independent of
            ``jobs`` so shard truncation is reproducible at any pool
            width.
        max_rounds: hard cap on rounds (paper observes <=6 typical, 9 for
            c1355/c880-like circuits, allowing up to 256 nodes).
        static_prescreen: drop suspects that are statically
            unobservable or ODC-blocked (dominator side input provably
            at its controlling value) before Heuristic 1 runs — see
            :func:`repro.diagnose.screening.prescreen_suspects`.  Each
            dropped suspect is a proven per-vector no-op at every
            primary output; the screen is re-derived per tree node from
            the (cached) dataflow facts of that node's netlist.
        incremental_facts: warm each child node's dataflow-facts bundle
            from its parent's via the netlist edit journal
            (:func:`repro.analyze.incremental.warm_facts`) instead of
            recomputing the facts from scratch at the child's first
            pre-screen.  Every repair is exact, so results are
            bit-identical with the flag off — only
            ``EngineStats.facts_reused`` / ``facts_recomputed`` /
            ``delta_edits`` and the per-node facts cost change.  Only
            meaningful while ``static_prescreen`` is on (nothing else
            reads the facts per node).
        seq_prescreen: sequential variant of the pre-screen, used by
            :class:`~repro.diagnose.timeframe.TimeFrameDiagnoser`
            only: drop suspects whose driver is provably masked *from
            reset* — unobservable in the full-scan model (no
            combinational path to any primary output or flip-flop data
            input) or ODC-blocked with the side-input constant supplied
            by the reset-state fixpoint — see
            :func:`repro.analyze.seq.seq_masked_signals`, which carries
            the frame-induction soundness argument.  Each dropped
            suspect is a proven whole-run no-op at every primary output
            from reset.  Off by default; like ``static_prescreen`` the
            proof covers single suspects, and exotic tuples whose
            members pairwise unmask each other are in principle
            affected (the documented per-node caveat of
            :func:`repro.diagnose.screening.prescreen_suspects`).
        theorem1_safety: multiply the Theorem 1 bound in exact mode
            (<1 loosens the screen; 1.0 is the proven bound).
        h3_exact: heuristic-3 threshold in exact mode (0 disables the
            screen so no valid tuple is ever pruned by it).
        schedule: optional explicit relaxation ladder override.
        prove_dedup: after the search, SAT-equivalence-check pairs of
            surviving correction candidates (repaired netlist vs
            repaired netlist through a full miter) and collapse
            proven-equivalent ones into one reported candidate with
            aliases — see :func:`repro.diagnose.dedup.dedup_solutions`.
            Off by default: the paper's Table 1 counts every minimal
            correction tuple separately.
        prove_budget: per-equivalence-check conflict budget of the
            dedup pass; budget-exhausted checks never merge.
        check_invariants: debug mode — assert the Section 2
            ``Verr``/``Vcorr`` partition, the Theorem 1 preconditions
            and live-line referencing at every tree node (see
            :class:`repro.analyze.InvariantChecker`).  Off by default;
            when off the engine pays one ``if`` per node.
        seed: randomness (path-trace vector sampling, wire sources).
            Each tree node samples with a seed derived from this value
            and its applied-correction signatures
            (:func:`repro.diagnose.pathtrace.derive_seed`), so runs
            are reproducible while nodes stay decorrelated.
    """

    mode: Mode = Mode.STUCK_AT
    max_errors: int = 4
    exact: bool = True
    candidate_fraction: float = 0.15
    pathtrace_samples: int = 24
    wire_source_limit: int = 8
    corrections_per_node: int = 24
    max_nodes: int = 4000
    jobs: int = 1
    worker_budget: int | None = None
    max_rounds: int = 9
    static_prescreen: bool = True
    incremental_facts: bool = True
    seq_prescreen: bool = False
    theorem1_safety: float = 1.0
    h3_exact: float = 0.0
    prove_dedup: bool = False
    prove_budget: int = 2000
    schedule: list = field(default_factory=list)
    traversal: str = "rounds"   # "rounds" (paper) | "dfs" | "bfs"
    time_budget: float | None = None  # wall-clock seconds for one run()
    check_invariants: bool = False
    seed: int = 0

    def ladder(self, num_errors: int) -> list[HLevel]:
        return list(self.schedule) or default_schedule(num_errors)

    def validate(self, *,
                 sequential: bool | None = None) -> "DiagnosisConfig":
        """Reject contradictory or mode-inapplicable knob combinations.

        Called from every pipeline entry point (engine, time-frame and
        SAT diagnosers, CLI) so a bad flag combination fails up front
        with an actionable :class:`~repro.errors.DiagnosisError`
        instead of being silently ignored mid-search.  String ``mode``
        values are coerced to :class:`Mode` in place.

        Args:
            sequential: ``False`` for the combinational engine (rejects
                ``seq_prescreen``, which only the time-frame diagnoser
                reads), ``True`` for the sequential one, ``None`` skips
                the engine-specific check.

        Note ``worker_budget`` is deliberately *not* tied to ``jobs``:
        the per-shard budget applies identically at any pool width
        (including the in-process ``jobs=1`` plan), which is what makes
        shard truncation reproducible — see the attribute docs.

        Returns self, so entry points can chain on a fresh config.
        """
        from ..errors import DiagnosisError

        if isinstance(self.mode, str):
            try:
                self.mode = Mode(self.mode)
            except ValueError:
                valid = ", ".join(repr(m.value) for m in Mode)
                raise DiagnosisError(
                    f"unknown diagnosis mode {self.mode!r}; valid "
                    f"modes are {valid}") from None
        if not isinstance(self.mode, Mode):
            raise DiagnosisError(
                f"mode must be a Mode or a mode string, got "
                f"{self.mode!r}")
        if self.exact and self.mode is not Mode.STUCK_AT:
            raise DiagnosisError(
                "exact=True is the exhaustive stuck-at protocol "
                "(Table 1); design-error mode stops at the first valid "
                "correction set — set exact=False for "
                "mode=Mode.DESIGN_ERROR")
        if self.traversal not in ("rounds", "dfs", "bfs"):
            raise DiagnosisError(
                f"unknown traversal {self.traversal!r}; choose "
                "'rounds' (paper), 'dfs' or 'bfs'")
        for name, floor in (("max_errors", 1), ("pathtrace_samples", 1),
                            ("wire_source_limit", 1),
                            ("corrections_per_node", 1),
                            ("max_nodes", 1), ("jobs", 1),
                            ("max_rounds", 1), ("prove_budget", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or value < floor:
                raise DiagnosisError(
                    f"{name} must be an int >= {floor} (got {value!r})")
        if self.worker_budget is not None and self.worker_budget < 0:
            raise DiagnosisError(
                f"worker_budget must be >= 0 or None (got "
                f"{self.worker_budget!r}); None means each shard "
                "inherits max_nodes")
        if not 0.0 < self.candidate_fraction <= 1.0:
            raise DiagnosisError(
                f"candidate_fraction must be in (0, 1] (got "
                f"{self.candidate_fraction!r}) — the paper promotes "
                "the top 5-20% of path-trace-marked lines")
        if self.theorem1_safety <= 0.0:
            raise DiagnosisError(
                f"theorem1_safety must be > 0 (got "
                f"{self.theorem1_safety!r}); 1.0 is the proven bound, "
                "smaller values loosen the screen")
        if not 0.0 <= self.h3_exact <= 1.0:
            raise DiagnosisError(
                f"h3_exact must be in [0, 1] (got {self.h3_exact!r}); "
                "0 disables the heuristic-3 screen in exact mode")
        if self.time_budget is not None and self.time_budget <= 0:
            raise DiagnosisError(
                f"time_budget must be > 0 seconds or None (got "
                f"{self.time_budget!r})")
        for level in self.schedule:
            if not isinstance(level, HLevel):
                raise DiagnosisError(
                    f"schedule entries must be HLevel (got {level!r})")
            for hname in ("h1", "h2", "h3"):
                value = getattr(level, hname)
                if not 0.0 <= value <= 1.0:
                    raise DiagnosisError(
                        f"schedule level {level}: {hname} must be in "
                        f"[0, 1] (got {value!r}); 0 disables that "
                        "heuristic (ablation studies rely on this)")
        if sequential is False and self.seq_prescreen:
            raise DiagnosisError(
                "seq_prescreen=True only applies to the sequential "
                "TimeFrameDiagnoser (reset-masked suspects); the "
                "combinational engine's pre-screen is static_prescreen")
        return self
