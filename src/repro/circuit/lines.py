"""Line model: the fault/correction sites of a netlist.

The paper counts circuit *lines* the ISCAS way: every gate output is a
*stem* line, and every fanout branch of a signal with more than one
consumer is an additional *branch* line.  Faults and corrections attach to
lines, not gates — a stuck-at on a branch affects only one consumer, while
a stuck-at on the stem affects all of them.

:class:`LineTable` enumerates the lines of a netlist and provides the
index mapping used throughout the diagnosis engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .netlist import Netlist


class LineKind(enum.Enum):
    STEM = "stem"
    BRANCH = "branch"


@dataclass(frozen=True)
class Line:
    """One fault site.

    Attributes:
        index: position in the owning :class:`LineTable`.
        kind: stem or fanout branch.
        driver: gate whose output signal the line carries.
        sink: consuming gate (branches only, else ``None``).
        pin: fanin position at ``sink`` (branches only, else ``None``).
    """

    index: int
    kind: LineKind
    driver: int
    sink: int | None = None
    pin: int | None = None

    @property
    def is_stem(self) -> bool:
        return self.kind is LineKind.STEM

    def describe(self, netlist: Netlist) -> str:
        """Human-readable site name, e.g. ``n12`` or ``n12->g7.1``."""
        drv = netlist.gates[self.driver].name
        if self.is_stem:
            return drv
        snk = netlist.gates[self.sink].name
        return f"{drv}->{snk}.{self.pin}"


class LineTable:
    """All lines of a netlist, in deterministic order (stems first in gate
    order, then branches in (sink, pin) order)."""

    def __init__(self, netlist: Netlist, only_live: bool = True):
        self.netlist = netlist
        self.lines: list[Line] = []
        self._stem_of_gate: dict[int, int] = {}
        self._branch_of: dict[tuple[int, int], int] = {}
        live = netlist.live_set() | set(netlist.inputs) if only_live else None
        fanouts = netlist.fanouts()
        for gate in netlist.gates:
            if live is not None and gate.index not in live:
                continue
            idx = len(self.lines)
            self.lines.append(Line(idx, LineKind.STEM, gate.index))
            self._stem_of_gate[gate.index] = idx
        for gate in netlist.gates:
            if live is not None and gate.index not in live:
                continue
            for pin, src in enumerate(gate.fanin):
                if len(fanouts[src]) > 1:
                    idx = len(self.lines)
                    self.lines.append(
                        Line(idx, LineKind.BRANCH, src, gate.index, pin))
                    self._branch_of[(gate.index, pin)] = idx

    def __len__(self) -> int:
        return len(self.lines)

    def __iter__(self):
        return iter(self.lines)

    def __getitem__(self, index: int) -> Line:
        return self.lines[index]

    def stem(self, gate_index: int) -> Line:
        """The stem line of a gate's output signal."""
        return self.lines[self._stem_of_gate[gate_index]]

    def branch(self, sink: int, pin: int) -> Line | None:
        """The branch line into ``sink.pin`` or ``None`` if single-fanout."""
        idx = self._branch_of.get((sink, pin))
        return None if idx is None else self.lines[idx]

    @property
    def num_stems(self) -> int:
        return len(self._stem_of_gate)

    @property
    def num_branches(self) -> int:
        return len(self._branch_of)

    def describe(self, index: int) -> str:
        return self.lines[index].describe(self.netlist)
