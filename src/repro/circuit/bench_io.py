"""ISCAS ``.bench`` format reader/writer.

The format used by the ISCAS'85/'89 benchmark distributions::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G22 = NAND(G1, G7)
    G7  = DFF(G22)

Gate keywords are case-insensitive.  ``DFF`` gates create sequential
netlists; :mod:`repro.circuit.sequential` turns those into full-scan
combinational equivalents the way the paper treats the ISCAS'89 circuits.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from ..errors import ParseError
from .gatetypes import GateType
from .netlist import Netlist

_LINE_RE = re.compile(
    r"^\s*(?P<lhs>[\w.\[\]$/]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[\w.\[\]$/]+)\)\s*$",
                    re.IGNORECASE)

_OPS = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_OP_NAMES = {
    GateType.BUF: "BUFF",
    GateType.NOT: "NOT",
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.DFF: "DFF",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def loads(text: str, name: str = "bench",
          lint: str | None = None) -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    After parsing, the netlist is linted per ``lint`` (an
    :mod:`repro.analyze` load policy: ``off``/``errors``/``warn``/
    ``strict``; default ``None`` uses the process-wide policy, normally
    ``errors``).  A policy violation raises :class:`ParseError`.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    defs: dict[str, tuple[GateType, list[str], int]] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            if io_match.group("kind").upper() == "INPUT":
                inputs.append(io_match.group("name"))
            else:
                outputs.append(io_match.group("name"))
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise ParseError(f"cannot parse {line!r}", line_no)
        lhs = gate_match.group("lhs")
        op = gate_match.group("op").upper()
        if op not in _OPS:
            raise ParseError(f"unknown gate keyword {op!r}", line_no)
        args = [a.strip() for a in gate_match.group("args").split(",")
                if a.strip()]
        if lhs in defs:
            raise ParseError(f"signal {lhs!r} defined twice", line_no)
        defs[lhs] = (_OPS[op], args, line_no)

    netlist = Netlist(name)
    for pi in inputs:
        netlist.add_input(pi)

    resolved: dict[str, int] = {pi: netlist.index_of(pi) for pi in inputs}
    # Two-phase: create DFFs first (their fanin may be defined after and may
    # form sequential loops), then resolve combinational gates recursively.
    for lhs, (gtype, _args, _line_no) in defs.items():
        if gtype is GateType.DFF:
            # Temporary self-loop placeholder; patched after resolution.
            idx = netlist.add_gate(lhs, GateType.INPUT)
            resolved[lhs] = idx

    def resolve(sig: str, stack: tuple[str, ...]) -> int:
        if sig in resolved:
            return resolved[sig]
        if sig not in defs:
            raise ParseError(f"signal {sig!r} used but never defined")
        if sig in stack:
            raise ParseError(f"combinational cycle through {sig!r}")
        gtype, args, line_no = defs[sig]
        try:
            fanin = [resolve(a, stack + (sig,)) for a in args]
            idx = netlist.add_gate(sig, gtype, fanin)
        except ParseError:
            raise
        except Exception as exc:  # arity errors -> ParseError with location
            raise ParseError(str(exc), line_no) from exc
        resolved[sig] = idx
        return idx

    for lhs in defs:
        resolve(lhs, ())
    # Patch DFF placeholders: real type + fanin.
    for lhs, (gtype, args, line_no) in defs.items():
        if gtype is GateType.DFF:
            if len(args) != 1:
                raise ParseError(f"DFF {lhs!r} needs exactly 1 input",
                                 line_no)
            idx = resolved[lhs]
            netlist.gates[idx].gtype = GateType.DFF
            netlist.gates[idx].fanin = [resolved[args[0]]]
    netlist._dirty()

    missing = [po for po in outputs if po not in resolved]
    if missing:
        raise ParseError(f"output {missing[0]!r} never defined")
    netlist.set_outputs(resolved[po] for po in outputs)
    # Imported lazily: repro.analyze itself imports circuit modules.
    from ..analyze import lint_on_load
    lint_on_load(netlist, policy=lint, source=name)
    return netlist


def load(path, name: str | None = None, lint: str | None = None) -> Netlist:
    """Read a ``.bench`` file from ``path`` (linting per ``lint``)."""
    path = Path(path)
    return loads(path.read_text(), name or path.stem, lint=lint)


def dumps(netlist: Netlist) -> str:
    """Serialize a netlist to ``.bench`` text (live gates only)."""
    out = io.StringIO()
    _dump(netlist, out)
    return out.getvalue()


def dump(netlist: Netlist, path) -> None:
    """Write a netlist to a ``.bench`` file."""
    with open(path, "w") as handle:
        _dump(netlist, handle)


def _dump(netlist: Netlist, handle: TextIO) -> None:
    handle.write(f"# {netlist.name}\n")
    handle.write(f"# {netlist.num_inputs} inputs, "
                 f"{netlist.num_outputs} outputs\n")
    for pi in netlist.inputs:
        handle.write(f"INPUT({netlist.gates[pi].name})\n")
    for po in netlist.outputs:
        handle.write(f"OUTPUT({netlist.gates[po].name})\n")
    live = netlist.live_set()
    for idx in netlist.topo_order():
        if idx not in live:
            continue
        gate = netlist.gates[idx]
        if gate.gtype is GateType.INPUT:
            continue
        args = ", ".join(netlist.gates[src].name for src in gate.fanin)
        handle.write(f"{gate.name} = {_OP_NAMES[gate.gtype]}({args})\n")
    # DFFs may be live but outside the combinational topo order roots; the
    # topo order already includes them as sources, so nothing more to do.
