"""Gate types and their Boolean semantics.

The paper (Section 2) investigates netlists built from NOT, BUFFER, AND,
NAND, OR and NOR gates, and notes the algorithm also handles XOR/XNOR.  We
support all of those, plus constants, primary inputs and a D flip-flop type
used by the sequential/full-scan substrate.

Two notions from the paper live here:

* *controlling value* — a line feeding an AND/NAND (OR/NOR) gate has
  controlling value when it carries 0 (1); a line driving NOT/BUF always
  has controlling value (Section 2).
* gate evaluation — both scalar (ints 0/1) and bit-parallel (64 test
  vectors packed per ``uint64`` word) evaluation kernels.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np


class GateType(enum.Enum):
    """Every node type a :class:`~repro.circuit.netlist.Netlist` may hold."""

    INPUT = "INPUT"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateType.{self.name}"


#: Gate types that take no fanin.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})

#: Gate types with exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT, GateType.DFF})

#: Gate types accepting two or more fanins.
MULTI_INPUT_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)

#: Combinational logic gates (everything but sources and state).
LOGIC_TYPES = frozenset(UNARY_TYPES - {GateType.DFF}) | MULTI_INPUT_TYPES

#: Gate types whose output inverts the "core" function (NAND/NOR/XNOR/NOT).
INVERTING_TYPES = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}
)

#: Map each multi-input gate to its output-inverted counterpart.
INVERTED_COUNTERPART = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
}

#: Gate-type replacements considered by the design-error model, i.e. all
#: same-arity substitutions an engineer could plausibly make.
REPLACEMENT_CLASSES = {
    GateType.AND: (GateType.NAND, GateType.OR, GateType.NOR,
                   GateType.XOR, GateType.XNOR),
    GateType.NAND: (GateType.AND, GateType.OR, GateType.NOR,
                    GateType.XOR, GateType.XNOR),
    GateType.OR: (GateType.AND, GateType.NAND, GateType.NOR,
                  GateType.XOR, GateType.XNOR),
    GateType.NOR: (GateType.AND, GateType.NAND, GateType.OR,
                   GateType.XOR, GateType.XNOR),
    GateType.XOR: (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                   GateType.XNOR),
    GateType.XNOR: (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                    GateType.XOR),
    GateType.BUF: (GateType.NOT,),
    GateType.NOT: (GateType.BUF,),
}


def controlling_value(gtype: GateType) -> int | None:
    """Return the controlling input value for ``gtype``.

    Per the paper's Section 2: 0 for AND/NAND, 1 for OR/NOR; NOT/BUF inputs
    always control, which we report as 0-and-1 by returning ``None`` here
    and letting callers special-case unary gates.  XOR/XNOR have no
    controlling value (also ``None``).
    """
    if gtype in (GateType.AND, GateType.NAND):
        return 0
    if gtype in (GateType.OR, GateType.NOR):
        return 1
    return None


def has_controlling_value(gtype: GateType) -> bool:
    """True when ``gtype`` has a controlling input value (AND/NAND/OR/NOR)."""
    return controlling_value(gtype) is not None


def eval_scalar(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate one gate on scalar 0/1 inputs; reference semantics.

    This is the slow, obviously-correct oracle used by the test suite to
    validate the bit-parallel kernels, and by small utilities where speed
    is irrelevant.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.BUF, GateType.DFF, GateType.INPUT):
        return int(inputs[0])
    if gtype is GateType.NOT:
        return 1 - int(inputs[0])
    if gtype is GateType.AND:
        return int(all(inputs))
    if gtype is GateType.NAND:
        return 1 - int(all(inputs))
    if gtype is GateType.OR:
        return int(any(inputs))
    if gtype is GateType.NOR:
        return 1 - int(any(inputs))
    if gtype is GateType.XOR:
        acc = 0
        for value in inputs:
            acc ^= int(value)
        return acc
    if gtype is GateType.XNOR:
        acc = 1
        for value in inputs:
            acc ^= int(value)
        return acc
    raise ValueError(f"cannot evaluate gate type {gtype}")


def eval_ternary(gtype: GateType,
                 inputs: Sequence["int | None"]) -> "int | None":
    """Kleene three-valued gate evaluation (``None`` is X/unknown).

    Monotone in the information order (X below 0 and 1): once partial
    inputs decide the output, any refinement of the remaining inputs
    keeps it — the property the ternary dataflow and the sequential
    reset fixpoint rely on for termination.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.BUF, GateType.DFF, GateType.INPUT):
        return inputs[0]
    if gtype is GateType.NOT:
        return None if inputs[0] is None else 1 - inputs[0]
    if gtype in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in inputs):
            core: "int | None" = 0
        elif all(v == 1 for v in inputs):
            core = 1
        else:
            core = None
        if core is not None and gtype is GateType.NAND:
            core = 1 - core
        return core
    if gtype in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in inputs):
            core = 1
        elif all(v == 0 for v in inputs):
            core = 0
        else:
            core = None
        if core is not None and gtype is GateType.NOR:
            core = 1 - core
        return core
    if gtype in (GateType.XOR, GateType.XNOR):
        if any(v is None for v in inputs):
            return None
        acc = 0
        for v in inputs:
            acc ^= v
        return acc if gtype is GateType.XOR else 1 - acc
    raise ValueError(f"cannot evaluate gate type {gtype}")


def eval_words(gtype: GateType, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Bit-parallel gate evaluation over packed ``uint64`` words.

    Each element of ``inputs`` is a 1-D array of words where bit *i* of the
    packed stream is the value of that fanin under test vector *i*.  The
    result follows the same packing.  NOT-like gates flip every bit of the
    word including any tail padding; counting utilities mask the tail
    (see :mod:`repro.sim.packing`).
    """
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    if gtype is GateType.CONST0:
        raise ValueError("CONST0 takes no inputs; materialize from shape")
    if gtype is GateType.CONST1:
        raise ValueError("CONST1 takes no inputs; materialize from shape")
    if gtype in (GateType.BUF, GateType.DFF, GateType.INPUT):
        return inputs[0].copy()
    if gtype is GateType.NOT:
        return inputs[0] ^ ones
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc &= word
        if gtype is GateType.NAND:
            acc ^= ones
        return acc
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc |= word
        if gtype is GateType.NOR:
            acc ^= ones
        return acc
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc ^= word
        if gtype is GateType.XNOR:
            acc ^= ones
        return acc
    raise ValueError(f"cannot evaluate gate type {gtype}")


def arity_ok(gtype: GateType, n_fanin: int) -> bool:
    """Check that ``n_fanin`` is a legal fanin count for ``gtype``."""
    if gtype in SOURCE_TYPES:
        return n_fanin == 0
    if gtype in UNARY_TYPES:
        return n_fanin == 1
    if gtype in MULTI_INPUT_TYPES:
        return n_fanin >= 1
    return False
