"""Structural (gate-level) Verilog reader/writer.

Covers the subset every gate-level netlist exchange needs: one module,
``input``/``output``/``wire`` declarations, primitive gate instances
(``and``, ``nand``, ``or``, ``nor``, ``xor``, ``xnor``, ``not``,
``buf``), constant ties (``assign w = 1'b0;``) and simple continuous
assignments (``assign y = w;``).  Vectors are not supported — gate-level
netlists are bit-blasted by construction.

This exists so diagnosed/repaired designs can round-trip with standard
EDA tools that speak Verilog rather than ISCAS ``.bench``.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

from ..errors import ParseError
from .gatetypes import GateType
from .netlist import Netlist

_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_NAME_OF = {v: k for k, v in _PRIMITIVES.items()}

_MODULE_RE = re.compile(r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;")
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<names>[^;]+);")
_GATE_RE = re.compile(
    r"(?P<prim>and|nand|nor|or|xnor|xor|not|buf)\s+"
    r"(?P<inst>\w+)?\s*\((?P<args>[^)]*)\)\s*;")
_ASSIGN_RE = re.compile(
    r"assign\s+(?P<lhs>\w+)\s*=\s*(?P<rhs>1'b[01]|\w+)\s*;")


def loads(text: str, name: str | None = None,
          lint: str | None = None) -> Netlist:
    """Parse structural Verilog text into a :class:`Netlist`.

    After parsing, the netlist is linted per ``lint`` (an
    :mod:`repro.analyze` load policy: ``off``/``errors``/``warn``/
    ``strict``; default ``None`` uses the process-wide policy, normally
    ``errors``).  A policy violation raises :class:`ParseError`.
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    module = _MODULE_RE.search(text)
    if not module:
        raise ParseError("no module declaration found")
    inputs: list[str] = []
    outputs: list[str] = []
    for decl in _DECL_RE.finditer(text):
        names = [n.strip() for n in decl.group("names").split(",")
                 if n.strip()]
        if decl.group("kind") == "input":
            inputs.extend(names)
        elif decl.group("kind") == "output":
            outputs.extend(names)
    gates: dict[str, tuple[GateType, list[str]]] = {}
    for match in _GATE_RE.finditer(text):
        args = [a.strip() for a in match.group("args").split(",")]
        if len(args) < 2:
            raise ParseError(
                f"primitive {match.group(0).strip()!r} needs an output "
                f"and at least one input")
        out_name, fanin = args[0], args[1:]
        if out_name in gates:
            raise ParseError(f"signal {out_name!r} driven twice")
        gates[out_name] = (_PRIMITIVES[match.group("prim")], fanin)
    for match in _ASSIGN_RE.finditer(text):
        lhs, rhs = match.group("lhs"), match.group("rhs")
        if lhs in gates:
            raise ParseError(f"signal {lhs!r} driven twice")
        if rhs == "1'b0":
            gates[lhs] = (GateType.CONST0, [])
        elif rhs == "1'b1":
            gates[lhs] = (GateType.CONST1, [])
        else:
            gates[lhs] = (GateType.BUF, [rhs])

    netlist = Netlist(name or module.group("name"))
    resolved: dict[str, int] = {}
    for pi in inputs:
        resolved[pi] = netlist.add_input(pi)

    def resolve(signal: str, stack: tuple = ()) -> int:
        if signal in resolved:
            return resolved[signal]
        if signal in stack:
            raise ParseError(f"combinational cycle through {signal!r}")
        if signal not in gates:
            raise ParseError(f"signal {signal!r} used but never driven")
        gtype, fanin = gates[signal]
        idx = netlist.add_gate(
            signal, gtype, [resolve(s, stack + (signal,))
                            for s in fanin])
        resolved[signal] = idx
        return idx

    for signal in gates:
        resolve(signal)
    missing = [po for po in outputs if po not in resolved]
    if missing:
        raise ParseError(f"output {missing[0]!r} never driven")
    netlist.set_outputs(resolved[po] for po in outputs)
    # Imported lazily: repro.analyze itself imports circuit modules.
    from ..analyze import lint_on_load
    lint_on_load(netlist, policy=lint, source=name)
    return netlist


def load(path, name: str | None = None, lint: str | None = None) -> Netlist:
    path = Path(path)
    return loads(path.read_text(), name or path.stem, lint=lint)


def dumps(netlist: Netlist) -> str:
    """Serialize a (combinational) netlist to structural Verilog."""
    if not netlist.is_combinational:
        raise ParseError(
            "verilog_io writes combinational netlists only; full-scan "
            "or unroll sequential designs first")
    out = io.StringIO()
    # Netlist names (bench-style "10", "n12->x") may be illegal Verilog
    # identifiers; sanitize deterministically with collision suffixes.
    rename: dict[int, str] = {}
    used: set[str] = set()
    for gate in netlist.gates:
        candidate = _ident(gate.name)
        while candidate in used:
            candidate += "_"
        rename[gate.index] = candidate
        used.add(candidate)

    pis = [rename[i] for i in netlist.inputs]
    pos = [rename[o] for o in netlist.outputs]
    ports = pis + [p for p in dict.fromkeys(pos) if p not in pis]
    out.write(f"module {_ident(netlist.name)} ({', '.join(ports)});\n")
    if pis:
        out.write(f"  input {', '.join(pis)};\n")
    if pos:
        out.write(f"  output {', '.join(dict.fromkeys(pos))};\n")
    live = netlist.live_set()
    wires = [rename[g.index] for g in netlist.gates
             if g.index in live and g.gtype is not GateType.INPUT
             and rename[g.index] not in pos]
    for chunk_start in range(0, len(wires), 8):
        chunk = wires[chunk_start:chunk_start + 8]
        out.write(f"  wire {', '.join(chunk)};\n")
    counter = 0
    for idx in netlist.topo_order():
        if idx not in live:
            continue
        gate = netlist.gates[idx]
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype is GateType.CONST0:
            out.write(f"  assign {rename[idx]} = 1'b0;\n")
            continue
        if gate.gtype is GateType.CONST1:
            out.write(f"  assign {rename[idx]} = 1'b1;\n")
            continue
        prim = _NAME_OF[gate.gtype]
        args = ", ".join([rename[idx]]
                         + [rename[s] for s in gate.fanin])
        out.write(f"  {prim} u{counter} ({args});\n")
        counter += 1
    out.write("endmodule\n")
    return out.getvalue()


def dump(netlist: Netlist, path) -> None:
    Path(path).write_text(dumps(netlist))


def _ident(name: str) -> str:
    """Make a legal Verilog identifier out of a circuit name."""
    cleaned = re.sub(r"\W", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "m_" + cleaned
    return cleaned
