"""Sequential-circuit support: DFFs and the full-scan transform.

The paper diagnoses "combinational and full-scan sequential digital
circuits": every flip-flop is on the scan chain, so each DFF output is a
controllable pseudo-primary input (PPI) and each DFF data input is an
observable pseudo-primary output (PPO).  :func:`full_scan` performs exactly
that model transformation, producing a purely combinational netlist the
diagnosis engine can treat uniformly.

:class:`SequentialSimulator` offers cycle-accurate simulation of the
original (unscanned) netlist; it is used by tests to show that full-scan
diagnosis results are consistent with the sequential behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError
from .gatetypes import GateType, eval_scalar
from .netlist import Netlist


@dataclass(frozen=True)
class ScanMap:
    """Bookkeeping from :func:`full_scan`.

    Attributes:
        ppi_of_dff: original DFF index -> INPUT gate index in the scan model.
        ppo_of_dff: original DFF index -> position in the scan model's
            output list carrying its data input (the PPO).
        num_pis / num_pos: counts of *real* PIs and POs in the scan model
            (the PPIs/PPOs come after them, in DFF order).
    """

    ppi_of_dff: dict
    ppo_of_dff: dict
    num_pis: int
    num_pos: int


def full_scan(netlist: Netlist, name: str | None = None
              ) -> tuple[Netlist, ScanMap]:
    """Return the full-scan combinational model of ``netlist``.

    Every ``DFF`` gate becomes an ``INPUT`` (its Q output is scan-
    controllable) and its data fanin is appended to the primary outputs
    (scan-observable).  Combinational netlists pass through unchanged
    (with an empty :class:`ScanMap`).
    """
    scan = netlist.copy(name or f"{netlist.name}_scan")
    dffs = scan.dffs()
    ppi_of_dff: dict = {}
    ppo_of_dff: dict = {}
    num_pos = len(scan.outputs)
    new_outputs = list(scan.outputs)
    for dff in dffs:
        gate = scan.gates[dff]
        data_src = gate.fanin[0]
        gate.gtype = GateType.INPUT
        gate.fanin = []
        ppi_of_dff[dff] = dff
        ppo_of_dff[dff] = len(new_outputs)
        new_outputs.append(data_src)
    scan.set_outputs(new_outputs)
    scan._dirty()
    return scan, ScanMap(ppi_of_dff, ppo_of_dff,
                         netlist.num_inputs, num_pos)


class SequentialSimulator:
    """Scalar cycle-accurate simulator for DFF-bearing netlists.

    Slow (pure Python, one vector at a time) but simple; the test suite
    uses it as the behavioural oracle for the full-scan transform.
    """

    def __init__(self, netlist: Netlist, initial_state: int = 0):
        self.netlist = netlist
        self.dffs = netlist.dffs()
        self.state = {dff: initial_state for dff in self.dffs}
        self._order = [i for i in netlist.topo_order()]

    def reset(self, value: int = 0) -> None:
        for dff in self.state:
            self.state[dff] = value

    def step(self, pi_values: dict) -> dict:
        """Apply one input vector; returns {output_position: value} for the
        primary outputs and advances the flip-flop state."""
        values: dict = {}
        gates = self.netlist.gates
        for idx in self._order:
            gate = gates[idx]
            if gate.gtype is GateType.INPUT:
                if gate.name not in pi_values:
                    raise NetlistError(f"missing value for PI {gate.name!r}")
                values[idx] = int(pi_values[gate.name])
            elif gate.gtype is GateType.DFF:
                values[idx] = self.state[idx]
            elif gate.gtype is GateType.CONST0:
                values[idx] = 0
            elif gate.gtype is GateType.CONST1:
                values[idx] = 1
            else:
                values[idx] = eval_scalar(
                    gate.gtype, [values[src] for src in gate.fanin])
        outputs = {pos: values[po]
                   for pos, po in enumerate(self.netlist.outputs)}
        for dff in self.dffs:
            self.state[dff] = values[self.netlist.gates[dff].fanin[0]]
        return outputs
