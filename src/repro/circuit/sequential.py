"""Sequential-circuit support: DFFs and the full-scan transform.

The paper diagnoses "combinational and full-scan sequential digital
circuits": every flip-flop is on the scan chain, so each DFF output is a
controllable pseudo-primary input (PPI) and each DFF data input is an
observable pseudo-primary output (PPO).  :func:`full_scan` performs exactly
that model transformation, producing a purely combinational netlist the
diagnosis engine can treat uniformly.

:class:`SequentialSimulator` offers cycle-accurate simulation of the
original (unscanned) netlist; it is used by tests to show that full-scan
diagnosis results are consistent with the sequential behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import NetlistError
from .gatetypes import GateType, eval_ternary
from .netlist import Netlist


def normalize_initial_state(netlist: Netlist,
                            initial_state) -> dict:
    """Per-DFF reset values as ``{dff_index: 0 | 1 | None}``.

    Accepted shorthands (``None`` means X/unknown):

    * an int ``0``/``1`` — broadcast to every flip-flop (the historical
      form);
    * ``None`` — every flip-flop starts unknown;
    * a mapping keyed by DFF gate index *or* gate name; flip-flops not
      mentioned default to X;
    * a sequence of per-DFF values in :meth:`Netlist.dffs` order.
    """
    dffs = netlist.dffs()

    def check(value, where: str):
        if value is None or value in (0, 1):
            return None if value is None else int(value)
        raise NetlistError(
            f"initial state for {where} must be 0, 1 or None (X), "
            f"got {value!r}")

    if initial_state is None:
        return {dff: None for dff in dffs}
    if isinstance(initial_state, int):
        value = check(initial_state, "broadcast")
        return {dff: value for dff in dffs}
    if isinstance(initial_state, Mapping):
        by_name = {netlist.gates[dff].name: dff for dff in dffs}
        state: dict = {dff: None for dff in dffs}
        for key, value in initial_state.items():
            if key in by_name:
                dff = by_name[key]
            elif key in state:
                dff = key
            else:
                raise NetlistError(
                    f"initial state names unknown flip-flop {key!r}")
            state[dff] = check(value, f"flip-flop {key!r}")
        return state
    if isinstance(initial_state, Sequence):
        if len(initial_state) != len(dffs):
            raise NetlistError(
                f"initial state has {len(initial_state)} values for "
                f"{len(dffs)} flip-flops")
        return {dff: check(value, f"flip-flop #{pos}")
                for pos, (dff, value)
                in enumerate(zip(dffs, initial_state))}
    raise NetlistError(
        f"cannot interpret initial state {initial_state!r}")


@dataclass(frozen=True)
class ScanMap:
    """Bookkeeping from :func:`full_scan`.

    Attributes:
        ppi_of_dff: original DFF index -> INPUT gate index in the scan model.
        ppo_of_dff: original DFF index -> position in the scan model's
            output list carrying its data input (the PPO).
        num_pis / num_pos: counts of *real* PIs and POs in the scan model
            (the PPIs/PPOs come after them, in DFF order).
    """

    ppi_of_dff: dict
    ppo_of_dff: dict
    num_pis: int
    num_pos: int


def full_scan(netlist: Netlist, name: str | None = None
              ) -> tuple[Netlist, ScanMap]:
    """Return the full-scan combinational model of ``netlist``.

    Every ``DFF`` gate becomes an ``INPUT`` (its Q output is scan-
    controllable) and its data fanin is appended to the primary outputs
    (scan-observable).  Combinational netlists pass through unchanged
    (with an empty :class:`ScanMap`).
    """
    scan = netlist.copy(name or f"{netlist.name}_scan")
    dffs = scan.dffs()
    ppi_of_dff: dict = {}
    ppo_of_dff: dict = {}
    num_pos = len(scan.outputs)
    new_outputs = list(scan.outputs)
    for dff in dffs:
        gate = scan.gates[dff]
        data_src = gate.fanin[0]
        gate.gtype = GateType.INPUT
        gate.fanin = []
        ppi_of_dff[dff] = dff
        ppo_of_dff[dff] = len(new_outputs)
        new_outputs.append(data_src)
    scan.set_outputs(new_outputs)
    scan._dirty()
    return scan, ScanMap(ppi_of_dff, ppo_of_dff,
                         netlist.num_inputs, num_pos)


class SequentialSimulator:
    """Scalar cycle-accurate simulator for DFF-bearing netlists.

    Slow (pure Python, one vector at a time) but simple; the test suite
    uses it as the behavioural oracle for the full-scan transform.

    ``initial_state`` takes every form
    :func:`normalize_initial_state` accepts — an int broadcast (the
    historical shorthand), ``None`` for all-X, a per-DFF mapping or
    sequence.  Unknown state propagates with Kleene semantics, so
    ``step`` may return ``None`` for outputs the reset values leave
    undecided.
    """

    def __init__(self, netlist: Netlist, initial_state=0):
        self.netlist = netlist
        self.dffs = netlist.dffs()
        self.state = normalize_initial_state(netlist, initial_state)
        self._order = [i for i in netlist.topo_order()]

    def reset(self, value=0) -> None:
        self.state = normalize_initial_state(self.netlist, value)

    def step(self, pi_values: dict) -> dict:
        """Apply one input vector; returns {output_position: value} for the
        primary outputs and advances the flip-flop state."""
        values: dict = {}
        gates = self.netlist.gates
        for idx in self._order:
            gate = gates[idx]
            if gate.gtype is GateType.INPUT:
                if gate.name not in pi_values:
                    raise NetlistError(f"missing value for PI {gate.name!r}")
                value = pi_values[gate.name]
                values[idx] = None if value is None else int(value)
            elif gate.gtype is GateType.DFF:
                values[idx] = self.state[idx]
            elif gate.gtype is GateType.CONST0:
                values[idx] = 0
            elif gate.gtype is GateType.CONST1:
                values[idx] = 1
            else:
                values[idx] = eval_ternary(
                    gate.gtype, [values[src] for src in gate.fanin])
        outputs = {pos: values[po]
                   for pos, po in enumerate(self.netlist.outputs)}
        for dff in self.dffs:
            self.state[dff] = values[self.netlist.gates[dff].fanin[0]]
        return outputs
