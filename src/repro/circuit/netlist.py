"""Mutable gate-level netlist.

A :class:`Netlist` is a DAG of :class:`Gate` nodes.  Every gate drives one
signal whose index equals the gate's index, so "signal", "net" and "gate
output" are interchangeable here.  Primary inputs are gates of type
``INPUT``; primary outputs are an ordered list of gate indices.

The netlist is *mutable* because the diagnosis algorithm repeatedly applies
structural corrections (change a gate's type, insert an inverter, rewire a
fanin, tie a line to a constant).  Each mutation appends structured
:class:`~repro.circuit.delta.NetlistEdit` records to an edit journal and
*patches* the cached topological order / fanout lists / cones in place
(Pearce–Kelly rank repair for order-violating edge insertions); a full
invalidation (:meth:`Netlist._dirty`) remains as the fallback for edits
with no per-record description.  Consumers snapshot :attr:`version` and
later call :meth:`edits_since` to repair their own derived state.

Gates removed by an edit are never physically deleted (indices stay
stable); they become *detached* — no longer reachable from an output — and
are skipped by simulation and reporting.  :meth:`Netlist.compacted` returns
a freshly-numbered copy when a clean netlist is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import NetlistError
from .delta import JOURNAL_CAP, NetlistDelta, NetlistEdit
from .gatetypes import GateType, SOURCE_TYPES, arity_ok


@dataclass
class Gate:
    """One node of the netlist.

    Attributes:
        index: position in ``Netlist.gates`` == index of the driven signal.
        name: unique human-readable name (``.bench`` identifier).
        gtype: the gate's :class:`GateType`.
        fanin: indices of driving gates, in pin order.
    """

    index: int
    name: str
    gtype: GateType
    fanin: list = field(default_factory=list)

    def copy(self) -> "Gate":
        return Gate(self.index, self.name, self.gtype, list(self.fanin))


#: Types whose signals cut the combinational graph (free values for the
#: prover, sequential boundaries for cones).  A type change into or out of
#: this set rewires connectivity semantics wholesale, so such edits fall
#: back to full invalidation instead of a journal record.
_CUT_GTYPES = (GateType.INPUT, GateType.DFF)


class Netlist:
    """A combinational (or DFF-bearing) gate-level circuit."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.gates: list[Gate] = []
        self.outputs: list[int] = []
        self._name2idx: dict[str, int] = {}
        self._fanouts: list[list[int]] | None = None
        self._event_fanouts: list[tuple[int, ...]] | None = None
        self._topo: list[int] | None = None
        self._topo_pos: list[int] | None = None
        self._levels: list[int] | None = None
        self._sorted_cones: dict[int, tuple[int, ...]] = {}
        self._cone_sets: dict[int, set[int]] = {}
        # Flat per-gate tables owned by repro.sim.logicsim (built lazily
        # there, invalidated here with the other derived caches).
        self._sim_tables: tuple | None = None
        # Static-analysis facts owned by repro.analyze.dataflow.  Not
        # dropped by journalled edits: repro.analyze.incremental repairs
        # the bundle from the delta when versions diverge.
        self._facts: object | None = None
        # Edit journal: monotone version counter plus the record list for
        # versions in [_journal_base, _version].
        self._version: int = 0
        self._journal: list[NetlistEdit] = []
        self._journal_base: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, name: str, gtype: GateType,
                 fanin: Sequence[int] = ()) -> int:
        """Append a gate and return its index.

        ``fanin`` entries must reference already-existing gates (use
        :meth:`add_gate_deferred`-style two-phase construction via
        ``set_fanin`` if you need forward references).
        """
        if name in self._name2idx:
            raise NetlistError(f"duplicate gate name {name!r}")
        if not arity_ok(gtype, len(fanin)):
            raise NetlistError(
                f"gate {name!r}: {gtype.name} cannot take "
                f"{len(fanin)} fanin(s)")
        for src in fanin:
            if not 0 <= src < len(self.gates):
                raise NetlistError(
                    f"gate {name!r}: fanin index {src} out of range")
        index = len(self.gates)
        self.gates.append(Gate(index, name, gtype, list(fanin)))
        self._name2idx[name] = index
        self._record(NetlistEdit("gate_added", gate=index,
                                 new=(gtype, tuple(fanin))))
        return index

    def add_input(self, name: str) -> int:
        """Convenience wrapper for :meth:`add_gate` with ``INPUT`` type."""
        return self.add_gate(name, GateType.INPUT)

    def set_outputs(self, outputs: Iterable[int]) -> None:
        """Declare the ordered list of primary-output gate indices."""
        outs = list(outputs)
        for out in outs:
            if not 0 <= out < len(self.gates):
                raise NetlistError(f"output index {out} out of range")
        if outs == self.outputs:
            return
        old = tuple(self.outputs)
        self.outputs = outs
        self._record(NetlistEdit("outputs_set", old=old, new=tuple(outs)))

    def fresh_name(self, stem: str) -> str:
        """Return a gate name starting with ``stem`` not yet in use."""
        if stem not in self._name2idx:
            return stem
        i = 1
        while f"{stem}_{i}" in self._name2idx:
            i += 1
        return f"{stem}_{i}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def gate(self, ref) -> Gate:
        """Look a gate up by index or by name."""
        if isinstance(ref, str):
            try:
                return self.gates[self._name2idx[ref]]
            except KeyError:
                raise NetlistError(f"no gate named {ref!r}") from None
        return self.gates[ref]

    def index_of(self, name: str) -> int:
        try:
            return self._name2idx[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    @property
    def inputs(self) -> list[int]:
        """Indices of primary-input gates, in creation order."""
        return [g.index for g in self.gates if g.gtype is GateType.INPUT]

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def fanouts(self) -> list[list[int]]:
        """``fanouts()[i]`` lists gates consuming signal *i* (with
        multiplicity: a gate using a signal on two pins appears twice)."""
        if self._fanouts is None:
            table: list[list[int]] = [[] for _ in self.gates]
            for g in self.gates:
                for src in g.fanin:
                    table[src].append(g.index)
            self._fanouts = table
        return self._fanouts

    def event_fanouts(self) -> list[tuple[int, ...]]:
        """Per-signal *event* sinks: :meth:`fanouts` deduplicated and with
        DFF consumers removed.

        This is the edge list the event-driven simulator walks when a
        signal changes — a multi-pin consumer needs scheduling once, and
        DFF fanin is a sequential edge that combinational events never
        cross.  Cached until the next mutation (rows for edited signals
        are recomputed in place by the journal patcher).
        """
        if self._event_fanouts is None:
            self.fanouts()
            self._event_fanouts = [
                self._event_row(src) for src in range(len(self.gates))]
        return self._event_fanouts

    def _event_row(self, src: int) -> tuple[int, ...]:
        gates = self.gates
        assert self._fanouts is not None
        return tuple(dict.fromkeys(
            sink for sink in self._fanouts[src]
            if gates[sink].gtype is not GateType.DFF))

    def topo_order(self) -> list[int]:
        """Gate indices in topological (fanin-before-gate) order.

        Every gate is included — detached gates too, because diagnosis
        may need their simulated values (e.g. to reconnect a wire whose
        removal orphaned its source).  Raises :class:`NetlistError` on a
        combinational cycle.
        """
        if self._topo is None:
            self._topo = self._compute_topo()
        return self._topo

    def topo_positions(self) -> list[int]:
        """Rank of each gate in :meth:`topo_order`.

        ``topo_positions()[i]`` is the position of gate *i* in the
        topological order; every fanin of a gate has a strictly smaller
        rank.  The event-driven simulator uses these ranks to pop its
        worklist in dependency order.
        """
        if self._topo_pos is None:
            pos = [0] * len(self.gates)
            for rank, idx in enumerate(self.topo_order()):
                pos[idx] = rank
            self._topo_pos = pos
        return self._topo_pos

    def _compute_topo(self) -> list[int]:
        order: list[int] = []
        state = bytearray(len(self.gates))  # 0 unseen, 1 on stack, 2 done
        stack: list[tuple[int, int]] = []
        for root in range(len(self.gates)):
            if state[root] == 2:
                continue
            stack.append((root, 0))
            while stack:
                node, child = stack[-1]
                if state[node] == 2:
                    stack.pop()
                    continue
                state[node] = 1
                gate = self.gates[node]
                # DFF fanin is a sequential edge, not a combinational one.
                fanin = () if gate.gtype is GateType.DFF else gate.fanin
                if child < len(fanin):
                    stack[-1] = (node, child + 1)
                    nxt = fanin[child]
                    if state[nxt] == 1:
                        raise NetlistError(
                            f"combinational cycle through gate "
                            f"{self.gates[nxt].name!r}")
                    if state[nxt] == 0:
                        stack.append((nxt, 0))
                else:
                    state[node] = 2
                    order.append(node)
                    stack.pop()
        return order

    def live_set(self) -> set[int]:
        """Gates reachable (transitively) from the primary outputs.

        DFF fanin edges are followed so state-feeding logic stays live.
        """
        seen: set[int] = set()
        stack = list(self.outputs)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.gates[node].fanin)
        return seen

    def levels(self) -> list[int]:
        """Levelization: ``levels()[i]`` = longest path from sources to i."""
        if self._levels is None:
            lev = [0] * len(self.gates)
            for idx in self.topo_order():
                gate = self.gates[idx]
                if gate.gtype is GateType.DFF or not gate.fanin:
                    lev[idx] = 0
                else:
                    lev[idx] = 1 + max(lev[src] for src in gate.fanin)
            self._levels = lev
        return self._levels

    def fanout_cone(self, start: int) -> set[int]:
        """All gates whose value can depend on signal ``start`` (incl. it).

        Cached (the same set object is returned until a mutation touches
        the cone); treat the result as read-only.
        """
        cone = self._cone_sets.get(start)
        if cone is None:
            cone = set(self.sorted_cone(start))
            self._cone_sets[start] = cone
        return cone

    def sorted_cone(self, start: int) -> tuple[int, ...]:
        """Fanout cone of ``start`` as a topologically sorted tuple.

        Cached per signal (and invalidated when a mutation touches the
        cone) because diagnosis warms up one cone per suspect line and
        then replays it for every candidate correction at that line.  DFF
        fanin edges are sequential, so cones never cross into a flip-flop.
        """
        cone = self._sorted_cones.get(start)
        if cone is None:
            fos = self.fanouts()
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in fos[node]:
                    if nxt not in seen and \
                            self.gates[nxt].gtype is not GateType.DFF:
                        seen.add(nxt)
                        stack.append(nxt)
            pos = self.topo_positions()
            cone = tuple(sorted(seen, key=pos.__getitem__))
            self._sorted_cones[start] = cone
        return cone

    def fanin_cone(self, start: int) -> set[int]:
        """All gates signal ``start`` transitively depends on (incl. it)."""
        cone = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            gate = self.gates[node]
            if gate.gtype is GateType.DFF:
                continue
            for src in gate.fanin:
                if src not in cone:
                    cone.add(src)
                    stack.append(src)
        return cone

    def dffs(self) -> list[int]:
        return [g.index for g in self.gates if g.gtype is GateType.DFF]

    @property
    def is_combinational(self) -> bool:
        return not any(g.gtype is GateType.DFF for g in self.gates)

    def stats(self) -> dict:
        """Small summary used by reports and the CLI."""
        live = self.live_set()
        return {
            "name": self.name,
            "gates": len(self.gates),
            "live_gates": len(live),
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "dffs": len(self.dffs()),
            "depth": max(self.levels(), default=0),
        }

    # ------------------------------------------------------------------
    # edit journal
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone edit counter.  Snapshot it, mutate, then feed it to
        :meth:`edits_since` to learn what changed."""
        return self._version

    def edits_since(self, version: int) -> Optional[NetlistDelta]:
        """Return the edits applied after ``version``, oldest first.

        ``None`` means the journal cannot answer — the snapshot predates
        a full invalidation or fell off the bounded journal — and the
        caller must recompute its derived state from scratch.  An empty
        delta (``version == self.version``) means nothing changed.
        """
        if version == self._version:
            return NetlistDelta(())
        if version < self._journal_base or version > self._version:
            return None
        return NetlistDelta(tuple(self._journal[version - self._journal_base:]))

    def _record(self, edit: NetlistEdit) -> None:
        """Journal one primitive edit (already applied to ``gates``) and
        patch the structural caches in place."""
        self._version += 1
        self._journal.append(edit)
        if len(self._journal) > JOURNAL_CAP:
            drop = len(self._journal) // 2
            del self._journal[:drop]
            self._journal_base += drop
        self._patch_caches(edit)

    # ------------------------------------------------------------------
    # cache patching (per journalled edit)
    # ------------------------------------------------------------------
    def _drop_cones_touching(self, srcs: set[int]) -> None:
        """Drop cached cones whose membership may include an edited
        signal (both the sorted tuples and the set views)."""
        for start in list(self._sorted_cones):
            if not srcs.isdisjoint(self._sorted_cones[start]):
                del self._sorted_cones[start]
                self._cone_sets.pop(start, None)
        for start in list(self._cone_sets):
            if not srcs.isdisjoint(self._cone_sets[start]):
                del self._cone_sets[start]
                self._sorted_cones.pop(start, None)

    def _patch_topo_edge(self, src: int, sink: int) -> Optional[set[int]]:
        """Pearce–Kelly rank repair for a new edge ``src -> sink`` that
        violates the cached order (``pos[src] > pos[sink]``).

        Returns the set of gates whose rank moved, or ``None`` when the
        edge closes a combinational cycle — in that case the cached order
        is dropped so the next :meth:`topo_order` raises lazily, matching
        the from-scratch semantics.
        """
        assert self._topo is not None and self._topo_pos is not None
        pos = self._topo_pos
        if src == sink:
            self._topo = self._topo_pos = self._levels = None
            return None
        lb, ub = pos[sink], pos[src]
        gates = self.gates
        fos = self.fanouts()
        # Forward from sink inside the affected window; reaching src
        # means the new edge closes a cycle.
        delta_f = []
        seen = {sink}
        stack = [sink]
        while stack:
            node = stack.pop()
            delta_f.append(node)
            for nxt in fos[node]:
                if nxt in seen or gates[nxt].gtype is GateType.DFF:
                    continue
                if nxt == src:
                    self._topo = self._topo_pos = self._levels = None
                    return None
                if pos[nxt] <= ub:
                    seen.add(nxt)
                    stack.append(nxt)
        # Backward from src inside the window (fanin edges; a DFF's fanin
        # is sequential, so the walk stops there).
        delta_b = []
        seen_b = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            delta_b.append(node)
            gate = gates[node]
            if gate.gtype is GateType.DFF:
                continue
            for prv in gate.fanin:
                if prv not in seen_b and pos[prv] >= lb:
                    seen_b.add(prv)
                    stack.append(prv)
        # Reassign the pooled slots: backward region first (it must now
        # precede the forward region), each side keeping its old relative
        # order.
        delta_b.sort(key=pos.__getitem__)
        delta_f.sort(key=pos.__getitem__)
        movers = delta_b + delta_f
        slots = sorted(pos[node] for node in movers)
        topo = self._topo
        for slot, node in zip(slots, movers):
            topo[slot] = node
            pos[node] = slot
        return set(movers)

    def _patch_caches(self, e: NetlistEdit) -> None:
        """Repair the structural caches for one journalled edit.

        Invariant: ``self.gates`` already reflects the edit, and compound
        mutators interleave mutate/record per primitive change, so the
        caches and the gate list agree at every call.
        """
        kind = e.kind
        if kind == "outputs_set":
            return  # no structural cache depends on the output list
        self._sim_tables = None
        if kind == "type_changed":
            # Guarded to comb<->comb by the mutators: connectivity, ranks,
            # cones, levels and fanouts are all type-independent then.
            return
        gates = self.gates
        if kind == "gate_added":
            idx = e.gate
            gtype, fanin = e.new
            if self._fanouts is not None:
                self._fanouts.append([])
                for src in fanin:
                    self._fanouts[src].append(idx)
                if self._event_fanouts is not None:
                    self._event_fanouts.append(self._event_row(idx))
                    for src in set(fanin):
                        self._event_fanouts[src] = self._event_row(src)
            else:
                self._event_fanouts = None
            if self._topo is not None:
                if self._topo_pos is not None:
                    self._topo_pos.append(len(self._topo))
                self._topo.append(idx)
            if self._levels is not None:
                if gtype is GateType.DFF or not fanin:
                    self._levels.append(0)
                else:
                    self._levels.append(
                        1 + max(self._levels[src] for src in fanin))
            if fanin and gtype is not GateType.DFF:
                self._drop_cones_touching(set(fanin))
            return
        # pin edits
        sink = e.gate
        if kind == "pin_replaced":
            old_srcs: tuple[int, ...] = (e.old,)
            new_srcs: tuple[int, ...] = (e.new,)
        elif kind == "pin_removed":
            old_srcs, new_srcs = (e.old,), ()
        else:  # pin_added
            old_srcs, new_srcs = (), (e.new,)
        if self._fanouts is not None:
            for src in old_srcs:
                self._fanouts[src].remove(sink)
            for src in new_srcs:
                self._fanouts[src].append(sink)
            if self._event_fanouts is not None:
                for src in set(old_srcs + new_srcs):
                    self._event_fanouts[src] = self._event_row(src)
        else:
            self._event_fanouts = None
        self._levels = None
        moved: Optional[set[int]] = None
        if self._topo is not None and new_srcs and \
                gates[sink].gtype is not GateType.DFF:
            if self._topo_pos is None:
                pos = [0] * len(gates)
                for rank, idx in enumerate(self._topo):
                    pos[idx] = rank
                self._topo_pos = pos
            new_src = new_srcs[0]
            if new_src == sink or self._topo_pos[new_src] > \
                    self._topo_pos[sink]:
                moved = self._patch_topo_edge(new_src, sink)
        self._drop_cones_touching(set(old_srcs + new_srcs))
        if moved:
            # Rank-moved gates keep their cone membership but the cached
            # sorted tuples are stale; the set views stay valid.
            for start in list(self._sorted_cones):
                if not moved.isdisjoint(self._sorted_cones[start]):
                    del self._sorted_cones[start]

    # ------------------------------------------------------------------
    # mutation (used by fault injection and corrections)
    # ------------------------------------------------------------------
    def _dirty(self) -> None:
        """Full invalidation: drop every derived cache and reset the edit
        journal, so snapshots taken before this point see ``None`` from
        :meth:`edits_since` and recompute from scratch.

        The fallback for edits the journal cannot describe (cut-type
        changes, behind-the-API surgery in tests)."""
        self._version += 1
        self._journal.clear()
        self._journal_base = self._version
        self._fanouts = None
        self._event_fanouts = None
        self._topo = None
        self._topo_pos = None
        self._levels = None
        self._sorted_cones.clear()
        self._cone_sets.clear()
        self._sim_tables = None
        self._facts = None

    def set_gate_type(self, index: int, gtype: GateType) -> None:
        """Replace the function of gate ``index`` keeping its fanin.

        A same-type call is a no-op (no cache invalidation, no journal
        record)."""
        gate = self.gates[index]
        if gate.gtype is gtype:
            return
        if not arity_ok(gtype, len(gate.fanin)):
            raise NetlistError(
                f"gate {gate.name!r}: cannot become {gtype.name} with "
                f"{len(gate.fanin)} fanin(s)")
        old = gate.gtype
        gate.gtype = gtype
        if old in _CUT_GTYPES or gtype in _CUT_GTYPES:
            self._dirty()
        else:
            self._record(NetlistEdit("type_changed", gate=index,
                                     old=old, new=gtype))

    def set_fanin(self, index: int, fanin: Sequence[int]) -> None:
        """Rewire all fanin pins of gate ``index`` at once.

        Decomposed into per-pin journal records (replace the common
        prefix, then pop or append the tail); an identical fanin list is
        a no-op."""
        gate = self.gates[index]
        new = list(fanin)
        if not arity_ok(gate.gtype, len(new)):
            raise NetlistError(
                f"gate {gate.name!r}: {gate.gtype.name} cannot take "
                f"{len(new)} fanin(s)")
        if gate.fanin == new:
            return
        for pin in range(min(len(gate.fanin), len(new))):
            if gate.fanin[pin] != new[pin]:
                old_src = gate.fanin[pin]
                gate.fanin[pin] = new[pin]
                self._record(NetlistEdit("pin_replaced", gate=index, pin=pin,
                                         old=old_src, new=new[pin]))
        while len(gate.fanin) > len(new):
            old_src = gate.fanin.pop()
            self._record(NetlistEdit("pin_removed", gate=index,
                                     pin=len(gate.fanin), old=old_src))
        while len(gate.fanin) < len(new):
            src = new[len(gate.fanin)]
            gate.fanin.append(src)
            self._record(NetlistEdit("pin_added", gate=index, new=src))

    def replace_fanin_pin(self, index: int, pin: int, new_src: int) -> None:
        """Rewire a single fanin pin of gate ``index``.

        Rewiring a pin to its current source is a no-op (no cache
        invalidation, no journal record)."""
        gate = self.gates[index]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        old_src = gate.fanin[pin]
        if old_src == new_src:
            return
        gate.fanin[pin] = new_src
        self._record(NetlistEdit("pin_replaced", gate=index, pin=pin,
                                 old=old_src, new=new_src))

    def remove_fanin_pin(self, index: int, pin: int) -> None:
        """Drop one fanin pin (the "extra input wire" error/correction)."""
        gate = self.gates[index]
        if len(gate.fanin) <= 1:
            raise NetlistError(
                f"gate {gate.name!r}: cannot drop pin of 1-input gate")
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        old_src = gate.fanin[pin]
        del gate.fanin[pin]
        self._record(NetlistEdit("pin_removed", gate=index, pin=pin,
                                 old=old_src))
        if len(gate.fanin) == 1 and gate.gtype in (
                GateType.AND, GateType.OR, GateType.XOR):
            old_type = gate.gtype
            gate.gtype = GateType.BUF
            self._record(NetlistEdit("type_changed", gate=index,
                                     old=old_type, new=GateType.BUF))
        elif len(gate.fanin) == 1 and gate.gtype in (
                GateType.NAND, GateType.NOR, GateType.XNOR):
            old_type = gate.gtype
            gate.gtype = GateType.NOT
            self._record(NetlistEdit("type_changed", gate=index,
                                     old=old_type, new=GateType.NOT))

    def add_fanin_pin(self, index: int, new_src: int) -> None:
        """Append a fanin (the "missing input wire" error/correction)."""
        gate = self.gates[index]
        if gate.gtype in SOURCE_TYPES:
            raise NetlistError(
                f"gate {gate.name!r}: {gate.gtype.name} takes no fanin")
        if gate.gtype is GateType.DFF:
            raise NetlistError("cannot add fanin to a DFF")
        if gate.gtype is GateType.BUF:
            gate.gtype = GateType.AND  # promote; caller picks real type
            self._record(NetlistEdit("type_changed", gate=index,
                                     old=GateType.BUF, new=GateType.AND))
        elif gate.gtype is GateType.NOT:
            gate.gtype = GateType.NAND
            self._record(NetlistEdit("type_changed", gate=index,
                                     old=GateType.NOT, new=GateType.NAND))
        gate.fanin.append(new_src)
        self._record(NetlistEdit("pin_added", gate=index, new=new_src))

    def _rewire_consumers(self, old_src: int, new_src: int,
                          skip: int) -> None:
        """Point every consumer pin (and PO slot) of ``old_src`` at
        ``new_src``, journalling one ``pin_replaced`` per pin."""
        for g in self.gates:
            if g.index == skip:
                continue
            for pin, src in enumerate(g.fanin):
                if src == old_src:
                    g.fanin[pin] = new_src
                    self._record(NetlistEdit(
                        "pin_replaced", gate=g.index, pin=pin,
                        old=old_src, new=new_src))
        if old_src in self.outputs:
            self.set_outputs(new_src if out == old_src else out
                             for out in self.outputs)

    def insert_gate_on_stem(self, index: int, gtype: GateType,
                            name: str | None = None) -> int:
        """Insert a unary gate after signal ``index`` feeding *all* its
        current consumers (and PO slots).  Returns the new gate's index.

        Implements "extra inverter on a stem" (injection) and the matching
        "missing inverter" correction.
        """
        if name is None:
            name = self.fresh_name(f"{self.gates[index].name}_{gtype.name.lower()}")
        new_idx = self.add_gate(name, gtype, [index])
        self._rewire_consumers(index, new_idx, skip=new_idx)
        return new_idx

    def insert_binary_on_stem(self, index: int, gtype: GateType,
                              other: int, name: str | None = None) -> int:
        """Insert a 2-input gate after signal ``index``: consumers of the
        signal now read ``gtype(index, other)``.

        Models the "missing gate" design error's repair (and, inversely,
        "extra gate" injection).  ``other`` must not depend on ``index``
        (checked by the caller to avoid an O(V+E) scan here).
        """
        if name is None:
            name = self.fresh_name(
                f"{self.gates[index].name}_{gtype.name.lower()}2")
        new_idx = self.add_gate(name, gtype, [index, other])
        self._rewire_consumers(index, new_idx, skip=new_idx)
        return new_idx

    def insert_gate_on_branch(self, sink: int, pin: int, gtype: GateType,
                              name: str | None = None) -> int:
        """Insert a unary gate on the branch feeding ``sink`` pin ``pin``."""
        gate = self.gates[sink]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        src = gate.fanin[pin]
        if name is None:
            name = self.fresh_name(
                f"{self.gates[src].name}_{gtype.name.lower()}_b")
        new_idx = self.add_gate(name, gtype, [src])
        self.replace_fanin_pin(sink, pin, new_idx)
        return new_idx

    def bypass_gate(self, index: int,
                    survivor_pin: int | None = None) -> None:
        """Make every consumer of ``index`` read one fanin instead.

        Used to *remove* an inverter/buffer (the gate becomes detached).
        Without ``survivor_pin`` the gate must be 1-input; with it, any
        fanin of a wider gate may be elected the survivor (the
        "extra gate" design-error repair).
        """
        gate = self.gates[index]
        if survivor_pin is None:
            if len(gate.fanin) != 1:
                raise NetlistError(
                    f"gate {gate.name!r}: can only bypass 1-input gates")
            survivor_pin = 0
        elif not 0 <= survivor_pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin "
                               f"{survivor_pin}")
        src = gate.fanin[survivor_pin]
        self._rewire_consumers(index, src, skip=-1)

    def tie_stem_to_constant(self, index: int, value: int) -> int:
        """Force signal ``index`` to a constant for all consumers/POs.

        Models a stuck-at fault on a stem.  Returns the constant gate index.
        """
        gtype = GateType.CONST1 if value else GateType.CONST0
        name = self.fresh_name(f"{self.gates[index].name}_sa{int(bool(value))}")
        const_idx = self.add_gate(name, gtype)
        self._rewire_consumers(index, const_idx, skip=const_idx)
        return const_idx

    def tie_branch_to_constant(self, sink: int, pin: int, value: int) -> int:
        """Force the branch into ``sink`` pin ``pin`` to a constant."""
        gate = self.gates[sink]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        gtype = GateType.CONST1 if value else GateType.CONST0
        src = gate.fanin[pin]
        name = self.fresh_name(
            f"{self.gates[src].name}_sa{int(bool(value))}_b")
        const_idx = self.add_gate(name, gtype)
        self.replace_fanin_pin(sink, pin, const_idx)
        return const_idx

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy (indices preserved).  The copy starts at version 0
        with an empty journal: snapshot 0, mutate, and ``edits_since(0)``
        describes exactly the mutations applied to the copy."""
        dup = Netlist(name or self.name)
        dup.gates = [g.copy() for g in self.gates]
        dup.outputs = list(self.outputs)
        dup._name2idx = dict(self._name2idx)
        return dup

    def compacted(self, name: str | None = None) -> "Netlist":
        """Copy with detached gates removed and indices renumbered.

        INPUT gates are always retained (a circuit's interface must not
        silently shrink because a fault detached a cone).
        """
        keep = sorted(self.live_set() | set(self.inputs))
        remap = {old: new for new, old in enumerate(keep)}
        dup = Netlist(name or self.name)
        for old in keep:
            gate = self.gates[old]
            dup.gates.append(Gate(remap[old], gate.name, gate.gtype,
                                  [remap[s] for s in gate.fanin]))
            dup._name2idx[gate.name] = remap[old]
        dup.outputs = [remap[out] for out in self.outputs]
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, gates={len(self.gates)}, "
                f"inputs={self.num_inputs}, outputs={self.num_outputs})")
