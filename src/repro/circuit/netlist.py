"""Mutable gate-level netlist.

A :class:`Netlist` is a DAG of :class:`Gate` nodes.  Every gate drives one
signal whose index equals the gate's index, so "signal", "net" and "gate
output" are interchangeable here.  Primary inputs are gates of type
``INPUT``; primary outputs are an ordered list of gate indices.

The netlist is *mutable* because the diagnosis algorithm repeatedly applies
structural corrections (change a gate's type, insert an inverter, rewire a
fanin, tie a line to a constant).  Mutation methods invalidate the cached
topological order / fanout lists, which are rebuilt lazily.

Gates removed by an edit are never physically deleted (indices stay
stable); they become *detached* — no longer reachable from an output — and
are skipped by simulation and reporting.  :meth:`Netlist.compacted` returns
a freshly-numbered copy when a clean netlist is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import NetlistError
from .gatetypes import GateType, SOURCE_TYPES, arity_ok


@dataclass
class Gate:
    """One node of the netlist.

    Attributes:
        index: position in ``Netlist.gates`` == index of the driven signal.
        name: unique human-readable name (``.bench`` identifier).
        gtype: the gate's :class:`GateType`.
        fanin: indices of driving gates, in pin order.
    """

    index: int
    name: str
    gtype: GateType
    fanin: list = field(default_factory=list)

    def copy(self) -> "Gate":
        return Gate(self.index, self.name, self.gtype, list(self.fanin))


class Netlist:
    """A combinational (or DFF-bearing) gate-level circuit."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.gates: list[Gate] = []
        self.outputs: list[int] = []
        self._name2idx: dict[str, int] = {}
        self._fanouts: list[list[int]] | None = None
        self._event_fanouts: tuple[tuple[int, ...], ...] | None = None
        self._topo: list[int] | None = None
        self._topo_pos: list[int] | None = None
        self._levels: list[int] | None = None
        self._sorted_cones: dict[int, tuple[int, ...]] = {}
        self._cone_sets: dict[int, set[int]] = {}
        # Flat per-gate tables owned by repro.sim.logicsim (built lazily
        # there, invalidated here with the other derived caches).
        self._sim_tables: tuple | None = None
        # Static-analysis facts owned by repro.analyze.dataflow (built
        # lazily there, invalidated here with the other derived caches).
        self._facts: object | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, name: str, gtype: GateType,
                 fanin: Sequence[int] = ()) -> int:
        """Append a gate and return its index.

        ``fanin`` entries must reference already-existing gates (use
        :meth:`add_gate_deferred`-style two-phase construction via
        ``set_fanin`` if you need forward references).
        """
        if name in self._name2idx:
            raise NetlistError(f"duplicate gate name {name!r}")
        if not arity_ok(gtype, len(fanin)):
            raise NetlistError(
                f"gate {name!r}: {gtype.name} cannot take "
                f"{len(fanin)} fanin(s)")
        for src in fanin:
            if not 0 <= src < len(self.gates):
                raise NetlistError(
                    f"gate {name!r}: fanin index {src} out of range")
        index = len(self.gates)
        self.gates.append(Gate(index, name, gtype, list(fanin)))
        self._name2idx[name] = index
        self._dirty()
        return index

    def add_input(self, name: str) -> int:
        """Convenience wrapper for :meth:`add_gate` with ``INPUT`` type."""
        return self.add_gate(name, GateType.INPUT)

    def set_outputs(self, outputs: Iterable[int]) -> None:
        """Declare the ordered list of primary-output gate indices."""
        outs = list(outputs)
        for out in outs:
            if not 0 <= out < len(self.gates):
                raise NetlistError(f"output index {out} out of range")
        self.outputs = outs
        self._dirty()

    def fresh_name(self, stem: str) -> str:
        """Return a gate name starting with ``stem`` not yet in use."""
        if stem not in self._name2idx:
            return stem
        i = 1
        while f"{stem}_{i}" in self._name2idx:
            i += 1
        return f"{stem}_{i}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def gate(self, ref) -> Gate:
        """Look a gate up by index or by name."""
        if isinstance(ref, str):
            try:
                return self.gates[self._name2idx[ref]]
            except KeyError:
                raise NetlistError(f"no gate named {ref!r}") from None
        return self.gates[ref]

    def index_of(self, name: str) -> int:
        try:
            return self._name2idx[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    @property
    def inputs(self) -> list[int]:
        """Indices of primary-input gates, in creation order."""
        return [g.index for g in self.gates if g.gtype is GateType.INPUT]

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def fanouts(self) -> list[list[int]]:
        """``fanouts()[i]`` lists gates consuming signal *i* (with
        multiplicity: a gate using a signal on two pins appears twice)."""
        if self._fanouts is None:
            table: list[list[int]] = [[] for _ in self.gates]
            for g in self.gates:
                for src in g.fanin:
                    table[src].append(g.index)
            self._fanouts = table
        return self._fanouts

    def event_fanouts(self) -> tuple[tuple[int, ...], ...]:
        """Per-signal *event* sinks: :meth:`fanouts` deduplicated and with
        DFF consumers removed.

        This is the edge list the event-driven simulator walks when a
        signal changes — a multi-pin consumer needs scheduling once, and
        DFF fanin is a sequential edge that combinational events never
        cross.  Cached until the next mutation.
        """
        if self._event_fanouts is None:
            gates = self.gates
            self._event_fanouts = tuple(
                tuple(dict.fromkeys(
                    sink for sink in sinks
                    if gates[sink].gtype is not GateType.DFF))
                for sinks in self.fanouts())
        return self._event_fanouts

    def topo_order(self) -> list[int]:
        """Gate indices in topological (fanin-before-gate) order.

        Every gate is included — detached gates too, because diagnosis
        may need their simulated values (e.g. to reconnect a wire whose
        removal orphaned its source).  Raises :class:`NetlistError` on a
        combinational cycle.
        """
        if self._topo is None:
            self._topo = self._compute_topo()
        return self._topo

    def topo_positions(self) -> list[int]:
        """Rank of each gate in :meth:`topo_order`.

        ``topo_positions()[i]`` is the position of gate *i* in the
        topological order; every fanin of a gate has a strictly smaller
        rank.  The event-driven simulator uses these ranks to pop its
        worklist in dependency order.
        """
        if self._topo_pos is None:
            pos = [0] * len(self.gates)
            for rank, idx in enumerate(self.topo_order()):
                pos[idx] = rank
            self._topo_pos = pos
        return self._topo_pos

    def _compute_topo(self) -> list[int]:
        order: list[int] = []
        state = bytearray(len(self.gates))  # 0 unseen, 1 on stack, 2 done
        stack: list[tuple[int, int]] = []
        for root in range(len(self.gates)):
            if state[root] == 2:
                continue
            stack.append((root, 0))
            while stack:
                node, child = stack[-1]
                if state[node] == 2:
                    stack.pop()
                    continue
                state[node] = 1
                gate = self.gates[node]
                # DFF fanin is a sequential edge, not a combinational one.
                fanin = () if gate.gtype is GateType.DFF else gate.fanin
                if child < len(fanin):
                    stack[-1] = (node, child + 1)
                    nxt = fanin[child]
                    if state[nxt] == 1:
                        raise NetlistError(
                            f"combinational cycle through gate "
                            f"{self.gates[nxt].name!r}")
                    if state[nxt] == 0:
                        stack.append((nxt, 0))
                else:
                    state[node] = 2
                    order.append(node)
                    stack.pop()
        return order

    def live_set(self) -> set[int]:
        """Gates reachable (transitively) from the primary outputs.

        DFF fanin edges are followed so state-feeding logic stays live.
        """
        seen: set[int] = set()
        stack = list(self.outputs)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.gates[node].fanin)
        return seen

    def levels(self) -> list[int]:
        """Levelization: ``levels()[i]`` = longest path from sources to i."""
        if self._levels is None:
            lev = [0] * len(self.gates)
            for idx in self.topo_order():
                gate = self.gates[idx]
                if gate.gtype is GateType.DFF or not gate.fanin:
                    lev[idx] = 0
                else:
                    lev[idx] = 1 + max(lev[src] for src in gate.fanin)
            self._levels = lev
        return self._levels

    def fanout_cone(self, start: int) -> set[int]:
        """All gates whose value can depend on signal ``start`` (incl. it).

        Cached (the same set object is returned until the next mutation);
        treat the result as read-only.
        """
        cone = self._cone_sets.get(start)
        if cone is None:
            cone = set(self.sorted_cone(start))
            self._cone_sets[start] = cone
        return cone

    def sorted_cone(self, start: int) -> tuple[int, ...]:
        """Fanout cone of ``start`` as a topologically sorted tuple.

        Cached per signal (and invalidated on every mutation) because
        diagnosis warms up one cone per suspect line and then replays it
        for every candidate correction at that line.  DFF fanin edges are
        sequential, so cones never cross into a flip-flop.
        """
        cone = self._sorted_cones.get(start)
        if cone is None:
            fos = self.fanouts()
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in fos[node]:
                    if nxt not in seen and \
                            self.gates[nxt].gtype is not GateType.DFF:
                        seen.add(nxt)
                        stack.append(nxt)
            pos = self.topo_positions()
            cone = tuple(sorted(seen, key=pos.__getitem__))
            self._sorted_cones[start] = cone
        return cone

    def fanin_cone(self, start: int) -> set[int]:
        """All gates signal ``start`` transitively depends on (incl. it)."""
        cone = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            gate = self.gates[node]
            if gate.gtype is GateType.DFF:
                continue
            for src in gate.fanin:
                if src not in cone:
                    cone.add(src)
                    stack.append(src)
        return cone

    def dffs(self) -> list[int]:
        return [g.index for g in self.gates if g.gtype is GateType.DFF]

    @property
    def is_combinational(self) -> bool:
        return not any(g.gtype is GateType.DFF for g in self.gates)

    def stats(self) -> dict:
        """Small summary used by reports and the CLI."""
        live = self.live_set()
        return {
            "name": self.name,
            "gates": len(self.gates),
            "live_gates": len(live),
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "dffs": len(self.dffs()),
            "depth": max(self.levels(), default=0),
        }

    # ------------------------------------------------------------------
    # mutation (used by fault injection and corrections)
    # ------------------------------------------------------------------
    def _dirty(self) -> None:
        self._fanouts = None
        self._event_fanouts = None
        self._topo = None
        self._topo_pos = None
        self._levels = None
        self._sorted_cones.clear()
        self._cone_sets.clear()
        self._sim_tables = None
        self._facts = None

    def set_gate_type(self, index: int, gtype: GateType) -> None:
        """Replace the function of gate ``index`` keeping its fanin."""
        gate = self.gates[index]
        if not arity_ok(gtype, len(gate.fanin)):
            raise NetlistError(
                f"gate {gate.name!r}: cannot become {gtype.name} with "
                f"{len(gate.fanin)} fanin(s)")
        gate.gtype = gtype
        self._dirty()

    def set_fanin(self, index: int, fanin: Sequence[int]) -> None:
        """Rewire all fanin pins of gate ``index`` at once."""
        gate = self.gates[index]
        if not arity_ok(gate.gtype, len(fanin)):
            raise NetlistError(
                f"gate {gate.name!r}: {gate.gtype.name} cannot take "
                f"{len(fanin)} fanin(s)")
        gate.fanin = list(fanin)
        self._dirty()

    def replace_fanin_pin(self, index: int, pin: int, new_src: int) -> None:
        """Rewire a single fanin pin of gate ``index``."""
        gate = self.gates[index]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        gate.fanin[pin] = new_src
        self._dirty()

    def remove_fanin_pin(self, index: int, pin: int) -> None:
        """Drop one fanin pin (the "extra input wire" error/correction)."""
        gate = self.gates[index]
        if len(gate.fanin) <= 1:
            raise NetlistError(
                f"gate {gate.name!r}: cannot drop pin of 1-input gate")
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        del gate.fanin[pin]
        if len(gate.fanin) == 1 and gate.gtype in (
                GateType.AND, GateType.OR, GateType.XOR):
            gate.gtype = GateType.BUF
        elif len(gate.fanin) == 1 and gate.gtype in (
                GateType.NAND, GateType.NOR, GateType.XNOR):
            gate.gtype = GateType.NOT
        self._dirty()

    def add_fanin_pin(self, index: int, new_src: int) -> None:
        """Append a fanin (the "missing input wire" error/correction)."""
        gate = self.gates[index]
        if gate.gtype in SOURCE_TYPES:
            raise NetlistError(
                f"gate {gate.name!r}: {gate.gtype.name} takes no fanin")
        if gate.gtype is GateType.BUF:
            gate.gtype = GateType.AND  # promote; caller picks real type
        elif gate.gtype is GateType.NOT:
            gate.gtype = GateType.NAND
        elif gate.gtype is GateType.DFF:
            raise NetlistError("cannot add fanin to a DFF")
        gate.fanin.append(new_src)
        self._dirty()

    def insert_gate_on_stem(self, index: int, gtype: GateType,
                            name: str | None = None) -> int:
        """Insert a unary gate after signal ``index`` feeding *all* its
        current consumers (and PO slots).  Returns the new gate's index.

        Implements "extra inverter on a stem" (injection) and the matching
        "missing inverter" correction.
        """
        if name is None:
            name = self.fresh_name(f"{self.gates[index].name}_{gtype.name.lower()}")
        new_idx = self.add_gate(name, gtype, [index])
        for g in self.gates:
            if g.index == new_idx:
                continue
            g.fanin = [new_idx if src == index else src for src in g.fanin]
        self.outputs = [new_idx if out == index else out
                        for out in self.outputs]
        self._dirty()
        return new_idx

    def insert_binary_on_stem(self, index: int, gtype: GateType,
                              other: int, name: str | None = None) -> int:
        """Insert a 2-input gate after signal ``index``: consumers of the
        signal now read ``gtype(index, other)``.

        Models the "missing gate" design error's repair (and, inversely,
        "extra gate" injection).  ``other`` must not depend on ``index``
        (checked by the caller to avoid an O(V+E) scan here).
        """
        if name is None:
            name = self.fresh_name(
                f"{self.gates[index].name}_{gtype.name.lower()}2")
        new_idx = self.add_gate(name, gtype, [index, other])
        for g in self.gates:
            if g.index == new_idx:
                continue
            g.fanin = [new_idx if src == index else src for src in g.fanin]
        self.outputs = [new_idx if out == index else out
                        for out in self.outputs]
        self._dirty()
        return new_idx

    def insert_gate_on_branch(self, sink: int, pin: int, gtype: GateType,
                              name: str | None = None) -> int:
        """Insert a unary gate on the branch feeding ``sink`` pin ``pin``."""
        gate = self.gates[sink]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        src = gate.fanin[pin]
        if name is None:
            name = self.fresh_name(
                f"{self.gates[src].name}_{gtype.name.lower()}_b")
        new_idx = self.add_gate(name, gtype, [src])
        self.gates[sink].fanin[pin] = new_idx
        self._dirty()
        return new_idx

    def bypass_gate(self, index: int) -> None:
        """Make every consumer of ``index`` read its single fanin instead.

        Used to *remove* an inverter/buffer (the gate becomes detached).
        """
        gate = self.gates[index]
        if len(gate.fanin) != 1:
            raise NetlistError(
                f"gate {gate.name!r}: can only bypass 1-input gates")
        src = gate.fanin[0]
        for g in self.gates:
            g.fanin = [src if s == index else s for s in g.fanin]
        self.outputs = [src if out == index else out for out in self.outputs]
        self._dirty()

    def tie_stem_to_constant(self, index: int, value: int) -> int:
        """Force signal ``index`` to a constant for all consumers/POs.

        Models a stuck-at fault on a stem.  Returns the constant gate index.
        """
        gtype = GateType.CONST1 if value else GateType.CONST0
        name = self.fresh_name(f"{self.gates[index].name}_sa{int(bool(value))}")
        const_idx = self.add_gate(name, gtype)
        for g in self.gates:
            if g.index == const_idx:
                continue
            g.fanin = [const_idx if src == index else src for src in g.fanin]
        self.outputs = [const_idx if out == index else out
                        for out in self.outputs]
        self._dirty()
        return const_idx

    def tie_branch_to_constant(self, sink: int, pin: int, value: int) -> int:
        """Force the branch into ``sink`` pin ``pin`` to a constant."""
        gate = self.gates[sink]
        if not 0 <= pin < len(gate.fanin):
            raise NetlistError(f"gate {gate.name!r}: no pin {pin}")
        gtype = GateType.CONST1 if value else GateType.CONST0
        src = gate.fanin[pin]
        name = self.fresh_name(
            f"{self.gates[src].name}_sa{int(bool(value))}_b")
        const_idx = self.add_gate(name, gtype)
        self.gates[sink].fanin[pin] = const_idx
        self._dirty()
        return const_idx

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy (indices preserved)."""
        dup = Netlist(name or self.name)
        dup.gates = [g.copy() for g in self.gates]
        dup.outputs = list(self.outputs)
        dup._name2idx = dict(self._name2idx)
        return dup

    def compacted(self, name: str | None = None) -> "Netlist":
        """Copy with detached gates removed and indices renumbered.

        INPUT gates are always retained (a circuit's interface must not
        silently shrink because a fault detached a cone).
        """
        keep = sorted(self.live_set() | set(self.inputs))
        remap = {old: new for new, old in enumerate(keep)}
        dup = Netlist(name or self.name)
        for old in keep:
            gate = self.gates[old]
            dup.gates.append(Gate(remap[old], gate.name, gate.gtype,
                                  [remap[s] for s in gate.fanin]))
            dup._name2idx[gate.name] = remap[old]
        dup.outputs = [remap[out] for out in self.outputs]
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, gates={len(self.gates)}, "
                f"inputs={self.num_inputs}, outputs={self.num_outputs})")
