"""Netlist transformations.

Two families live here:

* **Area optimization** — the paper optimizes the benchmark circuits for
  area before the stuck-at experiments ("to simulate a realistic
  diagnosis environment", §4.1).  :func:`optimize_area` chains constant
  propagation, buffer/double-inverter collapsing, structural hashing
  (duplicate-gate sharing) and dead-gate sweeping until fixpoint.

* **XOR expansion** — :func:`expand_xor` rewrites XOR/XNOR gates into the
  4-NAND structure.  The paper singles out "multiple faults introduced
  into a NAND-based XOR structure" as the hard case for heuristic 3
  (§3.2), so the harness can produce those structures on demand.

All transforms preserve the circuit function on the primary outputs; the
test suite checks this by exhaustive/bit-parallel simulation.
"""

from __future__ import annotations

from .gatetypes import (GateType, INVERTED_COUNTERPART,
                        MULTI_INPUT_TYPES)
from .netlist import Netlist


def expand_xor(netlist: Netlist, name: str | None = None) -> Netlist:
    """Rewrite every (live) XOR/XNOR into 2-input NAND trees.

    Multi-input XORs are first split into a chain of 2-input XORs; each
    2-input XOR becomes the classic 4-NAND structure
    ``y = NAND(NAND(a, t), NAND(b, t))`` with ``t = NAND(a, b)``; XNOR adds
    an output inverter (folded as AND-of-NANDs).
    """
    out = netlist.copy(name or f"{netlist.name}_nand")
    for idx in list(out.live_set()):
        gate = out.gates[idx]
        if gate.gtype not in (GateType.XOR, GateType.XNOR):
            continue
        invert = gate.gtype is GateType.XNOR
        fanin = list(gate.fanin)
        acc = fanin[0]
        for k, nxt in enumerate(fanin[1:]):
            t = out.add_gate(out.fresh_name(f"{gate.name}_x{k}t"),
                             GateType.NAND, [acc, nxt])
            u = out.add_gate(out.fresh_name(f"{gate.name}_x{k}u"),
                             GateType.NAND, [acc, t])
            v = out.add_gate(out.fresh_name(f"{gate.name}_x{k}v"),
                             GateType.NAND, [nxt, t])
            acc = out.add_gate(out.fresh_name(f"{gate.name}_x{k}y"),
                               GateType.NAND, [u, v])
        # Re-purpose the original gate so consumers stay wired to `idx`.
        if invert:
            gate.gtype = GateType.NOT
            gate.fanin = [acc]
        else:
            gate.gtype = GateType.BUF
            gate.fanin = [acc]
    out._dirty()
    return out


def _propagate_constants(nl: Netlist) -> bool:
    """One pass of constant folding; returns True if anything changed."""
    changed = False
    const_val: dict[int, int] = {}
    for idx in nl.topo_order():
        gate = nl.gates[idx]
        if gate.gtype is GateType.CONST0:
            const_val[idx] = 0
            continue
        if gate.gtype is GateType.CONST1:
            const_val[idx] = 1
            continue
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            continue
        in_consts = [const_val.get(src) for src in gate.fanin]
        if gate.gtype in (GateType.BUF, GateType.NOT):
            if in_consts[0] is not None:
                value = in_consts[0] if gate.gtype is GateType.BUF \
                    else 1 - in_consts[0]
                gate.gtype = GateType.CONST1 if value else GateType.CONST0
                gate.fanin = []
                const_val[idx] = value
                changed = True
            continue
        if gate.gtype not in MULTI_INPUT_TYPES:
            continue
        ctrl = {GateType.AND: 0, GateType.NAND: 0,
                GateType.OR: 1, GateType.NOR: 1}.get(gate.gtype)
        inverting = gate.gtype in (GateType.NAND, GateType.NOR,
                                   GateType.XNOR)
        if ctrl is not None and ctrl in in_consts:
            value = (1 - ctrl) if inverting else ctrl
            gate.gtype = GateType.CONST1 if value else GateType.CONST0
            gate.fanin = []
            const_val[idx] = value
            changed = True
            continue
        if all(c is not None for c in in_consts):
            from .gatetypes import eval_scalar
            value = eval_scalar(gate.gtype, in_consts)
            gate.gtype = GateType.CONST1 if value else GateType.CONST0
            gate.fanin = []
            const_val[idx] = value
            changed = True
            continue
        # Drop non-controlling constant fanins (identity elements); XOR
        # with const folds to (possibly inverted) remainder.
        if any(c is not None for c in in_consts):
            keep = [src for src, c in zip(gate.fanin, in_consts)
                    if c is None]
            if gate.gtype in (GateType.XOR, GateType.XNOR):
                flips = sum(c for c in in_consts if c is not None)
                if flips % 2:
                    gate.gtype = INVERTED_COUNTERPART[gate.gtype]
            if len(keep) == 1:
                single = keep[0]
                if gate.gtype in (GateType.AND, GateType.OR, GateType.XOR):
                    gate.gtype = GateType.BUF
                else:
                    gate.gtype = GateType.NOT
                gate.fanin = [single]
            else:
                gate.fanin = keep
            changed = True
    if changed:
        nl._dirty()
    return changed


def _collapse_buffers(nl: Netlist) -> bool:
    """Bypass BUFs; merge NOT-of-NOT chains.  Returns True on change."""
    changed = False
    # Resolve each signal to its "canonical" (source, inverted) pair.
    for gate in nl.gates:
        new_fanin = []
        for src in gate.fanin:
            steps = 0
            cur = src
            while steps < 64:
                srcg = nl.gates[cur]
                if srcg.gtype is GateType.BUF:
                    cur = srcg.fanin[0]
                elif srcg.gtype is GateType.NOT:
                    nxt = nl.gates[srcg.fanin[0]]
                    if nxt.gtype is GateType.NOT:
                        cur = nxt.fanin[0]
                    elif nxt.gtype is GateType.BUF:
                        # NOT(BUF(x)) -> keep NOT, skip BUF
                        break
                    else:
                        break
                else:
                    break
                steps += 1
            if cur != src:
                changed = True
            new_fanin.append(cur)
        gate.fanin = new_fanin
    new_outputs = []
    for out in nl.outputs:
        cur = out
        while nl.gates[cur].gtype is GateType.BUF:
            cur = nl.gates[cur].fanin[0]
            changed = True
        new_outputs.append(cur)
    nl.outputs = new_outputs
    if changed:
        nl._dirty()
    return changed


def _share_duplicates(nl: Netlist) -> bool:
    """Structural hashing: merge gates with identical (type, fanin)."""
    changed = False
    seen: dict[tuple, int] = {}
    remap: dict[int, int] = {}
    for idx in nl.topo_order():
        gate = nl.gates[idx]
        fanin = tuple(remap.get(s, s) for s in gate.fanin)
        if fanin != tuple(gate.fanin):
            gate.fanin = list(fanin)
            changed = True
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            continue
        commutative = gate.gtype in MULTI_INPUT_TYPES
        key_fanin = tuple(sorted(fanin)) if commutative else fanin
        key = (gate.gtype, key_fanin)
        if key in seen and seen[key] != idx:
            remap[idx] = seen[key]
            changed = True
        else:
            seen[key] = idx
    if remap:
        for gate in nl.gates:
            gate.fanin = [remap.get(s, s) for s in gate.fanin]
        nl.outputs = [remap.get(o, o) for o in nl.outputs]
    if changed:
        nl._dirty()
    return changed


def optimize_area(netlist: Netlist, name: str | None = None,
                  max_passes: int = 20) -> Netlist:
    """Area optimization to fixpoint; returns a compacted copy.

    Chains constant propagation, buffer/inverter-pair collapsing and
    structural hashing, then sweeps detached gates.  Function on the
    primary outputs is preserved (tested by simulation equivalence).
    """
    nl = netlist.copy(name or f"{netlist.name}_opt")
    for _ in range(max_passes):
        changed = _propagate_constants(nl)
        changed |= _collapse_buffers(nl)
        changed |= _share_duplicates(nl)
        if not changed:
            break
    return nl.compacted(name or f"{netlist.name}_opt")
