"""Miter construction: the equivalence-checking substrate.

A *miter* of two same-interface netlists shares their primary inputs,
XORs corresponding outputs and ORs the XORs into one output that is 1
exactly when the circuits disagree.  Two uses here:

* deterministic *distinguishing vector* generation — a PODEM test for
  ``miter_output stuck-at-0`` is precisely an input assignment on which
  the two circuits differ (:mod:`repro.tgen.distinguish`);
* lightweight equivalence checking of diagnosis repairs beyond the
  simulated vector set.
"""

from __future__ import annotations

from ..errors import NetlistError
from .gatetypes import GateType
from .netlist import Netlist


def build_miter(a: Netlist, b: Netlist,
                name: str | None = None) -> Netlist:
    """Return the miter of ``a`` and ``b`` (single output: "differs").

    The circuits must be combinational with matching PI and PO counts;
    PIs are matched positionally (by order, not by name), as are POs.
    """
    if not a.is_combinational or not b.is_combinational:
        raise NetlistError("miter needs combinational netlists")
    if a.num_inputs != b.num_inputs:
        raise NetlistError(
            f"input count mismatch: {a.num_inputs} vs {b.num_inputs}")
    if a.num_outputs != b.num_outputs:
        raise NetlistError(
            f"output count mismatch: {a.num_outputs} vs {b.num_outputs}")
    miter = Netlist(name or f"miter_{a.name}_{b.name}")
    pis = [miter.add_input(f"pi{i}") for i in range(a.num_inputs)]

    def instantiate(src: Netlist, prefix: str) -> dict:
        mapping: dict = {}
        src_pis = src.inputs
        for pos, pi in enumerate(src_pis):
            mapping[pi] = pis[pos]
        for idx in src.topo_order():
            gate = src.gates[idx]
            if gate.gtype is GateType.INPUT:
                continue
            if gate.gtype is GateType.DFF:
                raise NetlistError("miter needs combinational netlists")
            mapping[idx] = miter.add_gate(
                miter.fresh_name(f"{prefix}_{gate.name}"), gate.gtype,
                [mapping[s] for s in gate.fanin])
        return mapping

    map_a = instantiate(a, "a")
    map_b = instantiate(b, "b")
    xors = []
    for pos in range(a.num_outputs):
        xors.append(miter.add_gate(
            f"diff{pos}", GateType.XOR,
            [map_a[a.outputs[pos]], map_b[b.outputs[pos]]]))
    if len(xors) == 1:
        out = miter.add_gate("differs", GateType.BUF, [xors[0]])
    else:
        out = miter.add_gate("differs", GateType.OR, xors)
    miter.set_outputs([out])
    return miter
