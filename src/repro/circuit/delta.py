"""Structured netlist edit journal: the delta model of incremental facts.

Every :class:`~repro.circuit.netlist.Netlist` mutator used to call a
blanket ``_dirty()`` that dropped every derived cache — topological
ranks, fanout lists, cones, dataflow facts, the Tseitin encoding —
making static analysis unaffordable anywhere but the diagnosis root.
This module defines the *edit journal* that replaces it: each mutation
appends one or more :class:`NetlistEdit` records, a monotone version
counter advances, and consumers (the netlist's own structural caches,
:mod:`repro.analyze.incremental`, the retirable CNF of
:mod:`repro.analyze.prove`) repair themselves from the recorded delta
instead of recomputing from scratch.

Edit kinds (one record per primitive change; compound mutators such as
``insert_gate_on_stem`` decompose into a ``gate_added`` plus one
``pin_replaced`` per rewired consumer pin plus an ``outputs_set``):

========== ===========================================================
kind        payload
========== ===========================================================
gate_added  ``gate`` = new index, ``new`` = ``(gtype, fanin tuple)``
type_changed  ``gate``, ``old``/``new`` = the :class:`GateType` pair
pin_replaced  ``gate``, ``pin``, ``old``/``new`` = source indices
pin_removed   ``gate``, ``pin``, ``old`` = removed source index
pin_added     ``gate``, ``new`` = appended source index
outputs_set   ``old``/``new`` = the output index tuples
========== ===========================================================

The journal is bounded (:data:`JOURNAL_CAP`); when it overflows, or when
an edit defies per-record description (legacy ``_dirty()`` calls, cut
type changes), the netlist falls back to *full invalidation*: the
journal resets and :meth:`Netlist.edits_since` answers ``None`` for any
version predating the reset, which every consumer must treat as
"recompute from scratch".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

__all__ = ["NetlistEdit", "NetlistDelta", "JOURNAL_CAP"]

#: Maximum journal length; beyond it the oldest half is discarded and
#: consumers holding versions older than the cut see a full invalidate.
#: Construction appends thousands of ``gate_added`` records, so the cap
#: also bounds the journal memory of freshly parsed netlists.
JOURNAL_CAP = 1024


@dataclass(frozen=True)
class NetlistEdit:
    """One primitive structural change (see module table for payloads)."""

    kind: str
    gate: int = -1
    pin: int = -1
    old: object = None
    new: object = None


class NetlistDelta:
    """An ordered slice of the edit journal between two versions.

    Obtained from :meth:`Netlist.edits_since`.  The accessors derive the
    seed sets every cache-repair rule needs; they are pure functions of
    the edit list (computed lazily, cached on the instance).
    """

    __slots__ = ("edits", "_touched", "_sources", "_outputs_before")

    def __init__(self, edits: Tuple[NetlistEdit, ...]):
        self.edits = edits
        self._touched: Optional[Set[int]] = None
        self._sources: Optional[Set[int]] = None
        self._outputs_before: object = _UNSET

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self) -> Iterator[NetlistEdit]:
        return iter(self.edits)

    def __bool__(self) -> bool:
        return bool(self.edits)

    def touched_gates(self) -> Set[int]:
        """Gates whose *function or fanin list* changed (added gates
        included) — the forward-analysis seed set."""
        if self._touched is None:
            touched: Set[int] = set()
            for e in self.edits:
                if e.kind in ("gate_added", "type_changed", "pin_replaced",
                              "pin_removed", "pin_added"):
                    touched.add(e.gate)
            self._touched = touched
        return self._touched

    def touched_sources(self) -> Set[int]:
        """Signals whose *fanout list* changed: every old/new source of
        a pin edit plus the fanins of added gates — the seed set for
        cone and dominator repair."""
        if self._sources is None:
            sources: Set[int] = set()
            for e in self.edits:
                if e.kind == "pin_replaced":
                    sources.add(e.old)
                    sources.add(e.new)
                elif e.kind == "pin_removed":
                    sources.add(e.old)
                elif e.kind == "pin_added":
                    sources.add(e.new)
                elif e.kind == "gate_added":
                    sources.update(e.new[1])
            self._sources = sources
        return self._sources

    def outputs_before(self) -> Optional[Tuple[int, ...]]:
        """The output list as it stood before this delta, or ``None``
        when no ``outputs_set`` edit is recorded (outputs unchanged)."""
        if self._outputs_before is _UNSET:
            before = None
            for e in self.edits:
                if e.kind == "outputs_set":
                    before = tuple(e.old)
                    break
            self._outputs_before = before
        return self._outputs_before

    def outputs_changed(self) -> bool:
        return self.outputs_before() is not None

    def connectivity_changed(self) -> bool:
        """True when any edge or the output list changed (anything but
        pure ``type_changed`` records)."""
        return any(e.kind != "type_changed" for e in self.edits)


class _Unset:
    __slots__ = ()


_UNSET = _Unset()
