"""Gate-level circuit substrate: netlists, lines, I/O, generators,
sequential support and transformations."""

from .gatetypes import (GateType, controlling_value, eval_scalar,
                        eval_ternary, eval_words)
from .netlist import Gate, Netlist
from .lines import Line, LineKind, LineTable
from .validate import issues, report, validate
from . import bench_io, generators, verilog_io
from .sequential import (ScanMap, SequentialSimulator, full_scan,
                         normalize_initial_state)
from .transform import expand_xor, optimize_area
from .miter import build_miter
from .unroll import UnrollMap, pack_sequences, unroll

__all__ = [
    "GateType", "controlling_value", "eval_scalar", "eval_ternary",
    "eval_words",
    "Gate", "Netlist", "Line", "LineKind", "LineTable",
    "issues", "report", "validate", "bench_io", "generators",
    "verilog_io",
    "ScanMap", "SequentialSimulator", "full_scan",
    "normalize_initial_state",
    "expand_xor", "optimize_area",
    "build_miter", "UnrollMap", "pack_sequences", "unroll",
]
