"""Benchmark circuit generators.

The paper evaluates on ISCAS'85 and full-scan ISCAS'89 netlists.  Those
files are not redistributable here, so this module builds a suite of
circuits with the same structural character (see DESIGN.md §4): adders,
an array multiplier (the C6288 analogue), ALUs, error-correcting-code
logic (C499/C1355 analogues), priority/decoder logic (C432 analogue),
barrel shifters, parity trees, random DAGs, and random sequential circuits
run through the full-scan transform.  The genuine tiny ISCAS circuits
``c17`` and ``s27`` are embedded verbatim as anchors.

All generators return a validated :class:`~repro.circuit.netlist.Netlist`.
"""

from __future__ import annotations

import random

from .bench_io import loads
from .gatetypes import GateType
from .netlist import Netlist
from .validate import validate

_C17_BENCH = """
# c17 (ISCAS'85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

_S27_BENCH = """
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def c17() -> Netlist:
    """The genuine ISCAS'85 c17 circuit (6 NAND gates)."""
    return loads(_C17_BENCH, "c17")


def s27() -> Netlist:
    """The genuine ISCAS'89 s27 circuit (3 DFFs)."""
    return loads(_S27_BENCH, "s27")


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------
def _xor2(nl: Netlist, a: int, b: int, name: str) -> int:
    return nl.add_gate(name, GateType.XOR, [a, b])


def _mux(nl: Netlist, sel: int, d0: int, d1: int, name: str) -> int:
    """2:1 mux out = sel ? d1 : d0, built from NAND gates."""
    ns = nl.add_gate(f"{name}_ns", GateType.NOT, [sel])
    t0 = nl.add_gate(f"{name}_t0", GateType.NAND, [ns, d0])
    t1 = nl.add_gate(f"{name}_t1", GateType.NAND, [sel, d1])
    return nl.add_gate(name, GateType.NAND, [t0, t1])


def _full_adder(nl: Netlist, a: int, b: int, cin: int,
                prefix: str) -> tuple[int, int]:
    """Classic 2-XOR/2-AND/1-OR full adder; returns (sum, carry-out)."""
    x1 = nl.add_gate(f"{prefix}_x1", GateType.XOR, [a, b])
    s = nl.add_gate(f"{prefix}_s", GateType.XOR, [x1, cin])
    a1 = nl.add_gate(f"{prefix}_a1", GateType.AND, [a, b])
    a2 = nl.add_gate(f"{prefix}_a2", GateType.AND, [x1, cin])
    cout = nl.add_gate(f"{prefix}_c", GateType.OR, [a1, a2])
    return s, cout


def _half_adder(nl: Netlist, a: int, b: int,
                prefix: str) -> tuple[int, int]:
    s = nl.add_gate(f"{prefix}_s", GateType.XOR, [a, b])
    c = nl.add_gate(f"{prefix}_c", GateType.AND, [a, b])
    return s, c


def _xor_tree(nl: Netlist, signals: list[int], prefix: str) -> int:
    """Balanced XOR reduction tree over ``signals``."""
    layer = list(signals)
    depth = 0
    while len(layer) > 1:
        nxt: list[int] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(_xor2(nl, layer[i], layer[i + 1],
                             f"{prefix}_d{depth}_{i // 2}"))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        depth += 1
    return layer[0]


# ----------------------------------------------------------------------
# arithmetic circuits
# ----------------------------------------------------------------------
def ripple_carry_adder(width: int = 8, name: str | None = None) -> Netlist:
    """``width``-bit ripple-carry adder: a + b + cin -> sum, cout."""
    nl = Netlist(name or f"rca{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    carry = nl.add_input("cin")
    sums: list[int] = []
    for i in range(width):
        s, carry = _full_adder(nl, a[i], b[i], carry, f"fa{i}")
        sums.append(s)
    nl.set_outputs(sums + [carry])
    validate(nl)
    return nl


def array_multiplier(width: int = 8, name: str | None = None) -> Netlist:
    """``width`` x ``width`` carry-save array multiplier.

    The C6288 analogue: a reconvergence-heavy adder array that is
    classically hard to diagnose.  16x16 yields ~2.4k gates like C6288;
    the suite uses smaller widths by default for Python runtimes.
    """
    nl = Netlist(name or f"mult{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    # Partial products bucketed by bit weight.
    cols: dict[int, list[int]] = {w: [] for w in range(2 * width)}
    for i in range(width):
        for j in range(width):
            cols[i + j].append(
                nl.add_gate(f"pp{i}_{j}", GateType.AND, [a[i], b[j]]))
    # Carry-save reduction: compress every column to <= 2 signals.  Carries
    # land in the next column, which is processed afterwards, so one
    # low-to-high pass suffices.
    counter = 0
    for w in range(2 * width):
        while len(cols[w]) > 2:
            x = cols[w].pop()
            y = cols[w].pop()
            z = cols[w].pop()
            s, c = _full_adder(nl, x, y, z, f"csa{w}_{counter}")
            counter += 1
            cols[w].append(s)
            cols.setdefault(w + 1, []).append(c)
    # Final carry-propagate addition of the remaining two rows.
    outputs: list[int] = []
    carry: int | None = None
    for w in range(2 * width):
        sigs = list(cols.get(w, ()))
        if carry is not None:
            sigs.append(carry)
            carry = None
        if not sigs:
            outputs.append(nl.add_gate(nl.fresh_name(f"z{w}"),
                                       GateType.CONST0))
        elif len(sigs) == 1:
            outputs.append(sigs[0])
        elif len(sigs) == 2:
            s, carry = _half_adder(nl, sigs[0], sigs[1], f"cpa{w}")
            outputs.append(s)
        else:
            s, carry = _full_adder(nl, sigs[0], sigs[1], sigs[2], f"cpa{w}")
            outputs.append(s)
    nl.set_outputs(outputs[: 2 * width])
    validate(nl)
    return nl


def comparator(width: int = 8, name: str | None = None) -> Netlist:
    """Magnitude comparator: outputs (a>b, a==b, a<b)."""
    nl = Netlist(name or f"cmp{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    gt = nl.add_gate("gt_init", GateType.CONST0)
    eq = nl.add_gate("eq_init", GateType.CONST1)
    for i in reversed(range(width)):  # MSB first
        nb = nl.add_gate(f"nb{i}", GateType.NOT, [b[i]])
        a_gt_b = nl.add_gate(f"agtb{i}", GateType.AND, [a[i], nb])
        bit_eq = nl.add_gate(f"eqb{i}", GateType.XNOR, [a[i], b[i]])
        win = nl.add_gate(f"win{i}", GateType.AND, [eq, a_gt_b])
        gt = nl.add_gate(f"gt{i}", GateType.OR, [gt, win])
        eq = nl.add_gate(f"eq{i}", GateType.AND, [eq, bit_eq])
    ngt = nl.add_gate("n_gt", GateType.NOT, [gt])
    neq = nl.add_gate("n_eq", GateType.NOT, [eq])
    lt = nl.add_gate("lt", GateType.AND, [ngt, neq])
    nl.set_outputs([gt, eq, lt])
    validate(nl)
    return nl


# ----------------------------------------------------------------------
# control / datapath circuits
# ----------------------------------------------------------------------
def alu(width: int = 8, name: str | None = None) -> Netlist:
    """Small ALU (C880 analogue): 8 ops selected by 3 control bits.

    Ops: ADD, SUB, AND, OR, XOR, NOR, pass-A, NOT-A; plus carry-out and
    zero-flag outputs.
    """
    nl = Netlist(name or f"alu{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    sel = [nl.add_input(f"op{i}") for i in range(3)]
    # Adder/subtractor: b xor sub, carry-in = sub (sub = sel0 & ~sel1 & ~sel2)
    ns1 = nl.add_gate("ns1", GateType.NOT, [sel[1]])
    ns2 = nl.add_gate("ns2", GateType.NOT, [sel[2]])
    sub = nl.add_gate("sub", GateType.AND, [sel[0], ns1, ns2])
    carry = sub
    add_bits: list[int] = []
    for i in range(width):
        bx = nl.add_gate(f"bx{i}", GateType.XOR, [b[i], sub])
        s, carry = _full_adder(nl, a[i], bx, carry, f"fa{i}")
        add_bits.append(s)
    cout = carry
    # Logic ops
    and_bits = [nl.add_gate(f"and{i}", GateType.AND, [a[i], b[i]])
                for i in range(width)]
    or_bits = [nl.add_gate(f"or{i}", GateType.OR, [a[i], b[i]])
               for i in range(width)]
    xor_bits = [nl.add_gate(f"xor{i}", GateType.XOR, [a[i], b[i]])
                for i in range(width)]
    nor_bits = [nl.add_gate(f"nor{i}", GateType.NOR, [a[i], b[i]])
                for i in range(width)]
    nota = [nl.add_gate(f"na{i}", GateType.NOT, [a[i]]) for i in range(width)]
    outs: list[int] = []
    for i in range(width):
        # 8:1 mux from three levels of 2:1 muxes
        m00 = _mux(nl, sel[0], add_bits[i], add_bits[i], f"m00_{i}")
        m01 = _mux(nl, sel[0], and_bits[i], or_bits[i], f"m01_{i}")
        m10 = _mux(nl, sel[0], xor_bits[i], nor_bits[i], f"m10_{i}")
        m11 = _mux(nl, sel[0], a[i], nota[i], f"m11_{i}")
        m0 = _mux(nl, sel[1], m00, m01, f"m0_{i}")
        m1 = _mux(nl, sel[1], m10, m11, f"m1_{i}")
        outs.append(_mux(nl, sel[2], m0, m1, f"y{i}"))
    nzero = nl.add_gate("nzero", GateType.OR, outs)
    zero = nl.add_gate("zero", GateType.NOT, [nzero])
    nl.set_outputs(outs + [cout, zero])
    validate(nl)
    return nl


def barrel_shifter(width: int = 16, name: str | None = None) -> Netlist:
    """Logarithmic left barrel shifter (mux-layer structure)."""
    stages = max(1, (width - 1).bit_length())
    nl = Netlist(name or f"bshift{width}")
    data = [nl.add_input(f"d{i}") for i in range(width)]
    sel = [nl.add_input(f"s{i}") for i in range(stages)]
    zero = nl.add_gate("zero", GateType.CONST0)
    cur = data
    for stage in range(stages):
        shift = 1 << stage
        nxt: list[int] = []
        for i in range(width):
            src = cur[i - shift] if i - shift >= 0 else zero
            nxt.append(_mux(nl, sel[stage], cur[i], src,
                            f"st{stage}_{i}"))
        cur = nxt
    nl.set_outputs(cur)
    validate(nl)
    return nl


def priority_encoder(width: int = 16, name: str | None = None) -> Netlist:
    """Priority encoder (C432-flavoured control logic).

    Outputs the binary index of the highest-priority (highest index)
    asserted input plus a valid flag.
    """
    bits = max(1, (width - 1).bit_length())
    nl = Netlist(name or f"prio{width}")
    req = [nl.add_input(f"r{i}") for i in range(width)]
    # grant[i] = req[i] & ~req[i+1] & ... & ~req[width-1]
    nreq = [nl.add_gate(f"nr{i}", GateType.NOT, [req[i]])
            for i in range(width)]
    grants: list[int] = []
    for i in range(width):
        higher = nreq[i + 1:]
        if higher:
            grants.append(
                nl.add_gate(f"g{i}", GateType.AND, [req[i]] + higher))
        else:
            grants.append(nl.add_gate(f"g{i}", GateType.BUF, [req[i]]))
    valid = nl.add_gate("valid", GateType.OR, req)
    outs: list[int] = []
    for bit in range(bits):
        members = [grants[i] for i in range(width) if (i >> bit) & 1]
        if members:
            outs.append(nl.add_gate(f"y{bit}", GateType.OR, members))
        else:
            outs.append(nl.add_gate(f"y{bit}", GateType.CONST0))
    nl.set_outputs(outs + [valid])
    validate(nl)
    return nl


def decoder(sel_bits: int = 4, name: str | None = None) -> Netlist:
    """``sel_bits``-to-2^n one-hot decoder with enable."""
    nl = Netlist(name or f"dec{sel_bits}")
    sel = [nl.add_input(f"s{i}") for i in range(sel_bits)]
    en = nl.add_input("en")
    nsel = [nl.add_gate(f"ns{i}", GateType.NOT, [sel[i]])
            for i in range(sel_bits)]
    outs = []
    for code in range(1 << sel_bits):
        terms = [sel[i] if (code >> i) & 1 else nsel[i]
                 for i in range(sel_bits)]
        outs.append(nl.add_gate(f"o{code}", GateType.AND, terms + [en]))
    nl.set_outputs(outs)
    validate(nl)
    return nl


def parity_tree(width: int = 32, name: str | None = None) -> Netlist:
    """Balanced XOR parity tree over ``width`` inputs."""
    nl = Netlist(name or f"par{width}")
    ins = [nl.add_input(f"d{i}") for i in range(width)]
    out = _xor_tree(nl, ins, "p")
    nl.set_outputs([out])
    validate(nl)
    return nl


def hamming_corrector(data_bits: int = 16, name: str | None = None) -> Netlist:
    """Single-error-correcting Hamming decode+correct (C499/C1355 flavour).

    Inputs: ``data_bits`` received data bits + the received parity bits.
    The circuit recomputes parities, forms a syndrome, decodes it one-hot
    and XOR-corrects the data.  Outputs: corrected data + error flag.
    """
    # number of parity bits p: 2^p >= data + p + 1
    p = 1
    while (1 << p) < data_bits + p + 1:
        p += 1
    nl = Netlist(name or f"ecc{data_bits}")
    data = [nl.add_input(f"d{i}") for i in range(data_bits)]
    par = [nl.add_input(f"p{i}") for i in range(p)]
    # Assign codeword positions 1..n; powers of two are parity positions.
    positions: dict[int, int] = {}
    di = 0
    n = data_bits + p
    for pos in range(1, n + 1):
        if pos & (pos - 1) == 0:  # power of two -> parity bit
            continue
        positions[pos] = data[di]
        di += 1
    syndrome: list[int] = []
    for bit in range(p):
        members = [sig for pos, sig in positions.items()
                   if (pos >> bit) & 1]
        recomputed = _xor_tree(nl, members, f"syn{bit}")
        syndrome.append(
            _xor2(nl, recomputed, par[bit], f"s{bit}"))
    nsyn = [nl.add_gate(f"nsyn{i}", GateType.NOT, [syndrome[i]])
            for i in range(p)]
    err = nl.add_gate("err", GateType.OR, syndrome)
    corrected: list[int] = []
    di = 0
    for pos in range(1, n + 1):
        if pos & (pos - 1) == 0:
            continue
        terms = [syndrome[b] if (pos >> b) & 1 else nsyn[b]
                 for b in range(p)]
        hit = nl.add_gate(f"hit{pos}", GateType.AND, terms)
        corrected.append(_xor2(nl, positions[pos], hit, f"c{di}"))
        di += 1
    nl.set_outputs(corrected + [err])
    validate(nl)
    return nl


# ----------------------------------------------------------------------
# random circuits
# ----------------------------------------------------------------------
_RANDOM_GATE_TYPES = (
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
)


def random_dag(num_inputs: int = 16, num_gates: int = 200,
               num_outputs: int = 8, seed: int = 0,
               max_fanin: int = 4, name: str | None = None) -> Netlist:
    """Random levelized combinational DAG.

    Fanin selection is biased towards recently created signals so depth
    grows with ``num_gates`` (like a synthesized circuit, not a shallow
    random graph).
    """
    rng = random.Random(seed)
    nl = Netlist(name or f"rnd{num_gates}_{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    for g in range(num_gates):
        gtype = rng.choice(_RANDOM_GATE_TYPES)
        pool = len(nl.gates)
        if gtype in (GateType.NOT, GateType.BUF):
            n_in = 1
        else:
            n_in = rng.randint(2, min(max_fanin, pool))
        fanin = []
        for _ in range(n_in):
            # 70%: recent window, 30%: anywhere
            if rng.random() < 0.7 and pool > num_inputs:
                lo = max(0, pool - 40)
                fanin.append(rng.randrange(lo, pool))
            else:
                fanin.append(rng.randrange(pool))
        nl.add_gate(f"g{g}", gtype, fanin)
    # Outputs: prefer signals with no fanout, then random late signals.
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates if not fanouts[g.index]
             and g.gtype is not GateType.INPUT]
    rng.shuffle(sinks)
    outs = sinks[:num_outputs]
    pool = [g.index for g in nl.gates if g.gtype is not GateType.INPUT]
    while len(outs) < num_outputs and pool:
        cand = rng.choice(pool)
        if cand not in outs:
            outs.append(cand)
    nl.set_outputs(outs)
    validate(nl)
    return nl


def random_sequential(num_inputs: int = 8, num_gates: int = 150,
                      num_dffs: int = 8, num_outputs: int = 6,
                      seed: int = 0, name: str | None = None) -> Netlist:
    """Random sequential circuit: a random DAG whose DFFs feed back.

    DFF outputs participate as extra sources of the combinational core and
    their data inputs tap random internal signals, as in the ISCAS'89
    benchmarks.  Use :func:`repro.circuit.sequential.full_scan` to obtain
    the combinational full-scan model the paper diagnoses.
    """
    rng = random.Random(seed)
    nl = Netlist(name or f"seq{num_gates}_{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    # DFFs created with placeholder self fanin, patched after core build.
    dff_ids = []
    for i in range(num_dffs):
        dff_ids.append(nl.add_gate(f"ff{i}", GateType.DFF,
                                   [rng.randrange(num_inputs)]))
    for g in range(num_gates):
        gtype = rng.choice(_RANDOM_GATE_TYPES)
        pool = len(nl.gates)
        n_in = 1 if gtype in (GateType.NOT, GateType.BUF) else \
            rng.randint(2, min(4, pool))
        fanin = []
        for _ in range(n_in):
            if rng.random() < 0.7 and pool > num_inputs + num_dffs:
                lo = max(0, pool - 40)
                fanin.append(rng.randrange(lo, pool))
            else:
                fanin.append(rng.randrange(pool))
        nl.add_gate(f"g{g}", gtype, fanin)
    # Patch DFF data inputs to random internal signals (feedback).
    internal = [g.index for g in nl.gates
                if g.gtype not in (GateType.INPUT, GateType.DFF)]
    for ff in dff_ids:
        nl.gates[ff].fanin = [rng.choice(internal)]
    nl._dirty()
    outs = rng.sample(internal, min(num_outputs, len(internal)))
    nl.set_outputs(outs)
    validate(nl)
    return nl


# ----------------------------------------------------------------------
# the benchmark suite
# ----------------------------------------------------------------------
def benchmark_suite(scale: float = 1.0) -> list[Netlist]:
    """The circuit suite used by the Table 1 / Table 2 harnesses.

    ``scale`` < 1 shrinks parameterized circuits for quick runs; 1.0 gives
    sizes broadly comparable (in gate count ordering) to the paper's
    suite.  Sequential members are returned *with DFFs*; the harness
    full-scans them, mirroring the paper's treatment of ISCAS'89.
    """
    def s(value: int, lo: int = 2) -> int:
        return max(lo, int(round(value * scale)))

    suite = [
        c17(),
        priority_encoder(s(24), name="r432"),
        hamming_corrector(s(26), name="r499"),
        alu(s(8), name="r880"),
        barrel_shifter(s(24), name="r1355"),
        hamming_corrector(s(48), name="r1908"),
        comparator(s(40), name="r2670a"),
        random_dag(s(32), s(900), s(16), seed=3540, name="r3540"),
        alu(s(20), name="r5315"),
        array_multiplier(s(12), name="r6288"),
        random_dag(s(48), s(1800), s(24), seed=7552, name="r7552"),
        s27(),
        random_sequential(s(10), s(300), s(12), s(8), seed=510,
                          name="q510"),
        random_sequential(s(14), s(500), s(16), s(12), seed=1238,
                          name="q1238"),
        random_sequential(s(24), s(1200), s(32), s(16), seed=9234,
                          name="q9234"),
    ]
    return suite


#: Quick-suite names used by tests and CI-sized runs.
QUICK_SUITE = ("c17", "r432", "r499", "r880", "s27")


def by_name(name: str, scale: float = 1.0) -> Netlist:
    """Fetch one suite circuit by name."""
    for nl in benchmark_suite(scale):
        if nl.name == name:
            return nl
    raise KeyError(f"no suite circuit named {name!r}")


# ----------------------------------------------------------------------
# additional arithmetic / coding circuits
# ----------------------------------------------------------------------
def carry_lookahead_adder(width: int = 8, name: str | None = None
                          ) -> Netlist:
    """Carry-lookahead adder: flat group generate/propagate logic.

    Wider AND/OR gates and shallower depth than the ripple design — a
    different structural profile for the diagnosis experiments.
    """
    nl = Netlist(name or f"cla{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    cin = nl.add_input("cin")
    gen = [nl.add_gate(f"g{i}", GateType.AND, [a[i], b[i]])
           for i in range(width)]
    prop = [nl.add_gate(f"p{i}", GateType.XOR, [a[i], b[i]])
            for i in range(width)]
    carries = [cin]
    for i in range(width):
        # c[i+1] = g[i] | p[i]&g[i-1] | ... | p[i..0]&cin
        terms = [gen[i]]
        for j in range(i - 1, -1, -1):
            chain = [prop[k] for k in range(j + 1, i + 1)] + [gen[j]]
            terms.append(nl.add_gate(f"t{i}_{j}", GateType.AND, chain))
        chain0 = [prop[k] for k in range(0, i + 1)] + [cin]
        terms.append(nl.add_gate(f"t{i}_c", GateType.AND, chain0))
        if len(terms) == 1:
            carries.append(terms[0])
        else:
            carries.append(nl.add_gate(f"c{i + 1}", GateType.OR, terms))
    sums = [nl.add_gate(f"s{i}", GateType.XOR, [prop[i], carries[i]])
            for i in range(width)]
    nl.set_outputs(sums + [carries[width]])
    validate(nl)
    return nl


def kogge_stone_adder(width: int = 8, name: str | None = None
                      ) -> Netlist:
    """Kogge-Stone parallel-prefix adder (log-depth carry network)."""
    nl = Netlist(name or f"ks{width}")
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    g = [nl.add_gate(f"g0_{i}", GateType.AND, [a[i], b[i]])
         for i in range(width)]
    p = [nl.add_gate(f"p0_{i}", GateType.XOR, [a[i], b[i]])
         for i in range(width)]
    gen, prop = list(g), list(p)
    dist = 1
    level = 1
    while dist < width:
        new_gen, new_prop = list(gen), list(prop)
        for i in range(dist, width):
            t = nl.add_gate(f"t{level}_{i}", GateType.AND,
                            [prop[i], gen[i - dist]])
            new_gen[i] = nl.add_gate(f"g{level}_{i}", GateType.OR,
                                     [gen[i], t])
            new_prop[i] = nl.add_gate(f"p{level}_{i}", GateType.AND,
                                      [prop[i], prop[i - dist]])
        gen, prop = new_gen, new_prop
        dist *= 2
        level += 1
    zero = nl.add_gate("zero", GateType.CONST0)
    carries = [zero] + gen[:-1]
    sums = [nl.add_gate(f"s{i}", GateType.XOR, [p[i], carries[i]])
            for i in range(width)]
    nl.set_outputs(sums + [gen[width - 1]])
    validate(nl)
    return nl


def crc_checker(data_bits: int = 16, poly: int = 0x7,
                crc_bits: int = 3, name: str | None = None) -> Netlist:
    """Combinational CRC remainder over ``data_bits`` message bits.

    Linear (XOR-only) datapath — the opposite structural extreme from
    the AND/OR-heavy control circuits, and a notoriously aliasing-prone
    diagnosis workload.
    """
    nl = Netlist(name or f"crc{data_bits}_{poly:x}")
    data = [nl.add_input(f"d{i}") for i in range(data_bits)]
    # LFSR-style division unrolled combinationally: state is a list of
    # signal lists (XOR sets), materialized lazily as gates.
    state: list[list[int]] = [[] for _ in range(crc_bits)]

    def materialize(sets: list[list[int]]) -> list[int | None]:
        signals: list[int | None] = []
        for k, terms in enumerate(sets):
            if not terms:
                signals.append(None)
            elif len(terms) == 1:
                signals.append(terms[0])
            else:
                signals.append(nl.add_gate(
                    nl.fresh_name(f"x{k}"), GateType.XOR, list(terms)))
        return signals

    for bit_idx, d in enumerate(data):
        feedback = state[-1] + [d]
        new_state: list[list[int]] = []
        for k in range(crc_bits):
            terms = list(state[k - 1]) if k else []
            if (poly >> k) & 1:
                terms = terms + feedback
            # collapse duplicate pairs (x ^ x = 0)
            seen: dict[int, int] = {}
            for t in terms:
                seen[t] = seen.get(t, 0) + 1
            new_state.append([t for t, c in seen.items() if c % 2])
        state = new_state
    outputs = []
    zero = None
    for sig in materialize(state):
        if sig is None:
            if zero is None:
                zero = nl.add_gate("zero", GateType.CONST0)
            outputs.append(zero)
        else:
            outputs.append(sig)
    nl.set_outputs(outputs)
    validate(nl)
    return nl


def lfsr(width: int = 8, taps: tuple = (0, 2, 3, 4),
         name: str | None = None) -> Netlist:
    """Fibonacci LFSR with a load/shift control — a sequential workload
    with long state-propagation chains for time-frame diagnosis."""
    nl = Netlist(name or f"lfsr{width}")
    load = nl.add_input("load")
    seed_bits = [nl.add_input(f"seed{i}") for i in range(width)]
    nload = nl.add_gate("nload", GateType.NOT, [load])
    # two-phase construction: DFFs first with placeholder fanin
    ffs = [nl.add_gate(f"ff{i}", GateType.DFF, [seed_bits[0]])
           for i in range(width)]
    fb_terms = [ffs[t] for t in taps if t < width]
    feedback = nl.add_gate("fb", GateType.XOR, fb_terms) \
        if len(fb_terms) > 1 else ffs[0]
    for i in range(width):
        shift_src = feedback if i == 0 else ffs[i - 1]
        ld = nl.add_gate(f"ld{i}", GateType.AND, [load, seed_bits[i]])
        sh = nl.add_gate(f"sh{i}", GateType.AND, [nload, shift_src])
        nxt = nl.add_gate(f"nx{i}", GateType.OR, [ld, sh])
        nl.gates[ffs[i]].fanin = [nxt]
    nl._dirty()
    nl.set_outputs(list(ffs))
    validate(nl)
    return nl
