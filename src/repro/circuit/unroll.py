"""Time-frame expansion of sequential circuits.

The paper treats sequential designs via full scan, and notes (§4) that
non-scan "sequential circuits [are handled] through time-frame
expansion": replicate the combinational logic once per clock cycle and
wire each flip-flop's frame-*t* output to its data input evaluated in
frame *t−1*.  The result is a purely combinational model whose inputs
are the per-frame primary inputs and whose outputs are the per-frame
primary outputs, suitable for the unmodified diagnosis machinery (with
the twist that one physical fault occupies one line *per frame* — see
:mod:`repro.diagnose.timeframe`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetlistError
from .gatetypes import GateType
from .netlist import Netlist
from .sequential import normalize_initial_state


@dataclass
class UnrollMap:
    """Bookkeeping from :func:`unroll`.

    Attributes:
        frames: number of replicated time frames.
        instance: ``instance[t][g]`` = unrolled gate index of original
            gate ``g`` in frame ``t``.
        pi_rows: position in the unrolled model's *input list* of
            (frame, original PI position) — row order of the pattern
            sets the unrolled model consumes.
        init_rows: position in the unrolled model's input list of each
            original DFF whose reset value is X (exposed as a free
            ``@init`` input); empty when the whole reset is constant.
        po_positions: ``po_positions[t][p]`` = position in the unrolled
            output list of original PO ``p`` at frame ``t``.
    """

    frames: int
    instance: list = field(default_factory=list)
    pi_rows: dict = field(default_factory=dict)
    init_rows: dict = field(default_factory=dict)
    po_positions: list = field(default_factory=list)


def unroll(netlist: Netlist, frames: int, initial_state=0,
           name: str | None = None) -> tuple[Netlist, UnrollMap]:
    """Expand ``netlist`` over ``frames`` clock cycles.

    ``initial_state`` takes every form
    :func:`~repro.circuit.sequential.normalize_initial_state` accepts:
    an int broadcast (the usual all-0/all-1 reset), ``None`` (every
    flip-flop unknown), or a per-DFF mapping/sequence mixing constants
    with X.  Frame-0 flip-flop outputs become the corresponding reset
    constant, or an extra ``@init`` primary input for X entries (their
    input-list positions are recorded in :attr:`UnrollMap.init_rows`).
    """
    if frames < 1:
        raise NetlistError("need at least one time frame")
    init = normalize_initial_state(netlist, initial_state)
    out = Netlist(name or f"{netlist.name}_x{frames}")
    umap = UnrollMap(frames)
    const_cache: dict = {}

    def constant(value: int) -> int:
        if value not in const_cache:
            gtype = GateType.CONST1 if value else GateType.CONST0
            const_cache[value] = out.add_gate(f"reset{value}", gtype)
        return const_cache[value]

    num_inputs = 0
    prev_frame: dict = {}
    outputs: list = []
    for t in range(frames):
        mapping: dict = {}
        for pos, pi in enumerate(netlist.inputs):
            new = out.add_input(f"{netlist.gates[pi].name}@{t}")
            mapping[pi] = new
            umap.pi_rows[(t, pos)] = num_inputs
            num_inputs += 1
        for idx in netlist.topo_order():
            gate = netlist.gates[idx]
            if gate.gtype is GateType.INPUT:
                continue
            if gate.gtype is GateType.DFF:
                # Q gets an explicit BUF instance per frame so that the
                # D-input branch remains an overridable pin (needed by
                # the time-frame diagnoser) and every frame has a
                # distinct signal for the state bit.
                if t == 0:
                    if init[idx] is None:
                        src = out.add_input(f"{gate.name}@init")
                        umap.init_rows[idx] = num_inputs
                        num_inputs += 1
                    else:
                        src = constant(init[idx])
                else:
                    # Q at frame t = D evaluated in frame t-1.
                    src = prev_frame[gate.fanin[0]]
                mapping[idx] = out.add_gate(f"{gate.name}@{t}",
                                            GateType.BUF, [src])
                continue
            mapping[idx] = out.add_gate(
                f"{gate.name}@{t}", gate.gtype,
                [mapping[s] for s in gate.fanin])
        frame_pos = []
        for po in netlist.outputs:
            frame_pos.append(len(outputs))
            outputs.append(mapping[po])
        umap.po_positions.append(frame_pos)
        umap.instance.append(mapping)
        prev_frame = mapping
    out.set_outputs(outputs)
    return out, umap


def pack_sequences(netlist: Netlist, umap: UnrollMap,
                   sequences, initial_bits=0) -> "PatternSet":
    """Pack input *sequences* for an unrolled model.

    ``sequences`` is an iterable of sequences; each sequence is
    ``frames`` vectors of ``num_inputs`` bits (the stimulus applied
    cycle by cycle).  Returns a :class:`PatternSet` whose rows line up
    with the unrolled model's primary inputs — including the free
    ``@init`` state inputs of an X reset, which take ``initial_bits``
    (an int broadcast, or a mapping keyed by DFF gate index or name;
    unmentioned flip-flops default to 0).
    """
    import numpy as np

    from ..sim.packing import PatternSet, pack_bits

    seqs = list(sequences)
    num_pis = netlist.num_inputs
    nbits = len(seqs)
    rows = np.zeros((umap.frames * num_pis + len(umap.init_rows), nbits),
                    dtype=np.uint8)
    if umap.init_rows:
        if isinstance(initial_bits, int):
            init_bits = {dff: initial_bits for dff in umap.init_rows}
        else:
            by_name = {netlist.gates[dff].name: dff
                       for dff in umap.init_rows}
            init_bits = {dff: 0 for dff in umap.init_rows}
            for key, value in dict(initial_bits).items():
                dff = by_name.get(key, key)
                if dff not in init_bits:
                    raise NetlistError(
                        f"initial bit names flip-flop {key!r} with no "
                        f"free @init input")
                init_bits[dff] = int(value)
        for dff, row in umap.init_rows.items():
            bit = init_bits[dff]
            if bit not in (0, 1):
                raise NetlistError(
                    f"initial bit for flip-flop #{dff} must be 0 or 1, "
                    f"got {bit!r}")
            rows[row, :] = bit
    for v, seq in enumerate(seqs):
        if len(seq) != umap.frames:
            raise NetlistError(
                f"sequence {v} has {len(seq)} cycles, expected "
                f"{umap.frames}")
        for t, cycle in enumerate(seq):
            for pos in range(num_pis):
                rows[umap.pi_rows[(t, pos)], v] = cycle[pos]
    return PatternSet(pack_bits(rows), nbits)
