"""Structural sanity checks for netlists (back-compat shim).

The checks themselves now live in :mod:`repro.analyze` as registered
lint rules; this module keeps the historical two-call API alive:
``validate(netlist)`` raises :class:`~repro.errors.NetlistError` with a
descriptive message on the first problem found; ``issues(netlist)``
returns the full list of error-severity problems without raising.

Both report *errors only* (the strict invariants the rest of the
library assumes: index/arity/name-map integrity, acyclicity, interface
and output validity) — exactly the old contract.  For warnings (dead
cones, unobservable lines, foldable logic...) use
:func:`repro.analyze.lint_netlist` or the ``repro lint`` CLI.
"""

from __future__ import annotations

from ..errors import NetlistError
from .netlist import Netlist


def report(netlist: Netlist):
    """Full :class:`~repro.analyze.LintReport` for ``netlist``.

    Convenience bridge for callers that start from the old API and want
    the complete rule output (warnings and info included).
    """
    from ..analyze import lint_netlist
    return lint_netlist(netlist)


def issues(netlist: Netlist) -> list[str]:
    """Return a list of human-readable structural problems (empty = OK).

    Error-severity lint findings only, in rule order.  Unlike the
    pre-lint implementation, a name duplicated K times is reported once
    (naming all K occurrences) instead of K-1 times.
    """
    return [diag.message for diag in report(netlist).errors]


def validate(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` on the first structural problem."""
    found = issues(netlist)
    if found:
        raise NetlistError(
            f"netlist {netlist.name!r} is malformed: {found[0]}"
            + (f" (+{len(found) - 1} more)" if len(found) > 1 else ""))
