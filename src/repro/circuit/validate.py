"""Structural sanity checks for netlists.

``validate(netlist)`` raises :class:`~repro.errors.NetlistError` with a
descriptive message on the first problem found; ``issues(netlist)`` returns
the full list without raising.  The checks cover everything the rest of
the library assumes: index integrity, arity, name-map consistency,
acyclicity and output validity.
"""

from __future__ import annotations

from ..errors import NetlistError
from .gatetypes import GateType, arity_ok
from .netlist import Netlist


def issues(netlist: Netlist) -> list[str]:
    """Return a list of human-readable structural problems (empty = OK)."""
    problems: list[str] = []
    n = len(netlist.gates)
    seen_names: dict[str, int] = {}
    for pos, gate in enumerate(netlist.gates):
        if gate.index != pos:
            problems.append(
                f"gate {gate.name!r}: index field {gate.index} != "
                f"position {pos}")
        if gate.name in seen_names:
            problems.append(f"duplicate gate name {gate.name!r}")
        seen_names[gate.name] = pos
        if not arity_ok(gate.gtype, len(gate.fanin)):
            problems.append(
                f"gate {gate.name!r}: {gate.gtype.name} with "
                f"{len(gate.fanin)} fanin(s)")
        for pin, src in enumerate(gate.fanin):
            if not 0 <= src < n:
                problems.append(
                    f"gate {gate.name!r}: pin {pin} references missing "
                    f"gate {src}")
    for out in netlist.outputs:
        if not 0 <= out < n:
            problems.append(f"output references missing gate {out}")
    if not netlist.outputs:
        problems.append("netlist has no primary outputs")
    if not any(g.gtype is GateType.INPUT for g in netlist.gates):
        problems.append("netlist has no primary inputs")
    if not problems:
        # Only meaningful once indices are in range.
        try:
            netlist.topo_order()
        except NetlistError as exc:
            problems.append(str(exc))
    return problems


def validate(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` on the first structural problem."""
    found = issues(netlist)
    if found:
        raise NetlistError(
            f"netlist {netlist.name!r} is malformed: {found[0]}"
            + (f" (+{len(found) - 1} more)" if len(found) > 1 else ""))
