"""Fault and design-error models, injection, and collapsing."""

from .models import (Correction, CorrectionKind, StuckAtFault,
                     STUCK_AT_KINDS, apply_correction,
                     corrected_line_words, propagation_override,
                     stuck_at_correction)
from .abadir import (DEFAULT_ERROR_DISTRIBUTION, ErrorType, GATE_RELATED,
                     REPAIRING_KIND, WIRE_RELATED)
from .inject import (InjectionRecord, Workload, ground_truth_faults,
                     inject_design_errors, inject_stuck_at_faults,
                     observable_design_error_workload)
from .collapse import collapse_ratio, collapsed_faults, equivalence_classes
from .bridging import (BridgeKind, BridgingDiagnoser, BridgingFault,
                       apply_bridge, inject_bridging_fault)

__all__ = [
    "Correction", "CorrectionKind", "StuckAtFault", "STUCK_AT_KINDS",
    "apply_correction", "corrected_line_words", "propagation_override",
    "stuck_at_correction",
    "DEFAULT_ERROR_DISTRIBUTION", "ErrorType", "GATE_RELATED",
    "REPAIRING_KIND", "WIRE_RELATED",
    "InjectionRecord", "Workload", "ground_truth_faults",
    "inject_design_errors", "inject_stuck_at_faults",
    "observable_design_error_workload",
    "collapse_ratio", "collapsed_faults", "equivalence_classes",
    "BridgeKind", "BridgingDiagnoser", "BridgingFault", "apply_bridge",
    "inject_bridging_fault",
]
