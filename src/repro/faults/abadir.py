"""The Abadir–Ferguson–Kirkland design error model.

The paper selects corrections "from a design error model, such as the one
by Abadir et al. [1]" containing "ten different types of frequently
occurring errors [2] such as gate type replacement, missing inverter,
missing input wire etc." (§1).  This module defines those error types,
the injection distribution, and the mapping between an injected *error*
and the *correction kind* that repairs it.

The paper draws error types "according to the distribution presented in
[2]" (Campenhout, Hayes & Mudge, *Collection and analysis of
microprocessor design errors*).  We do not have the original tables
offline; ``DEFAULT_ERROR_DISTRIBUTION`` encodes the qualitative ranking
reported there and in the follow-up DEDC literature — wrong/replaced
gates and wire errors dominate, inverter errors are common, extra-gate
errors are rarer (see DESIGN.md §4 substitution 4).
"""

from __future__ import annotations

import enum

from .models import CorrectionKind


class ErrorType(enum.Enum):
    """Design error classes injected into implementations (DEDC mode)."""

    GATE_REPLACEMENT = "gate_replacement"    # wrong gate function
    EXTRA_INVERTER = "extra_inverter"        # inverter that shouldn't exist
    MISSING_INVERTER = "missing_inverter"    # inverter that was dropped
    EXTRA_INPUT_WIRE = "extra_input_wire"    # gate has a spurious fanin
    MISSING_INPUT_WIRE = "missing_input_wire"  # gate lost one fanin
    WRONG_INPUT_WIRE = "wrong_input_wire"    # fanin connected elsewhere
    EXTRA_GATE = "extra_gate"                # spurious gate on a net
    MISSING_GATE = "missing_gate"            # a gate was dropped entirely


#: error type -> correction kind that repairs it
REPAIRING_KIND = {
    ErrorType.GATE_REPLACEMENT: CorrectionKind.GATE_REPLACE,
    ErrorType.EXTRA_INVERTER: CorrectionKind.REMOVE_INVERTER,
    ErrorType.MISSING_INVERTER: CorrectionKind.INSERT_INVERTER,
    ErrorType.EXTRA_INPUT_WIRE: CorrectionKind.REMOVE_INPUT_WIRE,
    ErrorType.MISSING_INPUT_WIRE: CorrectionKind.ADD_INPUT_WIRE,
    ErrorType.WRONG_INPUT_WIRE: CorrectionKind.REPLACE_INPUT_WIRE,
    ErrorType.EXTRA_GATE: CorrectionKind.BYPASS_GATE,
    ErrorType.MISSING_GATE: CorrectionKind.INSERT_GATE,
}

#: Injection distribution (weights; normalized at draw time).  Qualitative
#: shape from Campenhout et al.: gate/module substitutions and wiring
#: errors dominate logic-level bug reports; inverter polarity bugs are
#: common; structural add/remove errors are rarer.
DEFAULT_ERROR_DISTRIBUTION = {
    ErrorType.GATE_REPLACEMENT: 0.27,
    ErrorType.WRONG_INPUT_WIRE: 0.18,
    ErrorType.MISSING_INVERTER: 0.13,
    ErrorType.EXTRA_INVERTER: 0.09,
    ErrorType.MISSING_INPUT_WIRE: 0.13,
    ErrorType.EXTRA_INPUT_WIRE: 0.09,
    ErrorType.EXTRA_GATE: 0.06,
    ErrorType.MISSING_GATE: 0.05,
}

#: "Certain classes of faults and errors, such as gate related errors,
#: are easier to excite than others such as wire related errors" (§3.2).
GATE_RELATED = frozenset({
    ErrorType.GATE_REPLACEMENT,
    ErrorType.EXTRA_INVERTER,
    ErrorType.MISSING_INVERTER,
    ErrorType.EXTRA_GATE,
    ErrorType.MISSING_GATE,
})

WIRE_RELATED = frozenset({
    ErrorType.EXTRA_INPUT_WIRE,
    ErrorType.MISSING_INPUT_WIRE,
    ErrorType.WRONG_INPUT_WIRE,
})
