"""Fault and design-error injection — the experiment workload maker.

The paper corrupts each benchmark with 1–4 random stuck-at faults
(Table 1) or 3–4 design errors drawn from the Campenhout distribution
(Table 2), requiring the design-error workloads to be *observable*.
:func:`inject_stuck_at_faults` and :func:`inject_design_errors` reproduce
that setup and return the mutated netlist together with a ground-truth
record for scoring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..circuit.gatetypes import (GateType, REPLACEMENT_CLASSES, SOURCE_TYPES)
from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..errors import InjectionError
from .abadir import DEFAULT_ERROR_DISTRIBUTION, ErrorType
from .models import StuckAtFault


@dataclass
class InjectionRecord:
    """Ground truth of one injected fault/error."""

    kind: str                    # "sa0", "sa1" or an ErrorType value
    site: str                    # line description in the *original* netlist
    detail: str = ""             # e.g. "AND->NOR" or "pin1<-g42"


@dataclass
class Workload:
    """A diagnosis problem instance: spec, faulty impl, ground truth."""

    spec: Netlist
    impl: Netlist
    truth: list = field(default_factory=list)


def inject_stuck_at_faults(netlist: Netlist, count: int,
                           seed: int = 0) -> Workload:
    """Inject ``count`` random stuck-at faults on distinct lines.

    Fault locations and polarities are chosen uniformly (paper §4: "The
    locations of the faults and errors were selected at random.  The type
    of stuck-at faults was also selected at random").
    """
    rng = random.Random(seed)
    table = LineTable(netlist)
    if count > len(table):
        raise InjectionError(
            f"cannot inject {count} faults into {len(table)} lines")
    impl = netlist.copy(f"{netlist.name}_f{count}_{seed}")
    chosen = rng.sample(range(len(table)), count)
    truth = []
    for line_index in chosen:
        line = table[line_index]
        value = rng.randint(0, 1)
        site = line.describe(netlist)
        if line.is_stem:
            impl.tie_stem_to_constant(line.driver, value)
        else:
            impl.tie_branch_to_constant(line.sink, line.pin, value)
        truth.append(InjectionRecord(f"sa{value}", site))
    return Workload(netlist, impl, truth)


def ground_truth_faults(workload: Workload) -> list[StuckAtFault]:
    """Ground truth as :class:`StuckAtFault` objects (stuck-at workloads)."""
    return [StuckAtFault(rec.site, int(rec.kind[-1]))
            for rec in workload.truth if rec.kind in ("sa0", "sa1")]


# ----------------------------------------------------------------------
# design-error injection
# ----------------------------------------------------------------------
def _draw_error_type(rng: random.Random, distribution) -> ErrorType:
    types = list(distribution)
    weights = [distribution[t] for t in types]
    return rng.choices(types, weights=weights, k=1)[0]


def _wire_source_candidates(netlist: Netlist, gate_index: int,
                            rng: random.Random, limit: int = 30) -> list:
    """Signals that may legally feed ``gate_index`` (no cycle)."""
    forbidden = netlist.fanout_cone(gate_index)
    fanin = set(netlist.gates[gate_index].fanin)
    pool = [g.index for g in netlist.gates
            if g.index not in forbidden and g.index not in fanin
            and g.index in netlist.live_set() | set(netlist.inputs)]
    rng.shuffle(pool)
    return pool[:limit]


def _inject_one_error(impl: Netlist, rng: random.Random,
                      etype: ErrorType) -> InjectionRecord | None:
    """Try to inject one error of type ``etype``; None if no legal site."""
    live = sorted(impl.live_set() | set(impl.inputs))
    logic = [i for i in live
             if impl.gates[i].gtype not in SOURCE_TYPES
             and impl.gates[i].gtype is not GateType.DFF]
    if not logic:
        return None
    if etype is ErrorType.GATE_REPLACEMENT:
        candidates = [i for i in logic
                      if impl.gates[i].gtype in REPLACEMENT_CLASSES]
        if not candidates:
            return None
        idx = rng.choice(candidates)
        old = impl.gates[idx].gtype
        choices = [t for t in REPLACEMENT_CLASSES[old]
                   if t not in (GateType.XOR, GateType.XNOR)
                   or len(impl.gates[idx].fanin) <= 4]
        new = rng.choice(choices)
        impl.set_gate_type(idx, new)
        return InjectionRecord(etype.value, impl.gates[idx].name,
                               f"{old.name}->{new.name}")
    if etype is ErrorType.EXTRA_INVERTER:
        idx = rng.choice(live)
        name = impl.gates[idx].name
        impl.insert_gate_on_stem(idx, GateType.NOT)
        return InjectionRecord(etype.value, name, "inserted NOT")
    if etype is ErrorType.MISSING_INVERTER:
        nots = [i for i in logic if impl.gates[i].gtype is GateType.NOT]
        if not nots:
            return None
        idx = rng.choice(nots)
        name = impl.gates[idx].name
        impl.bypass_gate(idx)
        return InjectionRecord(etype.value, name, "removed NOT")
    if etype is ErrorType.EXTRA_INPUT_WIRE:
        gates = [i for i in logic
                 if impl.gates[i].gtype in (GateType.AND, GateType.NAND,
                                            GateType.OR, GateType.NOR)]
        if not gates:
            return None
        idx = rng.choice(gates)
        sources = _wire_source_candidates(impl, idx, rng)
        if not sources:
            return None
        src = sources[0]
        impl.add_fanin_pin(idx, src)
        return InjectionRecord(etype.value, impl.gates[idx].name,
                               f"+{impl.gates[src].name}")
    if etype is ErrorType.MISSING_INPUT_WIRE:
        gates = [i for i in logic if len(impl.gates[i].fanin) >= 3]
        if not gates:
            gates = [i for i in logic if len(impl.gates[i].fanin) == 2]
        if not gates:
            return None
        idx = rng.choice(gates)
        pin = rng.randrange(len(impl.gates[idx].fanin))
        lost = impl.gates[impl.gates[idx].fanin[pin]].name
        impl.remove_fanin_pin(idx, pin)
        return InjectionRecord(etype.value, impl.gates[idx].name,
                               f"-{lost}@pin{pin}")
    if etype is ErrorType.EXTRA_GATE:
        idx = rng.choice(live)
        sources = _wire_source_candidates(impl, idx, rng)
        if not sources:
            return None
        gtype = rng.choice((GateType.AND, GateType.OR,
                            GateType.NAND, GateType.NOR, GateType.XOR))
        name = impl.gates[idx].name
        impl.insert_binary_on_stem(idx, gtype, sources[0])
        return InjectionRecord(etype.value, name,
                               f"+{gtype.name}({impl.gates[sources[0]].name})")
    if etype is ErrorType.MISSING_GATE:
        # drop a 2-input gate: its consumers read one fanin directly
        gates = [i for i in logic if len(impl.gates[i].fanin) == 2
                 and impl.gates[i].gtype not in (GateType.NOT,
                                                 GateType.BUF)]
        if not gates:
            return None
        idx = rng.choice(gates)
        pin = rng.randrange(2)
        survivor = impl.gates[idx].fanin[pin]
        name = impl.gates[idx].name
        for g in impl.gates:
            g.fanin = [survivor if s == idx else s for s in g.fanin]
        impl.outputs = [survivor if out == idx else out
                        for out in impl.outputs]
        impl._dirty()
        return InjectionRecord(etype.value, name,
                               f"dropped, kept {impl.gates[survivor].name}")
    if etype is ErrorType.WRONG_INPUT_WIRE:
        idx = rng.choice(logic)
        gate = impl.gates[idx]
        if not gate.fanin:
            return None
        pin = rng.randrange(len(gate.fanin))
        sources = _wire_source_candidates(impl, idx, rng)
        if not sources:
            return None
        src = sources[0]
        old = impl.gates[gate.fanin[pin]].name
        impl.replace_fanin_pin(idx, pin, src)
        return InjectionRecord(etype.value, gate.name,
                               f"pin{pin}:{old}->{impl.gates[src].name}")
    return None


def inject_design_errors(netlist: Netlist, count: int, seed: int = 0,
                         distribution=None,
                         max_attempts: int = 200) -> Workload:
    """Inject ``count`` design errors drawn from ``distribution``.

    Error types follow ``distribution`` (default: the Campenhout-style
    :data:`~repro.faults.abadir.DEFAULT_ERROR_DISTRIBUTION`); locations
    are uniform over legal sites.  Observability is *not* checked here —
    use :func:`observable_design_error_workload` which retries until the
    faulty implementation actually fails some vector, as the paper
    requires ("all errors considered are observable", §4.2).
    """
    distribution = distribution or DEFAULT_ERROR_DISTRIBUTION
    rng = random.Random(seed)
    impl = netlist.copy(f"{netlist.name}_e{count}_{seed}")
    truth: list[InjectionRecord] = []
    attempts = 0
    while len(truth) < count and attempts < max_attempts:
        attempts += 1
        etype = _draw_error_type(rng, distribution)
        record = _inject_one_error(impl, rng, etype)
        if record is not None:
            truth.append(record)
    if len(truth) < count:
        raise InjectionError(
            f"could not place {count} errors in {netlist.name!r}")
    return Workload(netlist, impl, truth)


def observable_design_error_workload(netlist: Netlist, count: int,
                                     patterns, seed: int = 0,
                                     distribution=None,
                                     max_retries: int = 25) -> Workload:
    """Like :func:`inject_design_errors` but retries (bumping the seed)
    until the implementation fails at least one vector of ``patterns``."""
    from ..sim.logicsim import output_rows, simulate

    spec_out = output_rows(netlist, simulate(netlist, patterns))
    for retry in range(max_retries):
        workload = inject_design_errors(netlist, count,
                                        seed + 1000 * retry, distribution)
        impl_out = output_rows(workload.impl,
                               simulate(workload.impl, patterns))
        if not (spec_out == impl_out).all():
            return workload
    raise InjectionError(
        f"no observable {count}-error workload found for "
        f"{netlist.name!r} after {max_retries} retries")
