"""Structural stuck-at fault equivalence collapsing.

Classic rules: an input stuck at the controlling value of an AND/OR gate
is equivalent to the output stuck at the (possibly inverted) controlled
value; NOT/BUF collapse both polarities across the gate.  Collapsing
shrinks the ATPG fault list and lets the harness report *equivalent fault
classes* the way the paper's Table 1 counts tuples ("equivalent fault
classes [12]").
"""

from __future__ import annotations

from ..circuit.gatetypes import GateType
from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..sim.faultsim import SimFault


class _UnionFind:
    def __init__(self):
        self.parent: dict = {}

    def find(self, x):
        parent = self.parent
        root = parent.setdefault(x, x)
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def equivalence_classes(netlist: Netlist,
                        table: LineTable | None = None) -> dict:
    """Map each (line, value) fault to its equivalence-class root.

    Keys and roots are ``(line_index, stuck_value)`` tuples; the root is
    the smallest member of the class.
    """
    table = table or LineTable(netlist)
    uf = _UnionFind()

    def in_line(gate_index: int, pin: int) -> int:
        branch = table.branch(gate_index, pin)
        if branch is not None:
            return branch.index
        src = netlist.gates[gate_index].fanin[pin]
        return table.stem(src).index

    live = netlist.live_set() | set(netlist.inputs)
    for gate in netlist.gates:
        if gate.index not in live:
            continue
        out_line = table.stem(gate.index).index
        gtype = gate.gtype
        if gtype in (GateType.BUF, GateType.NOT):
            inv = gtype is GateType.NOT
            src = in_line(gate.index, 0)
            uf.union((src, 0), (out_line, 1 if inv else 0))
            uf.union((src, 1), (out_line, 0 if inv else 1))
        elif gtype in (GateType.AND, GateType.NAND):
            out_val = 1 if gtype is GateType.NAND else 0
            for pin in range(len(gate.fanin)):
                uf.union((in_line(gate.index, pin), 0),
                         (out_line, out_val))
        elif gtype in (GateType.OR, GateType.NOR):
            out_val = 0 if gtype is GateType.NOR else 1
            for pin in range(len(gate.fanin)):
                uf.union((in_line(gate.index, pin), 1),
                         (out_line, out_val))
        # XOR/XNOR/sources: no structural collapsing.
    # Ensure every fault appears, even singletons.
    mapping = {}
    for line in table:
        for value in (0, 1):
            mapping[(line.index, value)] = uf.find((line.index, value))
    return mapping


def collapsed_faults(netlist: Netlist,
                     table: LineTable | None = None) -> list[SimFault]:
    """One representative :class:`SimFault` per equivalence class."""
    table = table or LineTable(netlist)
    mapping = equivalence_classes(netlist, table)
    roots = sorted(set(mapping.values()))
    return [SimFault(line, value) for (line, value) in roots]


def collapse_ratio(netlist: Netlist) -> float:
    """|collapsed| / |all| — a quick quality metric for reports."""
    table = LineTable(netlist)
    total = 2 * len(table)
    return len(collapsed_faults(netlist, table)) / total if total else 1.0
