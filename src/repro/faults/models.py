"""Fault and correction models.

The paper deliberately blurs faults and design errors: "we will not
distinguish between faults and design errors or between fault models and
corrections" (§1).  We follow that: a :class:`Correction` is *any*
modification attached to a line — a stuck-at fault model in diagnosis
mode, or an Abadir-style design-error fix in DEDC mode.

A correction references a :class:`~repro.circuit.lines.Line` of a specific
netlist.  :func:`apply_correction` performs the structural edit;
:func:`corrected_line_words` predicts the corrected line's packed values
from an existing simulation *without* mutating anything (this is what the
screening heuristics evaluate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..circuit.gatetypes import GateType, eval_words
from ..circuit.lines import Line, LineTable
from ..circuit.netlist import Netlist
from ..errors import InjectionError


class CorrectionKind(enum.Enum):
    """Every modification the engine may attach to a line."""

    STUCK_AT_0 = "sa0"
    STUCK_AT_1 = "sa1"
    GATE_REPLACE = "gate_replace"          # driver gets a new function
    INSERT_INVERTER = "insert_inverter"    # fixes a missing-inverter error
    REMOVE_INVERTER = "remove_inverter"    # fixes an extra-inverter error
    REMOVE_INPUT_WIRE = "remove_wire"      # fixes an extra-input-wire error
    ADD_INPUT_WIRE = "add_wire"            # fixes a missing-input-wire error
    REPLACE_INPUT_WIRE = "replace_wire"    # fixes a wrong-input-wire error
    BYPASS_GATE = "bypass_gate"            # fixes an extra-gate error
    INSERT_GATE = "insert_gate"            # fixes a missing-gate error


#: Kinds legal in pure stuck-at fault diagnosis mode.
STUCK_AT_KINDS = (CorrectionKind.STUCK_AT_0, CorrectionKind.STUCK_AT_1)


@dataclass(frozen=True)
class Correction:
    """One fault model / design-error fix attached to a line.

    Attributes:
        line: line index in the owning netlist's :class:`LineTable`.
        kind: what to do there.
        new_type: replacement function (``GATE_REPLACE`` only).
        pin: driver fanin pin (wire corrections on stems).
        other_signal: new wire source gate index (add/replace wire).
    """

    line: int
    kind: CorrectionKind
    new_type: GateType | None = None
    pin: int | None = None
    other_signal: int | None = None

    def describe(self, netlist: Netlist, table: LineTable) -> str:
        """Stable human-readable signature, e.g. ``sa1@n12`` or
        ``gate_replace[NOR]@g7``."""
        site = table.describe(self.line)
        extra = ""
        if self.new_type is not None:
            extra = f"[{self.new_type.name}]"
        if self.pin is not None:
            extra += f"[pin{self.pin}]"
        if self.other_signal is not None:
            extra += f"[<-{netlist.gates[self.other_signal].name}]"
        return f"{self.kind.value}{extra}@{site}"


@dataclass(frozen=True)
class StuckAtFault:
    """A stuck-at fault site, independent of any line table."""

    site: str       # line description string ("n12" or "n12->g7.1")
    value: int      # 0 or 1

    def __str__(self) -> str:
        return f"{self.site}/sa{self.value}"


def stuck_at_correction(table: LineTable, line_index: int,
                        value: int) -> Correction:
    kind = CorrectionKind.STUCK_AT_1 if value else CorrectionKind.STUCK_AT_0
    return Correction(line_index, kind)


# ----------------------------------------------------------------------
# structural application
# ----------------------------------------------------------------------
def apply_correction(netlist: Netlist, table: LineTable,
                     corr: Correction) -> None:
    """Mutate ``netlist`` according to ``corr``.

    The caller owns the copy discipline: the decision tree always applies
    corrections to a private netlist copy.  After this call the netlist's
    line table is stale; build a fresh :class:`LineTable` if needed.
    """
    line = table[corr.line]
    kind = corr.kind
    if kind is CorrectionKind.STUCK_AT_0 or kind is CorrectionKind.STUCK_AT_1:
        value = 1 if kind is CorrectionKind.STUCK_AT_1 else 0
        if line.is_stem:
            netlist.tie_stem_to_constant(line.driver, value)
        else:
            netlist.tie_branch_to_constant(line.sink, line.pin, value)
        return
    if kind is CorrectionKind.INSERT_INVERTER:
        if line.is_stem:
            netlist.insert_gate_on_stem(line.driver, GateType.NOT)
        else:
            netlist.insert_gate_on_branch(line.sink, line.pin, GateType.NOT)
        return
    if kind is CorrectionKind.REMOVE_INVERTER:
        driver = netlist.gates[line.driver]
        if driver.gtype is not GateType.NOT:
            raise InjectionError(
                f"cannot remove inverter: {driver.name!r} is "
                f"{driver.gtype.name}")
        if line.is_stem:
            netlist.bypass_gate(line.driver)
        else:
            netlist.replace_fanin_pin(line.sink, line.pin,
                                      driver.fanin[0])
        return
    # Remaining kinds modify the gate driving the (stem) line.
    if not line.is_stem:
        raise InjectionError(
            f"{kind.value} applies to stem lines, got branch "
            f"{line.describe(netlist)}")
    driver = line.driver
    if kind is CorrectionKind.GATE_REPLACE:
        if corr.new_type is None:
            raise InjectionError("GATE_REPLACE needs new_type")
        netlist.set_gate_type(driver, corr.new_type)
        return
    if kind is CorrectionKind.REMOVE_INPUT_WIRE:
        if corr.pin is None:
            raise InjectionError("REMOVE_INPUT_WIRE needs pin")
        netlist.remove_fanin_pin(driver, corr.pin)
        return
    if kind is CorrectionKind.ADD_INPUT_WIRE:
        if corr.other_signal is None:
            raise InjectionError("ADD_INPUT_WIRE needs other_signal")
        netlist.add_fanin_pin(driver, corr.other_signal)
        if corr.new_type is not None:
            # A unary gate that lost a wire also lost its multi-input
            # identity (OR degraded to BUF, NOR to NOT...); the repair
            # states which identity to restore.
            netlist.set_gate_type(driver, corr.new_type)
        return
    if kind is CorrectionKind.REPLACE_INPUT_WIRE:
        if corr.pin is None or corr.other_signal is None:
            raise InjectionError("REPLACE_INPUT_WIRE needs pin and "
                                 "other_signal")
        netlist.replace_fanin_pin(driver, corr.pin, corr.other_signal)
        return
    if kind is CorrectionKind.BYPASS_GATE:
        if corr.pin is None:
            raise InjectionError("BYPASS_GATE needs pin (survivor fanin)")
        gate = netlist.gates[driver]
        if not 0 <= corr.pin < len(gate.fanin):
            raise InjectionError(f"gate {gate.name!r}: no pin {corr.pin}")
        netlist.bypass_gate(driver, survivor_pin=corr.pin)
        return
    if kind is CorrectionKind.INSERT_GATE:
        if corr.new_type is None or corr.other_signal is None:
            raise InjectionError("INSERT_GATE needs new_type and "
                                 "other_signal")
        netlist.insert_binary_on_stem(driver, corr.new_type,
                                      corr.other_signal)
        return
    raise InjectionError(f"unhandled correction kind {kind}")


# ----------------------------------------------------------------------
# non-mutating prediction of the corrected line value
# ----------------------------------------------------------------------
def corrected_line_words(netlist: Netlist, table: LineTable,
                         corr: Correction,
                         values: np.ndarray) -> np.ndarray:
    """Packed values the corrected line would carry, from the baseline
    simulation matrix ``values`` (single-gate re-evaluation, no mutation).

    This is the "single simulation step on the gate driving l and the
    fan-ins to that gate" the paper uses for the heuristic-2 screen.
    """
    line = table[corr.line]
    kind = corr.kind
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    current = values[line.driver]
    if kind is CorrectionKind.STUCK_AT_0:
        return np.zeros_like(current)
    if kind is CorrectionKind.STUCK_AT_1:
        return np.full_like(current, ones)
    if kind is CorrectionKind.INSERT_INVERTER:
        return current ^ ones
    driver = netlist.gates[line.driver]
    if kind is CorrectionKind.REMOVE_INVERTER:
        if driver.gtype is not GateType.NOT:
            raise InjectionError(
                f"cannot remove inverter at {driver.name!r}")
        return values[driver.fanin[0]].copy()
    if kind is CorrectionKind.GATE_REPLACE:
        return eval_words(corr.new_type,
                          [values[src] for src in driver.fanin])
    if kind is CorrectionKind.REMOVE_INPUT_WIRE:
        remaining = [values[src] for p, src in enumerate(driver.fanin)
                     if p != corr.pin]
        gtype = driver.gtype
        if len(remaining) == 1:
            gtype = {GateType.AND: GateType.BUF, GateType.OR: GateType.BUF,
                     GateType.XOR: GateType.BUF,
                     GateType.NAND: GateType.NOT,
                     GateType.NOR: GateType.NOT,
                     GateType.XNOR: GateType.NOT}.get(gtype, gtype)
        return eval_words(gtype, remaining)
    if kind is CorrectionKind.ADD_INPUT_WIRE:
        gtype = corr.new_type or driver.gtype
        if gtype is GateType.BUF:
            gtype = GateType.AND
        elif gtype is GateType.NOT:
            gtype = GateType.NAND
        ins = [values[src] for src in driver.fanin]
        ins.append(values[corr.other_signal])
        return eval_words(gtype, ins)
    if kind is CorrectionKind.REPLACE_INPUT_WIRE:
        ins = [values[src] if p != corr.pin else values[corr.other_signal]
               for p, src in enumerate(driver.fanin)]
        return eval_words(driver.gtype, ins)
    if kind is CorrectionKind.BYPASS_GATE:
        if corr.pin is None or not 0 <= corr.pin < len(driver.fanin):
            raise InjectionError("BYPASS_GATE needs a valid pin")
        return values[driver.fanin[corr.pin]].copy()
    if kind is CorrectionKind.INSERT_GATE:
        if corr.new_type is None or corr.other_signal is None:
            raise InjectionError("INSERT_GATE needs new_type and "
                                 "other_signal")
        return eval_words(corr.new_type,
                          [values[line.driver],
                           values[corr.other_signal]])
    raise InjectionError(f"unhandled correction kind {kind}")


def line_words(table: LineTable, line_index: int,
               values: np.ndarray) -> np.ndarray:
    """Current packed values carried by a line (branch == its stem)."""
    return values[table[line_index].driver]


def propagation_override(table: LineTable, corr: Correction,
                         new_words: np.ndarray) -> tuple[dict, dict]:
    """Translate a predicted correction value into simulator overrides.

    Returns ``(stem_overrides, pin_overrides)`` for
    :func:`repro.sim.logicsim.propagate`.  A stem correction overrides the
    whole signal; a branch correction overrides only the sink pin.
    """
    line = table[corr.line]
    if line.is_stem:
        return {line.driver: new_words}, {}
    return {}, {(line.sink, line.pin): new_words}


def remove_inverter_predicted_ok(netlist: Netlist, line: Line) -> bool:
    """True when a REMOVE_INVERTER correction is structurally possible."""
    return netlist.gates[line.driver].gtype is GateType.NOT
