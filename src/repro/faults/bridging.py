"""Bridging fault model (the paper's §4.1 extension hook).

"In the future, we plan to apply this approach to other types of
physical faults.  The advantage of the algorithm lies in the fact that
it can be adapted to other faults by adopting a suitable fault model in
the correction stage."  This module does exactly that for two-net
*bridging faults* — the defect class of the paper's reference [12]
(Venkataraman & Fuchs' deductive bridging-fault diagnosis):

* ``AND``-bridge: both shorted nets read ``a AND b`` (wired-AND),
* ``OR``-bridge: both read ``a OR b`` (wired-OR).

:func:`inject_bridging_fault` creates workloads;
:func:`scored_bridge_partners` plugs the model into the correction
stage via the bit-parallel pair scorer; :class:`BridgingDiagnoser` is a
small exact-search front end mirroring the stuck-at protocol.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field

import numpy as np

from ..circuit.gatetypes import GateType
from ..circuit.netlist import Netlist
from ..errors import InjectionError
from ..sim.compare import masked
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, popcount
from .inject import InjectionRecord, Workload


class BridgeKind(enum.Enum):
    AND = "and"   # wired-AND: dominant 0
    OR = "or"     # wired-OR: dominant 1


@dataclass(frozen=True)
class BridgingFault:
    """A two-net short, in stable (name-based) coordinates."""

    net_a: str
    net_b: str
    kind: BridgeKind

    def __str__(self) -> str:
        return f"bridge_{self.kind.value}({self.net_a},{self.net_b})"


def apply_bridge(netlist: Netlist, sig_a: int, sig_b: int,
                 kind: BridgeKind) -> int:
    """Mutate ``netlist``: short signals ``sig_a``/``sig_b``.

    A new gate computes the wired function of the two original drivers;
    every consumer of either net (and PO slots) reads it.  Returns the
    new gate's index.
    """
    if sig_a == sig_b:
        raise InjectionError("cannot bridge a net with itself")
    if sig_b in netlist.fanout_cone(sig_a) or \
            sig_a in netlist.fanout_cone(sig_b):
        raise InjectionError(
            "bridged nets must not be in each other's fanout cone "
            "(feedback bridging faults are out of scope)")
    gtype = GateType.AND if kind is BridgeKind.AND else GateType.OR
    name = netlist.fresh_name(
        f"br_{netlist.gates[sig_a].name}_{netlist.gates[sig_b].name}")
    bridge = netlist.add_gate(name, gtype, [sig_a, sig_b])
    for gate in netlist.gates:
        if gate.index == bridge:
            continue
        gate.fanin = [bridge if src in (sig_a, sig_b) else src
                      for src in gate.fanin]
    netlist.outputs = [bridge if out in (sig_a, sig_b) else out
                       for out in netlist.outputs]
    netlist._dirty()
    return bridge


def inject_bridging_fault(netlist: Netlist, seed: int = 0,
                          max_attempts: int = 200) -> Workload:
    """Workload with one random (non-feedback) bridging fault."""
    rng = random.Random(seed)
    live = sorted(netlist.live_set() | set(netlist.inputs))
    for _ in range(max_attempts):
        sig_a, sig_b = rng.sample(live, 2)
        kind = rng.choice(list(BridgeKind))
        impl = netlist.copy(f"{netlist.name}_bridge_{seed}")
        try:
            apply_bridge(impl, sig_a, sig_b, kind)
        except InjectionError:
            continue
        record = InjectionRecord(
            f"bridge_{kind.value}",
            netlist.gates[sig_a].name,
            f"<->{netlist.gates[sig_b].name}")
        return Workload(netlist, impl, [record])
    raise InjectionError("no legal bridging site found")


# ----------------------------------------------------------------------
# the correction stage: scoring candidate bridges bit-parallel
# ----------------------------------------------------------------------
if hasattr(np, "bitwise_count"):
    def _row_popcounts(matrix: np.ndarray) -> np.ndarray:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
else:  # pragma: no cover
    def _row_popcounts(matrix: np.ndarray) -> np.ndarray:
        return np.array([popcount(row) for row in matrix],
                        dtype=np.int64)


def scored_bridge_partners(netlist: Netlist, values: np.ndarray,
                           anchor: int, err_mask: np.ndarray,
                           corr_mask: np.ndarray, kind: BridgeKind,
                           limit: int = 8) -> list[int]:
    """Best partner signals to bridge with ``anchor``.

    Same idea as the wire-correction scorer: for every candidate
    partner, how many failing bits would the bridged value flip on the
    *anchor* net, minus passing bits corrupted.
    """
    anchor_vals = values[anchor]
    if kind is BridgeKind.AND:
        new = values & anchor_vals
    else:
        new = values | anchor_vals
    delta = new ^ anchor_vals
    err_flips = _row_popcounts(delta & err_mask)
    corr_flips = _row_popcounts(delta & corr_mask)
    # Rank by failing-bit coverage first and excitation on passing
    # vectors second: unlike wire corrections, a genuine bridge is
    # routinely excited on passing vectors without corrupting them, so
    # the corr count must only break ties, never dominate.
    max_corr = int(corr_flips.max()) + 1
    score = err_flips.astype(np.int64) * max_corr - corr_flips
    legal = np.ones(len(netlist.gates), dtype=bool)
    legal[anchor] = False
    for sig in netlist.fanout_cone(anchor):
        legal[sig] = False
    live = netlist.live_set() | set(netlist.inputs)
    for gate in netlist.gates:
        if gate.index not in live:
            legal[gate.index] = False
        elif anchor in netlist.fanout_cone(gate.index):
            legal[gate.index] = False
    legal &= err_flips > 0
    if not legal.any():
        return []
    sentinel = score.min() - 1
    score = np.where(legal, score, sentinel)
    order = np.argsort(score, kind="stable")[::-1]
    return [int(g) for g in order[:limit] if legal[g]]


@dataclass
class BridgingResult:
    faults: list = field(default_factory=list)   # verified BridgingFaults
    candidates_scored: int = 0
    total_time: float = 0.0

    @property
    def found(self) -> bool:
        return bool(self.faults)


class BridgingDiagnoser:
    """Find single bridging faults explaining a faulty device.

    Fault-modeling direction, like the stuck-at protocol: candidate
    bridges are applied to the *good* netlist until it reproduces the
    device's responses on all of V.  Anchors come from path trace
    (the guarantee holds: a bridge changes at least one of the two nets,
    whose lines path trace marks), partners from the pair scorer.
    """

    def __init__(self, device: Netlist, good: Netlist,
                 patterns: PatternSet, partner_limit: int = 10,
                 time_budget: float | None = 30.0):
        self.device = device
        self.good = good
        self.patterns = patterns
        self.partner_limit = partner_limit
        self.time_budget = time_budget
        self.device_out = output_rows(device,
                                      simulate(device, patterns))
        self.values = simulate(good, patterns)
        good_out = output_rows(good, self.values)
        diff = masked(good_out ^ self.device_out, patterns.nbits)
        self.err_mask = np.bitwise_or.reduce(diff, axis=0)
        full = np.full_like(self.err_mask,
                            np.uint64(0xFFFFFFFFFFFFFFFF))
        from ..sim.packing import tail_mask
        full[-1] = tail_mask(patterns.nbits)
        self.corr_mask = self.err_mask ^ full

    def _anchors(self) -> list[int]:
        from ..diagnose.bitlists import DiagnosisState
        from ..diagnose.pathtrace import marked_lines, path_trace_counts

        state = DiagnosisState(self.good, self.patterns,
                               self.device_out)
        counts = path_trace_counts(state)
        table = state.table
        drivers = []
        seen = set()
        for line in marked_lines(counts):
            driver = table[line].driver
            if driver not in seen:
                seen.add(driver)
                drivers.append(driver)
        return drivers

    def run(self) -> BridgingResult:
        result = BridgingResult()
        t0 = time.perf_counter()
        deadline = t0 + self.time_budget if self.time_budget else None
        if popcount(self.err_mask) == 0:
            result.total_time = time.perf_counter() - t0
            return result
        seen_pairs: set = set()
        for anchor in self._anchors():
            if deadline and time.perf_counter() > deadline:
                break
            for kind in BridgeKind:
                partners = scored_bridge_partners(
                    self.good, self.values, anchor, self.err_mask,
                    self.corr_mask, kind, self.partner_limit)
                for partner in partners:
                    key = (kind, frozenset((anchor, partner)))
                    if key in seen_pairs:
                        continue
                    seen_pairs.add(key)
                    result.candidates_scored += 1
                    candidate = self.good.copy()
                    try:
                        apply_bridge(candidate, anchor, partner, kind)
                    except InjectionError:
                        continue
                    out = output_rows(candidate,
                                      simulate(candidate,
                                               self.patterns))
                    from ..sim.compare import equivalent
                    if equivalent(out, self.device_out,
                                  self.patterns.nbits):
                        result.faults.append(BridgingFault(
                            self.good.gates[anchor].name,
                            self.good.gates[partner].name, kind))
        result.total_time = time.perf_counter() - t0
        return result
