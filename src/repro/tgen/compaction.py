"""Reverse-order test-set compaction.

Classic static compaction: fault-simulate the vector set in reverse order
of generation and keep only vectors that detect a fault not already
covered by a kept vector.  This stands in for the Hamzaoglu–Patel compact
deterministic sets the paper cites (DESIGN.md §4 substitution 2).
"""

from __future__ import annotations

from ..circuit.netlist import Netlist
from ..sim.faultsim import FaultSimulator, SimFault
from ..sim.packing import PatternSet, pack_bits, unpack_bits


def reverse_order_compact(netlist: Netlist, patterns: PatternSet,
                          faults: list[SimFault]) -> PatternSet:
    """Return the subset of ``patterns`` preserving detection of
    every fault in ``faults`` that the full set detects."""
    fsim = FaultSimulator(netlist, patterns)
    per_fault_masks = {f.key(): fsim.detection_mask(f) for f in faults}
    kept: list[int] = []
    covered: set = set()
    for v in reversed(range(patterns.nbits)):
        word, bit = divmod(v, 64)
        newly = [key for key, mask in per_fault_masks.items()
                 if key not in covered
                 and (int(mask[word]) >> bit) & 1]
        if newly:
            kept.append(v)
            covered.update(newly)
    kept.sort()
    bits = unpack_bits(patterns.words, patterns.nbits)
    sel = bits[:, kept] if kept else bits[:, :0]
    return PatternSet(pack_bits(sel), len(kept))
