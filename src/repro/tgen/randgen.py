"""Random test-vector generation.

The paper's vector recipe is "[deterministic] vectors from [3] along with
6,000-10,000 random vectors" (§3).  :func:`random_patterns` supplies the
random component; :func:`coverage_driven_patterns` grows the set in
batches until stuck-at coverage saturates, which is how the harness picks
a sensible size for small circuits without hard-coding 10,000.
"""

from __future__ import annotations

import numpy as np

from ..circuit.netlist import Netlist
from ..sim.faultsim import FaultSimulator, SimFault
from ..sim.packing import PatternSet, pack_bits, popcount


def random_patterns(netlist: Netlist, count: int, seed: int = 0,
                    one_probability: float = 0.5) -> PatternSet:
    """Uniform (or biased) random patterns sized to the netlist's PIs."""
    return PatternSet.random(netlist.num_inputs, count, seed,
                             one_probability)


def coverage_driven_patterns(netlist: Netlist, faults: list[SimFault],
                             seed: int = 0, batch: int = 256,
                             max_vectors: int = 8192,
                             stale_batches: int = 3) -> PatternSet:
    """Grow a random pattern set until fault coverage stops improving.

    Stops after ``stale_batches`` consecutive batches add no new
    detections, or at ``max_vectors``.
    """
    rng = np.random.default_rng(seed)
    detected: set = set()
    collected: list[np.ndarray] = []
    stale = 0
    total = 0
    while total < max_vectors and stale < stale_batches:
        bits = (rng.random((netlist.num_inputs, batch)) < 0.5
                ).astype(np.uint8)
        pats = PatternSet(pack_bits(bits), batch)
        fsim = FaultSimulator(netlist, pats)
        new = 0
        for fault in faults:
            if fault.key() in detected:
                continue
            if popcount(fsim.detection_mask(fault)) > 0:
                detected.add(fault.key())
                new += 1
        collected.append(bits)
        total += batch
        stale = stale + 1 if new == 0 else 0
    allbits = np.concatenate(collected, axis=1) if collected else \
        np.zeros((netlist.num_inputs, 0), dtype=np.uint8)
    return PatternSet(pack_bits(allbits), allbits.shape[1])


def patterns_from_vectors(netlist: Netlist, vectors) -> PatternSet:
    """Pack explicit 0/1 vectors (each of PI length) into a PatternSet."""
    mat = np.asarray(list(vectors), dtype=np.uint8)
    if mat.size == 0:
        mat = mat.reshape(0, netlist.num_inputs)
    return PatternSet(pack_bits(mat.T), mat.shape[0])
