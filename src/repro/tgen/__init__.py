"""Test vector generation: random, deterministic (PODEM) and compaction."""

from .randgen import (coverage_driven_patterns, patterns_from_vectors,
                      random_patterns)
from .podem import Podem, PodemStats, eval3, fill_assignment
from .compaction import reverse_order_compact
from .flows import (TgenStats, diagnosis_vectors, deterministic_patterns,
                    deterministic_patterns_with_stats)
from .distinguish import (distinguishing_vector,
                          distinguishing_vector_status,
                          random_distinguishing_vector,
                          refine_diagnosis,
                          sat_distinguishing_vector)

__all__ = [
    "coverage_driven_patterns", "patterns_from_vectors", "random_patterns",
    "Podem", "PodemStats", "eval3", "fill_assignment",
    "reverse_order_compact",
    "TgenStats", "diagnosis_vectors", "deterministic_patterns",
    "deterministic_patterns_with_stats",
    "distinguishing_vector", "distinguishing_vector_status",
    "random_distinguishing_vector", "refine_diagnosis",
    "sat_distinguishing_vector",
]
