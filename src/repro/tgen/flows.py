"""End-to-end vector preparation flows.

:func:`diagnosis_vectors` packages the paper's recipe: a compacted
deterministic test set (PODEM over the collapsed fault list, reverse-order
compacted) concatenated with a block of random vectors (§3: "we simulate
vectors from [3] along with 6,000-10,000 random vectors").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..faults.collapse import collapsed_faults
from ..sim.faultsim import FaultSimulator
from ..sim.packing import PatternSet
from .compaction import reverse_order_compact
from .podem import Podem, PodemStats, fill_assignment
from .randgen import patterns_from_vectors, random_patterns


@dataclass
class TgenStats:
    """Aggregated :class:`~repro.tgen.podem.PodemStats` over one flow.

    ``targeted`` counts the faults PODEM actually searched for (fault
    dropping removes the rest); ``untestable`` every fault proven
    untestable, of which ``static_untestable`` were rejected by the
    static pre-check with zero search; ``aborted`` the faults
    abandoned at the backtrack limit.
    """

    faults: int = 0
    targeted: int = 0
    generated: int = 0
    untestable: int = 0
    static_untestable: int = 0
    aborted: int = 0
    backtracks: int = 0
    implications: int = 0
    vectors: int = 0
    guided: bool = field(default=False)

    def record(self, stats: PodemStats, found: bool) -> None:
        self.targeted += 1
        self.backtracks += stats.backtracks
        self.implications += stats.implications
        if found:
            self.generated += 1
        elif stats.static_untestable:
            self.static_untestable += 1
            self.untestable += 1
        elif stats.aborted:
            self.aborted += 1
        else:
            self.untestable += 1

    def to_dict(self) -> dict:
        return {
            "faults": self.faults, "targeted": self.targeted,
            "generated": self.generated, "untestable": self.untestable,
            "static_untestable": self.static_untestable,
            "aborted": self.aborted, "backtracks": self.backtracks,
            "implications": self.implications, "vectors": self.vectors,
            "guided": self.guided,
        }


def deterministic_patterns_with_stats(
        netlist: Netlist, seed: int = 0, backtrack_limit: int = 120,
        compact: bool = True,
        guide: bool = False) -> tuple[PatternSet, TgenStats]:
    """PODEM test set plus the aggregated search statistics.

    Faults already detected by earlier vectors are dropped by fault
    simulation before being targeted (standard fault-dropping flow).
    ``guide=True`` turns on static testability guidance: statically
    untestable faults are skipped with zero search and the remaining
    searches follow SCOAP costs (see :class:`~repro.tgen.podem.Podem`).
    """
    table = LineTable(netlist)
    faults = collapsed_faults(netlist, table)
    podem = Podem(netlist, table, backtrack_limit=backtrack_limit,
                  guide=guide or None)
    rng = random.Random(seed)
    agg = TgenStats(faults=len(faults), guided=bool(guide))
    vectors: list[list[int]] = []
    undetected = list(faults)
    while undetected:
        fault = undetected.pop()
        assignment, stats = podem.generate(fault)
        agg.record(stats, assignment is not None)
        if assignment is None:
            continue  # untestable or aborted
        vectors.append(fill_assignment(netlist, assignment, rng))
        # Drop everything the new vector detects.
        pats = patterns_from_vectors(netlist, vectors[-1:])
        fsim = FaultSimulator(netlist, pats, table)
        undetected = [f for f in undetected if not fsim.detects(f)]
    if not vectors:
        agg.vectors = 0
        return patterns_from_vectors(netlist, []), agg
    pats = patterns_from_vectors(netlist, vectors)
    if compact and pats.nbits > 1:
        pats = reverse_order_compact(netlist, pats, faults)
    agg.vectors = pats.nbits
    return pats, agg


def deterministic_patterns(netlist: Netlist, seed: int = 0,
                           backtrack_limit: int = 120,
                           compact: bool = True,
                           guide: bool = False) -> PatternSet:
    """PODEM test set for the collapsed stuck-at fault list.

    Thin wrapper over :func:`deterministic_patterns_with_stats` for
    callers that only want the vectors.
    """
    pats, _stats = deterministic_patterns_with_stats(
        netlist, seed=seed, backtrack_limit=backtrack_limit,
        compact=compact, guide=guide)
    return pats


def diagnosis_vectors(netlist: Netlist, num_random: int = 2048,
                      seed: int = 0,
                      deterministic: bool = True) -> PatternSet:
    """The paper's vector mix: deterministic set + random block.

    ``num_random`` defaults lower than the paper's 6,000-10,000 because
    the bit-parallel Python simulator pays per word; the harnesses expose
    the knob.
    """
    rand = random_patterns(netlist, num_random, seed)
    if not deterministic:
        return rand
    det = deterministic_patterns(netlist, seed)
    if det.nbits == 0:
        return rand
    return det.concat(rand)
