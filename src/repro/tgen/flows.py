"""End-to-end vector preparation flows.

:func:`diagnosis_vectors` packages the paper's recipe: a compacted
deterministic test set (PODEM over the collapsed fault list, reverse-order
compacted) concatenated with a block of random vectors (§3: "we simulate
vectors from [3] along with 6,000-10,000 random vectors").
"""

from __future__ import annotations

import random

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..faults.collapse import collapsed_faults
from ..sim.faultsim import FaultSimulator
from ..sim.packing import PatternSet
from .compaction import reverse_order_compact
from .podem import Podem, fill_assignment
from .randgen import patterns_from_vectors, random_patterns


def deterministic_patterns(netlist: Netlist, seed: int = 0,
                           backtrack_limit: int = 120,
                           compact: bool = True) -> PatternSet:
    """PODEM test set for the collapsed stuck-at fault list.

    Faults already detected by earlier vectors are dropped by fault
    simulation before being targeted (standard fault-dropping flow).
    """
    table = LineTable(netlist)
    faults = collapsed_faults(netlist, table)
    podem = Podem(netlist, table, backtrack_limit=backtrack_limit)
    rng = random.Random(seed)
    vectors: list[list[int]] = []
    undetected = list(faults)
    while undetected:
        fault = undetected.pop()
        assignment, stats = podem.generate(fault)
        if assignment is None:
            continue  # untestable or aborted
        vectors.append(fill_assignment(netlist, assignment, rng))
        # Drop everything the new vector detects.
        pats = patterns_from_vectors(netlist, vectors[-1:])
        fsim = FaultSimulator(netlist, pats, table)
        undetected = [f for f in undetected if not fsim.detects(f)]
    if not vectors:
        return patterns_from_vectors(netlist, [])
    pats = patterns_from_vectors(netlist, vectors)
    if compact and pats.nbits > 1:
        pats = reverse_order_compact(netlist, pats, faults)
    return pats


def diagnosis_vectors(netlist: Netlist, num_random: int = 2048,
                      seed: int = 0,
                      deterministic: bool = True) -> PatternSet:
    """The paper's vector mix: deterministic set + random block.

    ``num_random`` defaults lower than the paper's 6,000-10,000 because
    the bit-parallel Python simulator pays per word; the harnesses expose
    the knob.
    """
    rand = random_patterns(netlist, num_random, seed)
    if not deterministic:
        return rand
    det = deterministic_patterns(netlist, seed)
    if det.nbits == 0:
        return rand
    return det.concat(rand)
