"""PODEM automatic test pattern generation.

The paper feeds the diagnosis engine "vectors from [3] along with
6,000–10,000 random vectors" — [3] being a compact deterministic test
set.  We reproduce that recipe with our own deterministic generator: a
classic PODEM (Goel) implementation over the 5-valued D-calculus, one
target fault at a time, plus reverse-order compaction
(:mod:`repro.tgen.compaction`).

The implementation is scalar (one vector at a time) and intentionally
simple; it only needs to top up the random set with hard-fault vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.gatetypes import GateType, controlling_value
from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..errors import SimulationError
from ..sim.faultsim import SimFault

X = 2  # unknown in the 3-valued good/faulty component lattice

_AND_T = {(0, 0): 0, (0, 1): 0, (0, X): 0, (1, 0): 0, (X, 0): 0,
          (1, 1): 1, (1, X): X, (X, 1): X, (X, X): X}
_OR_T = {(1, 1): 1, (1, 0): 1, (1, X): 1, (0, 1): 1, (X, 1): 1,
         (0, 0): 0, (0, X): X, (X, 0): X, (X, X): X}


def _not3(v: int) -> int:
    return X if v == X else 1 - v


def _and3(vals) -> int:
    acc = 1
    for v in vals:
        acc = _AND_T[(acc, v)]
    return acc


def _or3(vals) -> int:
    acc = 0
    for v in vals:
        acc = _OR_T[(acc, v)]
    return acc


def _xor3(vals) -> int:
    acc = 0
    for v in vals:
        if v == X:
            return X
        acc ^= v
    return acc


def eval3(gtype: GateType, vals) -> int:
    """3-valued gate evaluation (0/1/X)."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.BUF, GateType.INPUT, GateType.DFF):
        return vals[0]
    if gtype is GateType.NOT:
        return _not3(vals[0])
    if gtype is GateType.AND:
        return _and3(vals)
    if gtype is GateType.NAND:
        return _not3(_and3(vals))
    if gtype is GateType.OR:
        return _or3(vals)
    if gtype is GateType.NOR:
        return _not3(_or3(vals))
    if gtype is GateType.XOR:
        return _xor3(vals)
    if gtype is GateType.XNOR:
        return _not3(_xor3(vals))
    raise SimulationError(f"cannot 3-value evaluate {gtype}")


@dataclass
class PodemStats:
    """Counters for one :meth:`Podem.generate` call."""

    backtracks: int = 0
    implications: int = 0
    aborted: bool = False
    #: True when the fault was rejected by the static pre-check (zero
    #: search: no implication, no backtrack).
    static_untestable: bool = False


class Podem:
    """PODEM test generator for stuck-at faults on one netlist.

    The netlist must be combinational (full-scan models qualify).

    ``guide`` opts into static-analysis guidance: pass a
    :class:`~repro.analyze.dataflow.NetlistFacts` bundle (or ``True``
    to fetch the netlist's own cached bundle).  Guidance adds

    * SCOAP-cost-driven choices — the D-frontier is tried easiest-to-
      observe first, objectives pick the cheapest input to justify,
      and backtrace descends through the cost-appropriate X fanin
      (hardest-first for all-inputs-needed objectives, cheapest-first
      for any-input ones: the classic SCOAP heuristics); and
    * a pre-check that answers statically-proven untestable faults
      immediately (``stats.static_untestable``) without any search.

    Guidance never changes which faults are testable — only the order
    the same search space is explored, and the skip of faults proven
    untestable by a sound static argument.
    """

    def __init__(self, netlist: Netlist, table: LineTable | None = None,
                 backtrack_limit: int = 250, guide=None):
        if not netlist.is_combinational:
            raise SimulationError(
                "PODEM needs a combinational netlist; full-scan it first")
        self.netlist = netlist
        self.table = table or LineTable(netlist)
        self.backtrack_limit = backtrack_limit
        self._order = netlist.topo_order()
        self._pis = netlist.inputs
        self.guided = bool(guide)
        self._cc0: tuple | None = None
        self._cc1: tuple | None = None
        self._co: tuple | None = None
        self._static_untestable: set = set()
        if guide:
            if guide is True:
                from ..analyze.dataflow import netlist_facts
                facts = netlist_facts(netlist)
            else:
                facts = guide
            costs = facts.scoap()
            self._cc0, self._cc1, self._co = (costs.cc0, costs.cc1,
                                              costs.co)
            self._static_untestable = (
                facts.testability().untestable_line_keys(self.table))

    # ------------------------------------------------------------------
    def generate(self, fault: SimFault
                 ) -> tuple[dict | None, PodemStats]:
        """Find a test for ``fault``.

        Returns ``(assignment, stats)`` where ``assignment`` maps each PI
        gate index to 0/1 (unassigned PIs may be filled arbitrarily), or
        ``None`` if untestable/aborted (see ``stats.aborted``).
        """
        line = self.table[fault.line]
        stats = PodemStats()
        if (fault.line, fault.value) in self._static_untestable:
            stats.static_untestable = True
            return None, stats
        pi_values: dict[int, int] = {}
        decisions: list[tuple[int, int, bool]] = []  # (pi, value, flipped)

        good, faulty = self._imply(pi_values, fault)
        stats.implications += 1
        while True:
            if self._detected(good, faulty):
                return dict(pi_values), stats
            objective = self._objective(good, faulty, fault, line)
            if objective is not None:
                pi, value = self._backtrace(objective[0], objective[1],
                                            good)
                if pi is not None:
                    decisions.append((pi, value, False))
                    pi_values[pi] = value
                    good, faulty = self._imply(pi_values, fault)
                    stats.implications += 1
                    continue
            # No objective achievable -> backtrack.
            backtracked = False
            while decisions:
                pi, value, flipped = decisions.pop()
                del pi_values[pi]
                stats.backtracks += 1
                if stats.backtracks > self.backtrack_limit:
                    stats.aborted = True
                    return None, stats
                if not flipped:
                    decisions.append((pi, 1 - value, True))
                    pi_values[pi] = 1 - value
                    good, faulty = self._imply(pi_values, fault)
                    stats.implications += 1
                    backtracked = True
                    break
            if not backtracked:
                return None, stats  # search space exhausted: untestable

    # ------------------------------------------------------------------
    def _imply(self, pi_values: dict, fault: SimFault
               ) -> tuple[list, list]:
        """3-valued good/faulty simulation under partial PI assignment."""
        line = self.table[fault.line]
        n = len(self.netlist.gates)
        good = [X] * n
        faulty = [X] * n
        gates = self.netlist.gates
        for idx in self._order:
            gate = gates[idx]
            if gate.gtype is GateType.INPUT:
                good[idx] = faulty[idx] = pi_values.get(idx, X)
            elif gate.gtype is GateType.CONST0:
                good[idx] = faulty[idx] = 0
            elif gate.gtype is GateType.CONST1:
                good[idx] = faulty[idx] = 1
            else:
                gvals = [good[src] for src in gate.fanin]
                fvals = [faulty[src] for src in gate.fanin]
                if not line.is_stem and idx == line.sink:
                    fvals = list(fvals)
                    fvals[line.pin] = fault.value
                good[idx] = eval3(gate.gtype, gvals)
                faulty[idx] = eval3(gate.gtype, fvals)
            if line.is_stem and idx == line.driver:
                faulty[idx] = fault.value
        return good, faulty

    def _detected(self, good, faulty) -> bool:
        for po in self.netlist.outputs:
            if good[po] != X and faulty[po] != X and good[po] != faulty[po]:
                return True
        return False

    def _excited(self, good, faulty, fault: SimFault, line) -> int:
        """-1 impossible, 0 not yet (X), 1 excited."""
        sig = good[line.driver]
        if sig == X:
            return 0
        return 1 if sig != fault.value else -1

    def _objective(self, good, faulty, fault: SimFault,
                   line) -> tuple[int, int] | None:
        """Next (signal, value) objective, or None when stuck."""
        state = self._excited(good, faulty, fault, line)
        if state == -1:
            return None
        if state == 0:
            return (line.driver, 1 - fault.value)
        # Fault excited: pick an X-output gate with a D on some input.
        frontier = self._d_frontier(good, faulty, fault, line)
        if self.guided and self._co is not None:
            frontier.sort(key=lambda idx: (self._co[idx], idx))
        for gate_idx in frontier:
            gate = self.netlist.gates[gate_idx]
            ctrl = controlling_value(gate.gtype)
            xs = [src for src in gate.fanin if good[src] == X]
            if not xs:
                continue
            if ctrl is not None:
                want = 1 - ctrl
                if self.guided:
                    # every X side pin must go non-controlling; aim the
                    # cheapest one first
                    cost = self._cc1 if want == 1 else self._cc0
                    return (min(xs, key=lambda s: (cost[s], s)), want)
                return (xs[0], want)
            # XOR-like: any defined value propagates — free choice,
            # cheapest side when guided (the old hard-coded 1 remains
            # the unguided default).
            if self.guided:
                src = min(xs,
                          key=lambda s: (min(self._cc0[s], self._cc1[s]),
                                         s))
                want = 0 if self._cc0[src] <= self._cc1[src] else 1
                return (src, want)
            return (xs[0], 1)
        return None

    def _d_frontier(self, good, faulty, fault: SimFault,
                    line) -> list[int]:
        frontier = []
        for idx in self._order:
            gate = self.netlist.gates[idx]
            if not gate.fanin or gate.gtype is GateType.INPUT:
                continue
            out_x = good[idx] == X or faulty[idx] == X
            if not out_x:
                continue
            for pin, src in enumerate(gate.fanin):
                good_in, faulty_in = good[src], faulty[src]
                if (not line.is_stem and idx == line.sink
                        and pin == line.pin):
                    # The branch fault's D is visible only in this pin's
                    # view: faulty side reads the stuck value.
                    faulty_in = fault.value
                if (good_in != X and faulty_in != X
                        and good_in != faulty_in):
                    frontier.append(idx)
                    break
        return frontier

    def _backtrace(self, signal: int, value: int,
                   good) -> tuple[int | None, int]:
        """Map an objective to an unassigned-PI assignment.

        Walks driver-ward one X fanin at a time until a free primary
        input is reached.  A visited set guards against revisiting a
        signal (impossible on the acyclic netlists ``__init__``
        enforces, but a structural guard beats a magic iteration
        bound).  XOR parity is computed per *pin*: duplicate pins of
        one signal each contribute, and the chosen pin's value is
        forced only when it is the last X pin — otherwise the value is
        a free choice (cost-guided when guidance is on).
        """
        gates = self.netlist.gates
        current, want = signal, value
        visited = set()
        while current not in visited:
            visited.add(current)
            gate = gates[current]
            if gate.gtype is GateType.INPUT:
                if good[current] == X:
                    return current, want
                return None, 0
            if not gate.fanin:
                return None, 0  # constants cannot be justified
            if gate.gtype in (GateType.NOT, GateType.NAND, GateType.NOR,
                              GateType.XNOR):
                want = 1 - want
            x_pins = [pin for pin, src in enumerate(gate.fanin)
                      if good[src] == X]
            if not x_pins:
                return None, 0
            pin = self._choose_pin(gate, want, x_pins)
            nxt = gate.fanin[pin]
            if gate.gtype in (GateType.XOR, GateType.XNOR):
                acc = 0
                for p, src in enumerate(gate.fanin):
                    if p != pin and good[src] != X:
                        acc ^= good[src]
                if len(x_pins) == 1:
                    want = want ^ acc  # last X pin: value is forced
                elif self.guided:
                    want = 0 if self._cc0[nxt] <= self._cc1[nxt] else 1
                else:
                    want = want ^ acc
            current = nxt
        return None, 0

    def _choose_pin(self, gate, want: int, x_pins: list[int]) -> int:
        """The X pin to descend through (SCOAP heuristics when guided).

        ``want`` is the post-inversion core value.  All-inputs-needed
        objectives (AND-core 1, OR-core 0, any XOR) descend the
        *hardest* input first — failing fast on the bottleneck; any-
        single-input objectives descend the *easiest*.
        """
        if not self.guided or len(x_pins) == 1:
            return x_pins[0]
        cc0, cc1 = self._cc0, self._cc1
        gt = gate.gtype
        if gt in (GateType.AND, GateType.NAND):
            if want == 1:
                return max(x_pins,
                           key=lambda p: (cc1[gate.fanin[p]], -p))
            return min(x_pins, key=lambda p: (cc0[gate.fanin[p]], p))
        if gt in (GateType.OR, GateType.NOR):
            if want == 0:
                return max(x_pins,
                           key=lambda p: (cc0[gate.fanin[p]], -p))
            return min(x_pins, key=lambda p: (cc1[gate.fanin[p]], p))
        if gt in (GateType.XOR, GateType.XNOR):
            return max(x_pins,
                       key=lambda p: (min(cc0[gate.fanin[p]],
                                          cc1[gate.fanin[p]]), -p))
        return x_pins[0]


def fill_assignment(netlist: Netlist, assignment: dict,
                    rng=None) -> list[int]:
    """Expand a partial PI assignment into a full 0/1 vector (PI order).

    Unassigned inputs are random-filled (better fortuitous detection) when
    ``rng`` is given, else zero-filled.
    """
    vector = []
    for pi in netlist.inputs:
        if pi in assignment:
            vector.append(int(assignment[pi]))
        elif rng is not None:
            vector.append(rng.randint(0, 1))
        else:
            vector.append(0)
    return vector
