"""Distinguishing-vector generation and diagnosis refinement.

After an exact stuck-at diagnosis, the engine often returns several
*equivalent* fault tuples — equivalent, that is, **on the simulated
vector set V**.  A test engineer wants the list pruned: a vector on
which two candidate explanations respond differently (a *distinguishing
vector*) kills one of them once applied on the tester.

Two generators:

* :func:`random_distinguishing_vector` — bit-parallel search over random
  inputs (fast, incomplete);
* :func:`distinguishing_vector` — deterministic: builds the miter of the
  two candidate netlists and asks PODEM for a test of the miter output
  stuck-at-0.  A test for that fault must set the output to 1, i.e.
  expose a disagreement — so PODEM either finds a distinguishing vector
  or (within its backtrack budget) certifies functional equivalence;
* :func:`sat_distinguishing_vector` — same contract through the CDCL
  solver (:func:`repro.analyze.prove.prove_equivalent`): an UNSAT miter
  is a *proof* of equivalence, a model is the distinguishing vector, and
  the conflict budget bounds the worst case.  SAT handles reconvergent
  XOR-heavy structures where PODEM's backtrack budget dies first.

:func:`refine_diagnosis` applies this incrementally: while two candidate
tuples are distinguishable, extend V with the distinguishing vector,
re-query the *device* (here: the faulty netlist) and drop candidates
whose netlists now mismatch — exactly the adaptive-diagnosis loop the
paper's "incremental" framing invites.
"""

from __future__ import annotations

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.miter import build_miter
from ..circuit.netlist import Netlist
from ..sim.compare import failing_vector_mask
from ..sim.faultsim import SimFault
from ..sim.logicsim import output_rows, simulate
from ..sim.packing import PatternSet, bit_indices, pack_bits
from .podem import Podem, fill_assignment


def random_distinguishing_vector(a: Netlist, b: Netlist,
                                 attempts: int = 1024,
                                 seed: int = 0) -> list | None:
    """A vector where ``a`` and ``b`` disagree, by random search."""
    patterns = PatternSet.random(a.num_inputs, attempts, seed)
    mask = failing_vector_mask(output_rows(a, simulate(a, patterns)),
                               output_rows(b, simulate(b, patterns)),
                               patterns.nbits)
    hits = bit_indices(mask, patterns.nbits)
    if not hits:
        return None
    return [int(v) for v in patterns.vector(hits[0])]


def distinguishing_vector(a: Netlist, b: Netlist,
                          backtrack_limit: int = 500,
                          seed: int = 0) -> list | None:
    """Deterministic distinguishing vector via a PODEM query on the
    miter; ``None`` means equivalent (or PODEM aborted — check
    :func:`distinguishing_vector_status` when the difference matters)."""
    vector, _status = distinguishing_vector_status(a, b, backtrack_limit,
                                                   seed)
    return vector


def distinguishing_vector_status(a: Netlist, b: Netlist,
                                 backtrack_limit: int = 500,
                                 seed: int = 0):
    """Like :func:`distinguishing_vector` but also reports certainty.

    Returns ``(vector, status)`` with status one of ``"found"``,
    ``"equivalent"`` (search space exhausted: proven equal) or
    ``"aborted"`` (backtrack budget hit: unknown).
    """
    quick = random_distinguishing_vector(a, b, attempts=256, seed=seed)
    if quick is not None:
        return quick, "found"
    miter = build_miter(a, b)
    table = LineTable(miter)
    podem = Podem(miter, table, backtrack_limit=backtrack_limit)
    out_line = table.stem(miter.outputs[0]).index
    assignment, stats = podem.generate(SimFault(out_line, 0))
    if assignment is None:
        return None, ("aborted" if stats.aborted else "equivalent")
    import random as _random
    vector = fill_assignment(miter, assignment, _random.Random(seed))
    return vector, "found"


def sat_distinguishing_vector(a: Netlist, b: Netlist,
                              conflict_limit: int = 20_000,
                              seed: int = 0):
    """Distinguishing vector via a budgeted SAT equivalence check.

    Returns ``(vector, status)`` mirroring
    :func:`distinguishing_vector_status`: ``("found")`` with the vector
    from the SAT model, ``(None, "equivalent")`` when the miter is UNSAT
    (a proof, not a budget artifact) or ``(None, "aborted")`` when the
    conflict budget ran out.
    """
    from ..analyze.prove import ProofStatus, prove_equivalent

    verdict = prove_equivalent(a, b, conflict_budget=conflict_limit,
                               seed=seed)
    if verdict.status is ProofStatus.PROVEN:
        return None, "equivalent"
    if verdict.status is ProofStatus.UNKNOWN:
        return None, "aborted"
    return [int(v) for v in verdict.counterexample], "found"


def refine_diagnosis(device: Netlist, solutions, patterns: PatternSet,
                     max_new_vectors: int = 16,
                     backtrack_limit: int = 400,
                     seed: int = 0):
    """Prune equivalent candidate tuples with distinguishing vectors.

    Args:
        device: the (simulatable) faulty design — the measurement oracle.
        solutions: sequence of :class:`repro.diagnose.Solution` whose
            ``netlist`` fields hold the candidate fault-modeled netlists.
        patterns: the vector set used so far (extended copies are made;
            the input is not mutated).

    Returns:
        ``(surviving_solutions, extended_patterns)`` — candidates whose
        netlists still match the device on the extended vector set.
    """
    survivors = [s for s in solutions if s.netlist is not None]
    extra_vectors: list[list] = []
    for _ in range(max_new_vectors):
        vector = None
        for i in range(len(survivors)):
            for j in range(i + 1, len(survivors)):
                vector = distinguishing_vector(
                    survivors[i].netlist, survivors[j].netlist,
                    backtrack_limit, seed)
                if vector is not None:
                    break
            if vector is not None:
                break
        if vector is None:
            break  # pairwise indistinguishable: resolution limit reached
        extra_vectors.append(vector)
        probe = PatternSet(pack_bits(
            np.asarray([vector], dtype=np.uint8).T), 1)
        device_out = output_rows(device, simulate(device, probe))
        still = []
        for solution in survivors:
            cand_out = output_rows(solution.netlist,
                                   simulate(solution.netlist, probe))
            mask = failing_vector_mask(device_out, cand_out, 1)
            if int(mask[0]) == 0:
                still.append(solution)
        survivors = still
        if len(survivors) <= 1:
            break
    if extra_vectors:
        extended = patterns.concat(PatternSet(
            pack_bits(np.asarray(extra_vectors, dtype=np.uint8).T),
            len(extra_vectors)))
    else:
        extended = patterns
    return survivors, extended
