"""Process-pool work scheduler for parallel decision-tree diagnosis.

The round-based decision-tree traversal (§3.3) is embarrassingly
parallel across subtrees: once the root node has been expanded, the
exploration below any two root corrections shares no mutable state.
Sharding the candidate space is the standard scaling move for
model-based diagnosis (greedy stochastic search over diagnosis spaces,
hierarchical decomposition); this module brings it to both engine
protocols.

**Sharding model.**  Exact stuck-at mode distributes depth-1 subtrees:
the parent expands the root node once (path trace, Theorem 1 screen,
outcome-guided ordering) and emits one shard per screened root
correction; each shard explores the entire subtree under its root
correction with a private visited set and a per-shard node/time budget
(``DiagnosisConfig.worker_budget``).  DEDC mode distributes the
relaxation-ladder attempts: each rung of the h1/h2/h3 ladder is an
independent decision-tree run, evaluated speculatively; the merge keeps
the earliest successful rung — the one the serial loop would have
stopped at — and discards the speculative rest.

**Determinism contract.**  The shard plan, each shard's exploration and
the merge order are all functions of (netlist, patterns, config) —
never of pool size or completion order — so ``jobs=N`` returns the same
solution list and the same deterministic counters (``nodes``,
``truncated``, ``prescreen_dropped``, ``levels_tried``, per-shard node
counts) as ``jobs=1`` for every ``N``.  Wall-clock fields are
measurements and vary.  The contract requires ``time_budget=None``:
wall-clock expiry truncates whatever was in flight and is inherently
timing-dependent.

**Worker failure.**  A crashed worker (hard death, broken pool,
unpicklable result) or a shard that outlives the wall-clock deadline
degrades to a failed :class:`ShardResult`; the merge keeps every other
shard's solutions and flags the run ``truncated`` with the failure
recorded in ``EngineStats.truncation_causes`` — never a hang, never a
silently dropped solution.  Shards check their deadline at every tree
node, so a deadline-expired worker reports its partial result within
one node expansion; :data:`DEADLINE_GRACE` bounds how long the
scheduler waits for that report before writing the shard off.

**Pluggable executor.**  :func:`run_shards` is the *default* executor
of the staged pipeline's search stage
(:class:`repro.diagnose.pipeline.DiagnosisSession`); any callable with
its signature — ``(tasks, jobs, payload=..., context=None,
wall_deadline=None) -> list[ShardResult]`` in plan order — can replace
it per session.  Deadlines cross the process boundary as epoch
timestamps (``time.time``), the one place the diagnose stack uses
wall-clock: ``perf_counter`` values are not comparable between
processes (see :mod:`repro.diagnose.clock`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field

#: Seconds past the wall-clock deadline a shard may take to report its
#: partial (self-truncated) result before the scheduler gives up on it.
DEADLINE_GRACE = 10.0

_CONTEXT = None   # per-worker DiagnosisContext (set by _init_worker)


class DiagnosisContext:
    """Read-only diagnosis context each worker rebuilds exactly once.

    The payload shipped to the pool initializer is the pickle of
    ``(netlist, patterns, spec_out, config)`` — the netlist and the
    packed pattern words cross the process boundary once per *worker*,
    not once per shard.  The root
    :class:`~repro.diagnose.bitlists.DiagnosisState` (one simulation of
    the implementation) is rebuilt inside the worker; its packed value
    matrix never crosses the boundary at all.
    """

    def __init__(self, netlist, patterns, spec_out, config,
                 root_state=None):
        from .diagnose.bitlists import DiagnosisState
        self.config = config
        if root_state is None:
            root_state = DiagnosisState(netlist, patterns, spec_out)
        self.root_state = root_state


@dataclass
class ShardResult:
    """What one shard reports back to the scheduler.

    Budget/deadline exhaustion inside a shard is a *result* (partial
    ``solutions`` with ``stats.truncated`` set), not an ``error``;
    ``error`` is reserved for shards that produced nothing at all.
    """

    index: int                  # position in the deterministic shard plan
    solutions: list = field(default_factory=list)   # list[Solution]
    stats: object | None = None                     # EngineStats
    error: str | None = None    # worker crash / deadline overrun


def _init_worker(payload) -> None:
    global _CONTEXT
    netlist, patterns, spec_out, config = payload
    _CONTEXT = DiagnosisContext(netlist, patterns, spec_out, config)


def _worker_entry(task) -> ShardResult:
    # Import inside the worker: repro.diagnose.engine imports this
    # module at its top level, so the reverse import must stay lazy.
    from .diagnose import engine
    try:
        return engine.execute_shard(_CONTEXT, task)
    except Exception as exc:  # a shard must never take down its siblings
        return ShardResult(task[1],
                           error=f"{type(exc).__name__}: {exc}")


def run_shards(tasks, jobs: int, payload=None, context=None,
               wall_deadline: float | None = None) -> list:
    """Execute a deterministic shard plan; results come back in plan
    order regardless of completion order.

    ``tasks`` are the engine's shard descriptors (tuples whose second
    element is the plan index).  With ``jobs <= 1`` — or a single-shard
    plan, where a pool could only add overhead — the same shards run
    in-process on ``context``: the serial path *is* the parallel path
    with a one-slot pool, which is what makes ``jobs=1`` and ``jobs=N``
    comparable counter-for-counter.
    """
    if jobs <= 1 or len(tasks) <= 1:
        from .diagnose import engine
        if context is None:
            context = DiagnosisContext(*payload)
        results = []
        for task in tasks:
            try:
                results.append(engine.execute_shard(context, task))
            except Exception as exc:
                results.append(ShardResult(
                    task[1], error=f"{type(exc).__name__}: {exc}"))
        return results
    return _run_pool(tasks, jobs, payload, wall_deadline)


def _run_pool(tasks, jobs: int, payload,
              wall_deadline: float | None) -> list:
    results: list = [None] * len(tasks)
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)),
                               initializer=_init_worker,
                               initargs=(payload,))
    try:
        futures = [pool.submit(_worker_entry, task) for task in tasks]
        for index, future in enumerate(futures):
            timeout = None
            if wall_deadline is not None:
                timeout = (max(0.0, wall_deadline - time.time())
                           + DEADLINE_GRACE)
            try:
                results[index] = future.result(timeout=timeout)
            except _FutureTimeout:
                future.cancel()
                results[index] = ShardResult(
                    index,
                    error="shard outlived the wall-clock deadline")
            except Exception as exc:  # BrokenProcessPool and friends
                results[index] = ShardResult(
                    index,
                    error=f"worker failed: {type(exc).__name__}: {exc}")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results
