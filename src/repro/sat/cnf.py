"""CNF construction helpers: Tseitin gate encodings and cardinality.

Used by the SAT-based diagnosis baseline to encode "there exist at most
N stuck-at modifications that make the netlist reproduce the observed
responses" as one CNF instance.
"""

from __future__ import annotations

from ..circuit.gatetypes import GateType
from ..errors import SimulationError
from .solver import SatSolver


class CnfBuilder:
    """Variable allocator + gate/cardinality encoders over a solver."""

    def __init__(self, solver: SatSolver | None = None):
        self.solver = solver or SatSolver()

    def new_var(self) -> int:
        return self.solver.new_var()

    def add(self, clause, activation: int | None = None) -> None:
        """Add a clause; with ``activation`` the clause is *guarded* —
        ``(clause OR NOT activation)`` — so it only constrains models
        where the activation literal is assumed true, and asserting the
        unit ``[-activation]`` later retires it permanently (the
        incremental prover's append-only CNF patching)."""
        if activation is not None:
            clause = list(clause) + [-activation]
        self.solver.add_clause(clause)

    # ------------------------------------------------------------------
    def constant(self, var: int, value: bool,
                 activation: int | None = None) -> None:
        self.add([var if value else -var], activation)

    def equal(self, a: int, b: int, activation: int | None = None) -> None:
        self.add([-a, b], activation)
        self.add([a, -b], activation)

    def encode_gate(self, gtype: GateType, out: int, ins: list[int],
                    activation: int | None = None) -> None:
        """Tseitin encoding: ``out <-> gtype(ins)``.

        Every emitted clause — including the definitional clauses of the
        XOR chain's fresh variables — carries the ``activation`` guard
        when one is given, so retiring the guard detaches the whole gate
        encoding at once.
        """
        if gtype in (GateType.BUF, GateType.INPUT, GateType.DFF):
            self.equal(out, ins[0], activation)
            return
        if gtype is GateType.NOT:
            self.equal(out, -ins[0], activation)
            return
        if gtype is GateType.CONST0:
            self.constant(out, False, activation)
            return
        if gtype is GateType.CONST1:
            self.constant(out, True, activation)
            return
        if gtype in (GateType.AND, GateType.NAND):
            y = out if gtype is GateType.AND else -out
            for i in ins:
                self.add([-y, i], activation)
            self.add([y] + [-i for i in ins], activation)
            return
        if gtype in (GateType.OR, GateType.NOR):
            y = out if gtype is GateType.OR else -out
            for i in ins:
                self.add([y, -i], activation)
            self.add([-y] + list(ins), activation)
            return
        if gtype in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for nxt in ins[1:]:
                fresh = self.new_var()
                self._xor2(fresh, acc, nxt, activation)
                acc = fresh
            if gtype is GateType.XOR:
                self.equal(out, acc, activation)
            else:
                self.equal(out, -acc, activation)
            return
        raise SimulationError(f"cannot encode gate type {gtype}")

    def _xor2(self, y: int, a: int, b: int,
              activation: int | None = None) -> None:
        self.add([-y, a, b], activation)
        self.add([-y, -a, -b], activation)
        self.add([y, -a, b], activation)
        self.add([y, a, -b], activation)

    def mux(self, out: int, sel: int, when_true: int,
            when_false: int) -> None:
        """out <-> (sel ? when_true : when_false)."""
        self.add([-sel, -when_true, out])
        self.add([-sel, when_true, -out])
        self.add([sel, -when_false, out])
        self.add([sel, when_false, -out])

    # ------------------------------------------------------------------
    def at_most_k(self, variables: list[int], k: int) -> None:
        """Sequential-counter encoding of sum(variables) <= k.

        Edge cases are handled before the counter is built: ``k >= n``
        is a tautology (no clauses), ``k == 0`` forces every literal
        false with unit clauses, and ``k < 0`` is unsatisfiable (the sum
        of any literal set is at least 0) — an empty clause marks the
        whole formula UNSAT instead of crashing on a negative register
        index.
        """
        n = len(variables)
        if k < 0:
            self.add([])  # unsatisfiable: even the empty sum exceeds k
            return
        if k >= n:
            return
        if k == 0:
            for var in variables:
                self.add([-var])
            return
        # s[i][j]: among the first i+1 variables, at least j+1 are true
        registers = [[self.new_var() for _ in range(k)]
                     for _ in range(n)]
        self.add([-variables[0], registers[0][0]])
        for j in range(1, k):
            self.add([-registers[0][j]])
        for i in range(1, n):
            self.add([-variables[i], registers[i][0]])
            self.add([-registers[i - 1][0], registers[i][0]])
            for j in range(1, k):
                self.add([-variables[i], -registers[i - 1][j - 1],
                          registers[i][j]])
                self.add([-registers[i - 1][j], registers[i][j]])
            self.add([-variables[i], -registers[i - 1][k - 1]])
        del registers

    def at_least_one(self, variables: list[int]) -> None:
        self.add(list(variables))
