"""A small CDCL SAT solver.

Built from scratch for the SAT-based diagnosis baseline
(:mod:`repro.diagnose.satdiag`) and the proof-backed static analysis
(:mod:`repro.analyze.prove`): conflict-driven clause learning with
first-UIP learning, two-watched-literal propagation, activity-based
(VSIDS-lite) decisions, Luby restarts and solution enumeration via
blocking clauses.  It is deliberately compact rather than competitive —
circuit-diagnosis CNFs at our benchmark sizes solve in milliseconds.

Literal convention: DIMACS-style nonzero ints; variable ``v`` is
``v`` (true) or ``-v`` (false); variables are 1-indexed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


def luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    ``luby(i) = 2**(k-1)`` when ``i == 2**k - 1``; otherwise recurse on
    ``i - (2**(k-1) - 1)`` for the largest ``k`` with ``2**(k-1) - 1 < i``.
    Restart intervals scaled by this sequence are within a log factor of
    the optimal universal restart strategy (Luby, Sinclair & Zuckerman).
    """
    if i < 1:
        raise ValueError("luby sequence is 1-indexed")
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


@dataclass
class SolverStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0
    restarts: int = 0

    def to_dict(self) -> dict:
        """JSON-ready snapshot (lint ``--format json``, bench records)."""
        return asdict(self)


class SatSolver:
    """CDCL solver over clauses added with :meth:`add_clause`."""

    def __init__(self, num_vars: int = 0,
                 restart_base: int | None = 100):
        self.num_vars = num_vars
        # Conflicts before the first restart; later intervals are this
        # base scaled by the Luby sequence.  None disables restarts.
        self.restart_base = restart_base
        self.clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self.assign: dict[int, bool] = {}
        self._trail: list[int] = []           # literals in assign order
        self._trail_lim: list[int] = []       # decision-level markers
        self._reason: dict[int, int | None] = {}   # var -> clause idx
        self._level: dict[int, int] = {}
        self._activity: dict[int, float] = {}
        self._act_inc = 1.0
        self.stats = SolverStats()
        self._ok = True
        self._qhead = 0
        self._units: list[int] = []

    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals) -> None:
        """Add a clause (iterable of nonzero ints).  Empty -> UNSAT."""
        clause = sorted(set(int(l) for l in literals), key=abs)
        if any(l == 0 for l in clause):
            raise ValueError("literal 0 is not allowed")
        if any(-l in clause for l in clause):
            return  # tautology
        for lit in clause:
            self.num_vars = max(self.num_vars, abs(lit))
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        index = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause[:2]:
            self._watches.setdefault(-lit, []).append(index)

    # ------------------------------------------------------------------
    def _value(self, lit: int):
        var = abs(lit)
        if var not in self.assign:
            return None
        val = self.assign[var]
        return val if lit > 0 else not val

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self._reason[var] = reason
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)
        self.stats.propagations += 1
        return True

    def _propagate(self) -> int | None:
        """Unit propagation of everything queued on the trail.

        Returns the index of a conflicting clause, or None.
        """
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            watch_list = self._watches.get(lit, [])
            kept: list[int] = []
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # ensure the falsified literal sits at position 1
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) is True:
                    kept.append(ci)
                    continue
                # search replacement watch
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(-clause[1],
                                                 []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._value(clause[0]) is False:
                    kept.extend(watch_list[i:])
                    self._watches[lit] = kept
                    self._qhead = len(self._trail)
                    return ci  # conflict
                self._enqueue(clause[0], ci)
            self._watches[lit] = kept
        return None

    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) \
            + self._act_inc
        if self._activity[var] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._act_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis -> (learned clause, backjump lvl)."""
        level = len(self._trail_lim)
        seen: set[int] = set()
        learned: list[int] = []
        counter = 0
        lit = None
        clause = list(self.clauses[conflict])
        index = len(self._trail) - 1
        while True:
            for l in clause:
                var = abs(l)
                if var in seen or (lit is not None and l == -lit):
                    continue
                if l == lit:
                    continue
                if var not in self._level:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == level and self._level[var] > 0:
                    counter += 1
                elif self._level[var] > 0:
                    learned.append(l)
            # find next trail literal to resolve on
            while index >= 0 and abs(self._trail[index]) not in seen:
                index -= 1
            if index < 0:
                break
            lit = self._trail[index]
            var = abs(lit)
            seen.discard(var)
            index -= 1
            counter -= 1
            if counter <= 0:
                learned.append(-lit)
                break
            reason = self._reason.get(var)
            if reason is None:
                learned.append(-lit)
                break
            clause = [l for l in self.clauses[reason] if l != lit]
        if not learned:
            return [], 0
        # backjump to the second-highest level in the learned clause
        uip = learned[-1]
        rest_levels = [self._level.get(abs(l), 0) for l in learned[:-1]]
        back = max(rest_levels, default=0)
        # order: UIP first (asserting literal)
        learned = [uip] + learned[:-1]
        return learned, back

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                lit = self._trail.pop()
                var = abs(lit)
                del self.assign[var]
                self._reason.pop(var, None)
                self._level.pop(var, None)
        self._qhead = min(self._qhead, len(self._trail))

    def _decide(self) -> int | None:
        best, best_act = None, -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assign:
                act = self._activity.get(var, 0.0)
                if act > best_act:
                    best, best_act = var, act
        return best

    # ------------------------------------------------------------------
    def solve(self, assumptions=(), conflict_limit: int | None = None
              ) -> bool | None:
        """True = SAT (model in :attr:`assign`), False = UNSAT,
        None = conflict limit exceeded."""
        if not self._ok:
            return False
        self._backjump(0)
        self._qhead = 0
        for lit in self._units:
            if self._value(lit) is False:
                return False
            self._enqueue(lit, None)
        if self._propagate() is not None:
            return False
        for lit in assumptions:
            if self._value(lit) is False:
                self._backjump(0)
                return False
            if self._value(lit) is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                if self._propagate() is not None:
                    self._backjump(0)
                    return False
        base_level = len(self._trail_lim)
        budget = conflict_limit
        since_restart = 0
        restart_count = 0
        interval = (self.restart_base * luby(1)
                    if self.restart_base else None)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                since_restart += 1
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        self._backjump(0)
                        return None
                if len(self._trail_lim) <= base_level:
                    self._backjump(0)
                    return False
                learned, back = self._analyze(conflict)
                if not learned:
                    self._backjump(0)
                    return False
                self._backjump(max(back, base_level))
                self.stats.learned += 1
                if len(learned) == 1:
                    # A learned unit holds unconditionally (assumptions
                    # enter learned clauses negated), but the two-watch
                    # scheme cannot track a one-literal clause — keep it
                    # with the input units instead so every later call
                    # re-asserts it at level 0.
                    if learned[0] not in self._units:
                        self._units.append(learned[0])
                    self._enqueue(learned[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    for lit in learned[:2]:
                        self._watches.setdefault(-lit, []).append(index)
                    self._enqueue(learned[0], index)
                self._act_inc *= 1.05
            else:
                if (interval is not None and since_restart >= interval
                        and len(self._trail_lim) > base_level):
                    # Luby restart: drop all decisions (learned clauses
                    # and activities persist, so progress is kept).
                    self._backjump(base_level)
                    self.stats.restarts += 1
                    restart_count += 1
                    since_restart = 0
                    interval = self.restart_base * luby(restart_count + 1)
                    continue
                var = self._decide()
                if var is None:
                    return True
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(var, None)

    def model(self) -> dict:
        """Current satisfying assignment {var: bool} (call after SAT)."""
        return dict(self.assign)

    def block(self, literals) -> None:
        """Add a blocking clause forbidding the given literal set."""
        self.add_clause([-l for l in literals])
