"""From-scratch CDCL SAT solver and CNF builders."""

from .solver import SatSolver, SolverStats
from .cnf import CnfBuilder

__all__ = ["SatSolver", "SolverStats", "CnfBuilder"]
