"""From-scratch CDCL SAT solver and CNF builders."""

from .solver import SatSolver, SolverStats, luby
from .cnf import CnfBuilder

__all__ = ["SatSolver", "SolverStats", "CnfBuilder", "luby"]
