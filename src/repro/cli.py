"""Command-line interface.

Subcommands::

    repro table1 [--scale S] [--trials N] [--circuits a,b] ...
    repro table2 [--scale S] [--trials N] ...
    repro ablation [--errors K] ...
    repro diagnose SPEC.bench IMPL.bench [--mode stuck-at|design-error]
                   [--jobs N] [--worker-budget N] [--format json]
                   [--no-incremental-facts]
    repro bench [--smoke] [--out BENCH_sim.json] [--check FILE]
    repro lint FILE [FILE...] [--format json] [--strict] [--deep]
               [--prove] [--seq] ...
    repro facts FILE [FILE...] [--format json] [--no-deep] [--seq]
               [--stats]
    repro prove A.bench B.bench [--budget N]   # SAT equivalence check
    repro inject SPEC.bench OUT.bench (--faults K | --errors K) [--seed N]
    repro compare [--faults 1,2]     # engine vs SAT vs dictionary
    repro convert IN.bench OUT.v     # netlist format conversion
    repro vcd IN.bench OUT.vcd       # waveform dump
    repro suite [--scale S]          # list the benchmark suite

``python -m repro.cli`` works too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analyze import DEFAULT_REGISTRY, lint_netlist
from .bench import (format_ablation, format_compare, format_table1,
                    format_table2, run_ablation, run_compare,
                    run_table1, run_table2)
from .circuit import bench_io, full_scan, generators, verilog_io
from .diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                       TraceWriter, validate_trace_file)
from .errors import DiagnosisError
from .faults import inject_design_errors, inject_stuck_at_faults
from .tgen import random_patterns


def _suite(args) -> list:
    circuits = generators.benchmark_suite(args.scale)
    if args.circuits:
        wanted = set(args.circuits.split(","))
        circuits = [c for c in circuits if c.name in wanted]
        missing = wanted - {c.name for c in circuits}
        if missing:
            sys.exit(f"unknown circuit(s): {', '.join(sorted(missing))}")
    return circuits


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="benchmark suite size scale (default 0.5)")
    parser.add_argument("--circuits", default="",
                        help="comma-separated circuit subset")
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per table cell")
    parser.add_argument("--vectors", type=int, default=1024,
                        help="random vectors per trial")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-budget", type=float, default=60.0,
                        help="seconds per diagnosis run")


def cmd_suite(args) -> int:
    print(f"{'name':<10}{'gates':>7}{'PIs':>5}{'POs':>5}{'DFFs':>6}"
          f"{'depth':>7}")
    for circuit in _suite(args):
        stats = circuit.stats()
        print(f"{stats['name']:<10}{stats['gates']:>7}{stats['inputs']:>5}"
              f"{stats['outputs']:>5}{stats['dffs']:>6}{stats['depth']:>7}")
    return 0


def cmd_table1(args) -> int:
    fault_counts = tuple(int(x) for x in args.faults.split(","))
    rows = run_table1(_suite(args), fault_counts, args.trials,
                      args.vectors, args.seed,
                      time_budget=args.time_budget,
                      progress=_progress if args.verbose else None)
    print(format_table1(rows, fault_counts))
    return 0


def cmd_table2(args) -> int:
    error_counts = tuple(int(x) for x in args.errors.split(","))
    rows = run_table2(_suite(args), error_counts, args.trials,
                      args.vectors, args.seed,
                      time_budget=args.time_budget,
                      progress=_progress if args.verbose else None)
    print(format_table2(rows, error_counts))
    return 0


def cmd_ablation(args) -> int:
    results = run_ablation(_suite(args), args.num_errors, args.trials,
                           args.vectors, args.seed,
                           time_budget=args.time_budget)
    print(format_ablation(results))
    return 0


def cmd_compare(args) -> int:
    fault_counts = tuple(int(x) for x in args.faults.split(","))
    rows = run_compare(_suite(args), fault_counts, args.trials,
                       args.vectors, args.seed,
                       time_budget=args.time_budget)
    print(format_compare(rows, fault_counts))
    return 0


def cmd_diagnose(args) -> int:
    spec = bench_io.load(args.spec)
    impl = bench_io.load(args.impl)
    if not spec.is_combinational:
        spec = full_scan(spec)[0]
    if not impl.is_combinational:
        impl = full_scan(impl)[0]
    mode = Mode(args.mode)
    patterns = random_patterns(impl, args.vectors, args.seed)
    config = DiagnosisConfig(mode=mode, exact=(mode is Mode.STUCK_AT),
                             max_errors=args.max_errors,
                             time_budget=args.time_budget,
                             check_invariants=args.check_invariants,
                             prove_dedup=args.prove_dedup,
                             jobs=args.jobs,
                             worker_budget=args.worker_budget,
                             incremental_facts=not
                             args.no_incremental_facts,
                             seed=args.seed)
    trace_fh = None
    trace = None
    if args.trace:
        trace_fh = open(args.trace, "w", encoding="utf-8")
        trace = TraceWriter(trace_fh)
    try:
        try:
            if mode is Mode.STUCK_AT:
                # Fault-model the good netlist against the faulty device.
                engine = IncrementalDiagnoser(impl, spec, patterns,
                                              config, trace=trace)
            else:
                engine = IncrementalDiagnoser(spec, impl, patterns,
                                              config, trace=trace)
        except DiagnosisError as exc:
            sys.exit(f"repro diagnose: {exc}")
        result = engine.run()
    finally:
        if trace_fh is not None:
            trace_fh.close()
    if args.format == "json":
        print(json.dumps(_diagnose_json(result), indent=2))
    else:
        print(result.summary())
    return 0 if result.found else 1


def cmd_trace_check(args) -> int:
    """Schema-check a ``--trace`` JSONL file.  Exit 0 ok, 2 invalid."""
    failures = 0
    for path in args.files:
        errors = validate_trace_file(path)
        for err in errors:
            print(f"{path}: {err}")
        print(f"{path}: {'FAIL' if errors else 'ok'}")
        failures += bool(errors)
    return 2 if failures else 0


def _diagnose_json(result) -> dict:
    """Machine-readable diagnose report (solutions + search counters)."""
    stats = result.stats
    return {
        "found": result.found,
        "num_vectors": result.num_vectors,
        "initial_failing": result.initial_failing,
        "solutions": [
            {"corrections": sorted(r.signature for r in sol.records),
             "aliases": list(sol.aliases)}
            for sol in result.solutions],
        "stats": {
            "nodes": stats.nodes,
            "rounds": stats.rounds,
            "prescreen_dropped": stats.prescreen_dropped,
            "facts_reused": stats.facts_reused,
            "facts_recomputed": stats.facts_recomputed,
            "delta_edits": stats.delta_edits,
            "truncated": stats.truncated,
            "truncation_causes": list(stats.truncation_causes),
            "levels_tried": list(stats.levels_tried),
            "diag_time_s": stats.diag_time,
            "corr_time_s": stats.corr_time,
            "apply_time_s": stats.apply_time,
            "total_time_s": stats.total_time,
            "stages": list(stats.stages),
        },
    }


def _load_any(path, lint=None):
    """Load a netlist by extension (.bench or .v)."""
    if str(path).endswith(".v"):
        return verilog_io.load(path, lint=lint)
    return bench_io.load(path, lint=lint)


def cmd_lint(args) -> int:
    """Static-analysis lint.  Exit codes: 0 clean (or info-only),
    1 errors found (warnings too under --strict), 2 unreadable input."""
    from .errors import ReproError

    if args.list_rules:
        for rule in DEFAULT_REGISTRY:
            print(f"{rule.id:<20}{rule.group:<12}"
                  f"{str(rule.severity):<9}{rule.description}")
        return 0
    if not args.files:
        sys.exit("repro lint: no input files (see --list-rules)")
    suppress = [s.strip() for s in args.suppress.split(",") if s.strip()]
    worst = 0
    json_reports = []
    for path in args.files:
        try:
            netlist = _load_any(path, lint="off")
        except (ReproError, OSError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        try:
            report = lint_netlist(netlist, suppress=suppress,
                                  deep=args.deep, prove=args.prove,
                                  prove_budget=args.prove_budget,
                                  seq=args.seq,
                                  seq_budget=args.seq_budget,
                                  testability=args.testability,
                                  cc_threshold=args.cc_threshold,
                                  co_threshold=args.co_threshold)
        except KeyError as exc:
            sys.exit(f"repro lint: {exc.args[0]}")
        if args.format == "json":
            json_reports.append(report.to_dict())
        else:
            print(report.to_text())
        worst = max(worst, report.exit_code(strict=args.strict))
    if args.format == "json":
        print(json.dumps(json_reports, indent=2))
    return worst


def cmd_facts(args) -> int:
    """Dataflow facts digest.  Exit codes: 0 ok, 2 unreadable input."""
    from .analyze import netlist_facts
    from .analyze.dataflow import FACTS_CACHE
    from .errors import ReproError

    if args.stats:
        FACTS_CACHE.reset()
    worst = 0
    digests = []
    for path in args.files:
        try:
            netlist = _load_any(path, lint="off")
        except (ReproError, OSError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            worst = 2
            continue
        digests.append(netlist_facts(netlist).summary(
            deep=not args.no_deep, seq=args.seq,
            testability=args.testability))
    if args.format == "json":
        if args.stats:
            print(json.dumps({"digests": digests,
                              "facts_cache": FACTS_CACHE.snapshot()},
                             indent=2))
        else:
            print(json.dumps(digests, indent=2))
        return worst
    for digest in digests:
        print(f"{digest['netlist']}: {digest['gates']} gates")
        for key in ("constants", "implied_constants"):
            if digest[key]:
                pretty = ", ".join(f"{name}={value}" for name, value
                                   in digest[key].items())
                print(f"  {key.replace('_', ' ')}: {pretty}")
        for group in digest["duplicate_groups"]:
            print(f"  duplicate logic: {' == '.join(group)}")
        if digest["unobservable"]:
            print(f"  unobservable: {', '.join(digest['unobservable'])}")
        if digest["odc_blocked"]:
            print(f"  odc-blocked: {', '.join(digest['odc_blocked'])}")
        if "implications" in digest:
            print(f"  closed implications: {digest['implications']}")
        if "seq" in digest:
            sq = digest["seq"]
            print(f"  seq: fixpoint stable after "
                  f"{sq['fixpoint_iterations']} sweep(s), "
                  f"k-induction k={sq['induction_k']}")
            if sq["stuck_registers"]:
                pretty = ", ".join(f"{name}={value}" for name, value
                                   in sq["stuck_registers"].items())
                print(f"  stuck registers: {pretty}")
            if sq["seq_constants"]:
                pretty = ", ".join(f"{name}={value}" for name, value
                                   in sq["seq_constants"].items())
                print(f"  seq constants: {pretty}")
            if sq["proven_constants"]:
                pretty = ", ".join(f"{name}={value}" for name, value
                                   in sq["proven_constants"].items())
                print(f"  induction constants: {pretty}")
            for group in sq["proven_classes"]:
                print(f"  seq equivalent: {' == '.join(group)}")
        if "testability" in digest:
            tb = digest["testability"]
            print(f"  scoap: max cc {tb['max_cc']}, "
                  f"max co {tb['max_co']}")
            for fault in tb["untestable_faults"]:
                print(f"  untestable: {fault}")
    if args.stats:
        snap = FACTS_CACHE.snapshot()
        print(f"facts cache: {snap['facts_reused']} reused, "
              f"{snap['facts_recomputed']} recomputed, "
              f"{snap['delta_edits']} delta edit(s) replayed")
    return worst


def cmd_prove(args) -> int:
    """SAT combinational equivalence check of two netlists.

    Exit codes: 0 proven equivalent, 1 different (the distinguishing
    input vector is printed), 2 unreadable/mismatched input, 3 conflict
    budget exhausted (undecided).
    """
    from .analyze.prove import ProofStatus, prove_equivalent
    from .errors import ReproError

    try:
        a = _load_any(args.a, lint="off")
        b = _load_any(args.b, lint="off")
        if not a.is_combinational:
            a = full_scan(a)[0]
        if not b.is_combinational:
            b = full_scan(b)[0]
        verdict = prove_equivalent(a, b, conflict_budget=args.budget,
                                   seed=args.seed)
    except (ReproError, OSError) as exc:
        print(f"repro prove: error: {exc}", file=sys.stderr)
        return 2
    if verdict.status is ProofStatus.PROVEN:
        print(f"{args.a} == {args.b}: proven equivalent "
              f"({verdict.conflicts} conflicts)")
        return 0
    if verdict.status is ProofStatus.REFUTED:
        names = [a.gates[i].name for i in a.inputs]
        assignment = ", ".join(
            f"{name}={value}" for name, value
            in zip(names, verdict.counterexample))
        print(f"{args.a} != {args.b}: distinguishing vector "
              f"{assignment} ({verdict.conflicts} conflicts)")
        return 1
    print(f"{args.a} ?= {args.b}: undecided, conflict budget "
          f"exhausted ({verdict.conflicts} conflicts; retry with a "
          f"larger --budget)")
    return 3


def cmd_convert(args) -> int:
    netlist = _load_any(args.src)
    if str(args.out).endswith(".v"):
        verilog_io.dump(netlist, args.out)
    else:
        bench_io.dump(netlist, args.out)
    print(f"wrote {args.out} ({len(netlist.gates)} gates)")
    return 0


def cmd_vcd(args) -> int:
    from .sim import simulate, write_vcd

    netlist = _load_any(args.src)
    if not netlist.is_combinational:
        netlist = full_scan(netlist)[0]
    patterns = random_patterns(netlist, args.vectors, args.seed)
    values = simulate(netlist, patterns)
    signals = args.signals.split(",") if args.signals else None
    write_vcd(args.out, netlist, values, patterns.nbits,
              signals=signals,
              comment=f"{args.vectors} random vectors, seed {args.seed}")
    print(f"wrote {args.out}")
    return 0


def cmd_inject(args) -> int:
    spec = bench_io.load(args.spec)
    if args.num_faults:
        workload = inject_stuck_at_faults(spec, args.num_faults,
                                          args.seed)
    else:
        workload = inject_design_errors(spec, args.num_errors, args.seed)
    bench_io.dump(workload.impl, args.out)
    for record in workload.truth:
        print(f"injected {record.kind} at {record.site} {record.detail}")
    print(f"wrote {args.out}")
    return 0


def cmd_tgen(args) -> int:
    """Deterministic test generation with PODEM effort accounting.

    Exit codes: 0 ok (aborts allowed — they are reported, not fatal),
    2 unreadable input.
    """
    from .errors import ReproError
    from .tgen import deterministic_patterns_with_stats

    worst = 0
    payloads = []
    for path in args.files:
        try:
            netlist = _load_any(path, lint="off")
        except (ReproError, OSError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            worst = 2
            continue
        if not netlist.is_combinational:
            netlist = full_scan(netlist)[0]
        pats, stats = deterministic_patterns_with_stats(
            netlist, seed=args.seed,
            backtrack_limit=args.backtrack_limit,
            compact=not args.no_compact,
            guide=not args.no_guide)
        if args.format == "json":
            payload = stats.to_dict()
            payload["netlist"] = netlist.name
            payloads.append(payload)
            continue
        mode = "guided" if stats.guided else "unguided"
        print(f"{netlist.name}: {stats.vectors} vector(s) for "
              f"{stats.targeted}/{stats.faults} collapsed fault(s) "
              f"({mode} PODEM)")
        print(f"  generated {stats.generated}, "
              f"untestable {stats.untestable} "
              f"({stats.static_untestable} statically, no search), "
              f"aborted {stats.aborted}")
        print(f"  effort: {stats.backtracks} backtrack(s), "
              f"{stats.implications} implication pass(es)")
    if args.format == "json":
        print(json.dumps(payloads, indent=2))
    return worst


def cmd_bench(args) -> int:
    """Simulation-kernel benchmarks -> BENCH_sim.json.

    Exit codes: 0 ok, 2 schema violation (timings never fail the run).
    """
    from .bench import simbench

    if args.check:
        errors = simbench.validate_file(args.check)
        for err in errors:
            print(f"schema: {err}", file=sys.stderr)
        print(f"{args.check}: " + ("INVALID" if errors else "ok"))
        return 2 if errors else 0
    payload = simbench.run_suites(smoke=args.smoke,
                                  repeats=args.repeats, seed=args.seed)
    errors = simbench.validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}", file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(simbench.format_records(payload["records"]))
    for name, ratio in sorted(
            payload["summary"]["micro_speedup_scan_over_event"].items()):
        print(f"speedup {name}: event kernel {ratio:.1f}x over scan")
    print(f"wrote {args.out}")
    return 0


def _progress(name, k, trial, result) -> None:
    print(f"  [{name} k={k} trial={trial}] "
          f"{len(result.solutions)} solution(s), "
          f"{result.stats.nodes} nodes, "
          f"{result.stats.total_time:.2f}s", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental diagnosis & correction of multiple "
                    "faults and errors (DATE 2002 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suite", help="list the benchmark suite")
    _add_common(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("table1", help="stuck-at diagnosis experiment")
    _add_common(p)
    p.add_argument("--faults", default="1,2,3,4",
                   help="comma-separated fault counts")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="design-error (DEDC) experiment")
    _add_common(p)
    p.add_argument("--errors", default="3,4",
                   help="comma-separated error counts")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("ablation", help="heuristic/traversal ablations")
    _add_common(p)
    p.add_argument("--num-errors", type=int, default=3)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("compare",
                       help="engine vs SAT vs dictionary baselines")
    _add_common(p)
    p.add_argument("--faults", default="1,2",
                   help="comma-separated fault counts")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("diagnose", help="diagnose IMPL against SPEC")
    p.add_argument("spec")
    p.add_argument("impl")
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default=Mode.STUCK_AT.value)
    p.add_argument("--vectors", type=int, default=2048)
    p.add_argument("--max-errors", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--time-budget", type=float, default=120.0)
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool width for the sharded decision-"
                        "tree search; any N returns the same solution "
                        "list as --jobs 1 (default 1)")
    p.add_argument("--worker-budget", type=int, default=None,
                   help="per-shard node budget (default: max_nodes "
                        "per shard)")
    p.add_argument("--check-invariants", action="store_true",
                   help="assert Verr/Vcorr + Theorem 1 invariants at "
                        "every tree node (debug mode)")
    p.add_argument("--prove-dedup", action="store_true",
                   help="SAT-equivalence-check surviving correction "
                        "candidates and collapse proven-equivalent "
                        "ones into one candidate with aliases")
    p.add_argument("--no-incremental-facts", action="store_true",
                   help="recompute each tree node's dataflow facts "
                        "from scratch instead of warming them from "
                        "the parent node via the edit journal "
                        "(results are bit-identical either way)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="json adds the search counters (nodes, "
                        "facts_reused/facts_recomputed/delta_edits, "
                        "truncation causes, per-stage records) to the "
                        "solution list")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="write a JSONL event stream (run-start, one "
                        "event per pipeline stage, run-end) to FILE; "
                        "validate with 'repro trace-check'")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("trace-check",
                       help="schema-check a diagnose --trace file")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.set_defaults(func=cmd_trace_check)

    p = sub.add_parser("lint",
                       help="rule-based static analysis of a netlist")
    p.add_argument("files", nargs="*",
                   help=".bench or .v netlist files")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too")
    p.add_argument("--suppress", default="",
                   help="comma-separated rule ids to skip")
    p.add_argument("--deep", action="store_true",
                   help="also run the dataflow-backed deep rules "
                        "(provable constants, duplicate logic, "
                        "ODC-masked lines)")
    p.add_argument("--prove", action="store_true",
                   help="also run the SAT-backed prove rules (proven "
                        "constants, proven duplicate logic, proven "
                        "redundant fanins)")
    p.add_argument("--prove-budget", type=int, default=None,
                   help="per-query conflict budget for --prove")
    p.add_argument("--seq", action="store_true",
                   help="also run the sequential seq rules (reset "
                        "fixpoint + k-induction: stuck registers, "
                        "sequential constants, redundant registers, "
                        "sequential equivalences)")
    p.add_argument("--seq-budget", type=int, default=None,
                   help="per-query conflict budget for --seq")
    p.add_argument("--testability", action="store_true",
                   help="also run the testability rules (SCOAP cost "
                        "outliers, statically untestable stuck-at "
                        "faults with provenance)")
    p.add_argument("--cc-threshold", type=int, default=None,
                   help="SCOAP controllability alarm threshold for "
                        "--testability (default 64)")
    p.add_argument("--co-threshold", type=int, default=None,
                   help="SCOAP observability alarm threshold for "
                        "--testability (default 64)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("facts",
                       help="dataflow facts digest (constants, "
                            "equivalences, implications, ODCs)")
    p.add_argument("files", nargs="+",
                   help=".bench or .v netlist files")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--no-deep", action="store_true",
                   help="skip the implication closure (cheaper)")
    p.add_argument("--seq", action="store_true",
                   help="also report sequential facts (reset fixpoint, "
                        "stuck registers, k-induction constants and "
                        "correspondence classes)")
    p.add_argument("--testability", action="store_true",
                   help="also report SCOAP cost extremes and "
                        "statically untestable stuck-at faults")
    p.add_argument("--stats", action="store_true",
                   help="also report the facts-cache counters "
                        "(bundles reused via delta repair vs "
                        "recomputed, journal edits replayed)")
    p.set_defaults(func=cmd_facts)

    p = sub.add_parser("prove",
                       help="SAT equivalence check of two netlists "
                            "(e.g. before/after an applied correction)")
    p.add_argument("a", help="first netlist (.bench or .v)")
    p.add_argument("b", help="second netlist (.bench or .v)")
    p.add_argument("--budget", type=int, default=100_000,
                   help="conflict budget before giving up (exit 3)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser("convert",
                       help="convert between .bench and .v")
    p.add_argument("src")
    p.add_argument("out")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("vcd", help="dump simulated waveforms to VCD")
    p.add_argument("src")
    p.add_argument("out")
    p.add_argument("--vectors", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--signals", default="",
                   help="comma-separated signal names (default: PIs+POs)")
    p.set_defaults(func=cmd_vcd)

    p = sub.add_parser("tgen",
                       help="deterministic PODEM test generation with "
                            "effort accounting")
    p.add_argument("files", nargs="+",
                   help=".bench or .v netlist files (sequential "
                        "netlists are full-scanned first)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backtrack-limit", type=int, default=120,
                   help="per-fault PODEM backtrack budget (default 120)")
    p.add_argument("--no-guide", action="store_true",
                   help="disable SCOAP cost guidance and the static "
                        "untestable-fault pre-check")
    p.add_argument("--no-compact", action="store_true",
                   help="skip reverse-order fault-simulation "
                        "compaction of the vector set")
    p.set_defaults(func=cmd_tgen)

    p = sub.add_parser("bench",
                       help="simulation-kernel benchmarks "
                            "(BENCH_sim.json)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny budgets for CI (schema still enforced)")
    p.add_argument("--out", default="BENCH_sim.json",
                   help="output JSON path (default BENCH_sim.json)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats, best-of (default 3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--check", metavar="FILE", default="",
                   help="validate an existing BENCH_sim.json and exit")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("inject", help="corrupt a netlist")
    p.add_argument("spec")
    p.add_argument("out")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--faults", dest="num_faults", type=int, default=0)
    group.add_argument("--errors", dest="num_errors", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_inject)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; silence
        # the shutdown flush too, and exit like a SIGPIPE'd process.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
