"""Semantic rules: the netlist is structurally sound but the logic is
suspicious or breaks an assumption of the diagnosis algorithm.

These run only after the structural group passes with no errors — their
graph traversals require in-range indices.  None of them calls
``topo_order()``; every traversal here is cycle-safe so that
``comb-loop`` can *report* a loop instead of crashing on it.  The
observability and constant facts come from the shared dataflow bundle
(:meth:`AnalysisContext.facts`), whose SCC-scheduled fixed points are
cycle-safe by construction.

The observability rule is the one with direct diagnostic weight: the
path-trace phase (§3.1) marks lines by walking back from erroneous
primary outputs, so a line with no combinational path to any primary
output can never be marked and therefore can never be diagnosed or
corrected.  A netlist with such lines silently voids the algorithm's
resolution guarantee.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import GateType, UNARY_TYPES
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity

_rule = DEFAULT_REGISTRY.rule


def find_cycles(ctx: AnalysisContext) -> list[list[int]]:
    """Combinational cycles, each as a gate-index path (first == last
    omitted).  DFF fanin edges are sequential, not combinational, so
    they never close a cycle.  Each gate appears in at most one
    reported cycle, so a tangle of loops yields a readable handful of
    reports rather than a combinatorial blow-up."""
    netlist = ctx.netlist
    n = len(netlist.gates)
    state = bytearray(n)  # 0 unseen, 1 on current path, 2 done
    cycles: list[list[int]] = []
    reported: set[int] = set()
    for root in range(n):
        if state[root] == 2:
            continue
        path: list[int] = []
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            node, child = stack[-1]
            if state[node] == 2:
                stack.pop()
                continue
            if child == 0:
                state[node] = 1
                path.append(node)
            gate = netlist.gates[node]
            fanin = () if gate.gtype is GateType.DFF else gate.fanin
            if child < len(fanin):
                stack[-1] = (node, child + 1)
                nxt = fanin[child]
                if state[nxt] == 1:
                    cycle = path[path.index(nxt):]
                    if not reported.issuperset(cycle):
                        cycles.append(cycle)
                        reported.update(cycle)
                elif state[nxt] == 0:
                    stack.append((nxt, 0))
            else:
                state[node] = 2
                path.pop()
                stack.pop()
    return cycles


@_rule("comb-loop", "semantic", Severity.ERROR,
       "no combinational cycles (the offending cycle is printed)")
def check_comb_loop(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    names = [g.name for g in ctx.netlist.gates]
    for cycle in find_cycles(ctx):
        pretty = " -> ".join(names[i] for i in cycle + cycle[:1])
        yield Diagnostic(
            "comb-loop", Severity.ERROR,
            f"combinational cycle through gate {names[cycle[0]]!r}: "
            f"{pretty}", gate=names[cycle[0]],
            data={"cycle": [names[i] for i in cycle]})


@_rule("fanout-free", "semantic", Severity.WARNING,
       "internal lines drive at least one consumer or a primary output")
def check_fanout_free(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    fanouts = ctx.fanouts()
    pos = set(ctx.netlist.outputs)
    for gate in ctx.netlist.gates:
        if gate.gtype is GateType.INPUT:
            continue  # unused PIs are an interface choice, not a bug
        if not fanouts[gate.index] and gate.index not in pos:
            yield Diagnostic(
                "fanout-free", Severity.WARNING,
                f"gate {gate.name!r} drives no consumer and no primary "
                f"output", gate=gate.name, data={"index": gate.index})


@_rule("dead-gate", "semantic", Severity.WARNING,
       "every gate is reachable from some primary output (live)")
def check_dead_gates(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    live = ctx.live()
    fanouts = ctx.fanouts()
    pos = set(ctx.netlist.outputs)
    for gate in ctx.netlist.gates:
        if gate.index in live or gate.gtype is GateType.INPUT:
            continue
        if not fanouts[gate.index] and gate.index not in pos:
            continue  # already reported by fanout-free
        yield Diagnostic(
            "dead-gate", Severity.WARNING,
            f"gate {gate.name!r} is dead: no primary output depends on "
            f"it", gate=gate.name, data={"index": gate.index})


@_rule("unobservable-line", "semantic", Severity.WARNING,
       "every live line has a combinational path to a primary output "
       "(else path-trace can never mark it)")
def check_unobservable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    live = ctx.live()
    obs = ctx.facts().observable_set()
    for gate in ctx.netlist.gates:
        if gate.index not in live or gate.index in obs:
            continue
        yield Diagnostic(
            "unobservable-line", Severity.WARNING,
            f"line {gate.name!r} is live but has no combinational path "
            f"to any primary output; path-trace can never mark it and "
            f"no correction there is diagnosable", gate=gate.name,
            data={"index": gate.index})


@_rule("const-feed", "semantic", Severity.WARNING,
       "logic gates are not fed by (provably) constant signals "
       "(foldable logic distorts diagnosis resolution)")
def check_const_feed(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Fed-by-constant check, on the ternary propagation facts.

    This sees through buffers and downstream logic — a gate fed by
    ``AND(x, CONST0)`` is flagged just like one fed by ``CONST0``
    directly — which the old syntactic gate-type test could not.
    """
    netlist = ctx.netlist
    consts = ctx.facts().constants()
    for gate in netlist.gates:
        if gate.gtype is GateType.DFF:
            continue
        const_pins = [(pin, consts[src])
                      for pin, src in enumerate(gate.fanin)
                      if src in consts]
        if const_pins:
            pins = [pin for pin, _ in const_pins]
            yield Diagnostic(
                "const-feed", Severity.WARNING,
                f"gate {gate.name!r} ({gate.gtype.name}) has provably "
                f"constant fanin on pin(s) {pins}; the gate is foldable",
                gate=gate.name,
                data={"pins": pins,
                      "values": [v for _, v in const_pins]})


@_rule("foldable-logic", "semantic", Severity.INFO,
       "multi-input gates do not repeat a fanin signal (x op x folds)")
def check_foldable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for gate in ctx.netlist.gates:
        if len(gate.fanin) < 2:
            continue
        dupes = sorted({src for src in gate.fanin
                        if gate.fanin.count(src) > 1})
        if dupes:
            names = [ctx.netlist.gates[s].name for s in dupes]
            yield Diagnostic(
                "foldable-logic", Severity.INFO,
                f"gate {gate.name!r} ({gate.gtype.name}) uses signal(s) "
                f"{names} on multiple pins; the logic folds",
                gate=gate.name, data={"signals": names})


@_rule("inverter-chain", "semantic", Severity.INFO,
       "no NOT/BUF fed directly by another NOT/BUF (collapsible chain)")
def check_inverter_chain(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    unary = UNARY_TYPES - {GateType.DFF}
    netlist = ctx.netlist
    for gate in netlist.gates:
        if gate.gtype not in unary or not gate.fanin:
            continue
        src = netlist.gates[gate.fanin[0]]
        if src.gtype in unary:
            yield Diagnostic(
                "inverter-chain", Severity.INFO,
                f"gate {gate.name!r} ({gate.gtype.name}) is fed by "
                f"{src.name!r} ({src.gtype.name}); the chain collapses",
                gate=gate.name, data={"feeder": src.name})
