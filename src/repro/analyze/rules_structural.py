"""Structural rules: the invariants every other module assumes.

These absorb (and supersede) the original ``circuit/validate.py``
checks: index integrity, duplicate names, name-map consistency, arity,
fanin/output index range, and interface presence.  Their messages keep
the exact phrasing the old validator used so existing callers matching
on substrings keep working.

Every rule here is ERROR severity: a netlist failing any of them will
crash or silently mis-simulate elsewhere in the library.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import GateType, arity_ok
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity

_rule = DEFAULT_REGISTRY.rule


@_rule("index-integrity", "structural", Severity.ERROR,
       "every gate's index field equals its position in Netlist.gates")
def check_index_integrity(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for pos, gate in enumerate(ctx.netlist.gates):
        if gate.index != pos:
            yield Diagnostic(
                "index-integrity", Severity.ERROR,
                f"gate {gate.name!r}: index field {gate.index} != "
                f"position {pos}", gate=gate.name,
                data={"position": pos, "index": gate.index})


@_rule("duplicate-name", "structural", Severity.ERROR,
       "gate names are unique (each duplicated name reported once)")
def check_duplicate_names(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    positions: dict[str, list[int]] = {}
    for pos, gate in enumerate(ctx.netlist.gates):
        positions.setdefault(gate.name, []).append(pos)
    for name, occ in positions.items():
        if len(occ) > 1:
            yield Diagnostic(
                "duplicate-name", Severity.ERROR,
                f"duplicate gate name {name!r} "
                f"({len(occ)} gates: indices {occ})",
                gate=name, data={"indices": occ})


@_rule("name-map", "structural", Severity.ERROR,
       "the name->index map agrees with the gate list")
def check_name_map(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    netlist = ctx.netlist
    n = len(netlist.gates)
    for name, idx in netlist._name2idx.items():
        if not 0 <= idx < n:
            yield Diagnostic(
                "name-map", Severity.ERROR,
                f"name map entry {name!r} -> {idx} is out of range",
                gate=name, data={"index": idx})
        elif netlist.gates[idx].name != name:
            yield Diagnostic(
                "name-map", Severity.ERROR,
                f"name map entry {name!r} -> {idx} but gate {idx} is "
                f"named {netlist.gates[idx].name!r}",
                gate=name, data={"index": idx})
    mapped = set(netlist._name2idx)
    for gate in netlist.gates:
        if gate.name not in mapped:
            yield Diagnostic(
                "name-map", Severity.ERROR,
                f"gate {gate.name!r} missing from the name map",
                gate=gate.name, data={"index": gate.index})


@_rule("arity", "structural", Severity.ERROR,
       "every gate has a legal fanin count for its type")
def check_arity(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for gate in ctx.netlist.gates:
        if not arity_ok(gate.gtype, len(gate.fanin)):
            yield Diagnostic(
                "arity", Severity.ERROR,
                f"gate {gate.name!r}: {gate.gtype.name} with "
                f"{len(gate.fanin)} fanin(s)", gate=gate.name,
                data={"gtype": gate.gtype.name,
                      "fanin_count": len(gate.fanin)})


@_rule("fanin-range", "structural", Severity.ERROR,
       "every fanin pin references an existing gate")
def check_fanin_range(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    n = len(ctx.netlist.gates)
    for gate in ctx.netlist.gates:
        for pin, src in enumerate(gate.fanin):
            if not 0 <= src < n:
                yield Diagnostic(
                    "fanin-range", Severity.ERROR,
                    f"gate {gate.name!r}: pin {pin} references missing "
                    f"gate {src}", gate=gate.name,
                    data={"pin": pin, "src": src})


@_rule("output-range", "structural", Severity.ERROR,
       "every primary output references an existing gate")
def check_output_range(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    n = len(ctx.netlist.gates)
    for slot, out in enumerate(ctx.netlist.outputs):
        if not 0 <= out < n:
            yield Diagnostic(
                "output-range", Severity.ERROR,
                f"output references missing gate {out}",
                data={"slot": slot, "index": out})


@_rule("no-outputs", "structural", Severity.ERROR,
       "the netlist declares at least one primary output")
def check_has_outputs(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.netlist.outputs:
        yield Diagnostic("no-outputs", Severity.ERROR,
                         "netlist has no primary outputs")


@_rule("no-inputs", "structural", Severity.ERROR,
       "the netlist declares at least one primary input")
def check_has_inputs(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not any(g.gtype is GateType.INPUT for g in ctx.netlist.gates):
        yield Diagnostic("no-inputs", Severity.ERROR,
                         "netlist has no primary inputs")
