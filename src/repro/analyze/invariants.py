"""Debug-mode invariants of the diagnosis engine's internal state.

Section 2 of the paper partitions the simulated vector set V into the
failing vectors (whose line values form the ``Verr`` bit-lists) and the
passing vectors (``Vcorr``).  Every heuristic count and the Theorem 1
screen silently assume that partition is *disjoint* and *complete* and
that the screen's denominator N (errors still to find) is positive.
An engine bug violating any of these does not crash — it produces wrong
diagnoses.  :class:`InvariantChecker` turns such bugs into immediate
:class:`InvariantViolation` errors.

The checker is opt-in (``DiagnosisConfig(check_invariants=True)``); when
disabled the engine carries a ``None`` and pays one ``if`` per node.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantViolation
from ..sim.packing import popcount, tail_mask


class InvariantChecker:
    """Asserts the Section 2 / Theorem 1 invariants on live engine state.

    Attributes:
        checks_run: total number of invariant checks performed, for
            tests and overhead accounting.
    """

    def __init__(self) -> None:
        self.checks_run = 0

    # ------------------------------------------------------------------
    def check_state(self, state) -> None:
        """The ``Verr``/``Vcorr`` partition is disjoint and complete.

        ``state`` is a :class:`~repro.diagnose.bitlists.DiagnosisState`;
        typed loosely to keep this module import-light.
        """
        self.checks_run += 1
        nbits = state.patterns.nbits
        overlap = popcount(state.err_mask & state.corr_mask)
        if overlap:
            raise InvariantViolation(
                f"Verr/Vcorr partition not disjoint: {overlap} vector(s) "
                f"in both bit-lists")
        full = np.full_like(state.err_mask,
                            np.uint64(0xFFFFFFFFFFFFFFFF))
        if len(full):
            full[-1] = tail_mask(nbits)
        union = state.err_mask | state.corr_mask
        if popcount(union ^ full):
            missing = nbits - popcount(union)
            raise InvariantViolation(
                f"Verr/Vcorr partition not complete: {missing} of "
                f"{nbits} vector(s) in neither bit-list")
        if state.num_err + state.num_corr != nbits:
            raise InvariantViolation(
                f"vector counts inconsistent: |Verr|={state.num_err} + "
                f"|Vcorr|={state.num_corr} != |V|={nbits}")
        if state.num_err != popcount(state.err_mask):
            raise InvariantViolation(
                f"cached |Verr|={state.num_err} disagrees with err_mask "
                f"popcount {popcount(state.err_mask)}")

    # ------------------------------------------------------------------
    def check_theorem1(self, num_failing: int, num_errors: int) -> None:
        """The ``|Verr|/N`` screen is only applied with N >= 1 and a
        non-empty failing set (a rectified state must never be
        screened — the engine checks ``rectified`` first)."""
        self.checks_run += 1
        if num_errors <= 0:
            raise InvariantViolation(
                f"Theorem 1 screen applied with N={num_errors}; the "
                f"|Verr|/N bound is undefined for N=0")
        if num_failing <= 0:
            raise InvariantViolation(
                "Theorem 1 screen applied to a rectified state "
                "(|Verr|=0); the engine must stop at rectification")

    # ------------------------------------------------------------------
    def check_lines_live(self, state, line_indices) -> None:
        """Decision-tree candidates only reference lines of the state's
        own table whose drivers are live (or primary inputs)."""
        self.checks_run += 1
        table = state.table
        netlist = state.netlist
        allowed = netlist.live_set() | set(netlist.inputs)
        for line_index in line_indices:
            if not 0 <= line_index < len(table):
                raise InvariantViolation(
                    f"correction references line {line_index} outside "
                    f"the state's table (0..{len(table) - 1})")
            driver = table[line_index].driver
            if driver not in allowed:
                raise InvariantViolation(
                    f"correction references line "
                    f"{table.describe(line_index)} whose driver "
                    f"{netlist.gates[driver].name!r} is detached")
