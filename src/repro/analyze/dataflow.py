"""Fixed-point dataflow engine over netlists, and the facts it derives.

A netlist is a sparse graph, and many useful structural facts are the
least (or greatest) fixed point of a monotone transfer function over a
finite lattice attached to every signal.  This module provides:

* a generic worklist engine (:func:`run_dataflow`) that schedules gates
  over the strongly-connected-component condensation of the netlist —
  forward (fanin-to-fanout) or backward (fanout-to-fanin) — and iterates
  chaotically inside each non-trivial SCC until stable.  The engine
  never calls :meth:`Netlist.topo_order`, so it is safe on netlists with
  combinational cycles (the lint rules analyze broken circuits too);
* four concrete analyses, packaged as :class:`NetlistFacts`:

  1. **ternary constant propagation** — Kleene 0/1/X values seeded from
     ``CONST0``/``CONST1`` gates (lattice ``X < 0``, ``X < 1``, height 1;
     gate evaluation is monotone in the information order, so every
     signal changes at most once and the iteration terminates without
     widening);
  2. **structural-hash equivalence classes** — AIG-style literal
     numbering with input sorting, duplicate-operand folding and
     De Morgan negation normalization, so ``AND(a, b)``/``AND(b, a)``
     and ``NOR(a, b)``/``NOT(OR(b, a))`` land in the same class (a
     single deps-first pass over the condensation; members of cyclic
     SCCs get opaque leaf classes, which is conservative);
  3. **static implications** with built-in contrapositive closure —
     the implication graph over the ``2n`` literals ``(signal, value)``,
     transitively closed over its own SCC condensation (reachability
     sets only ever grow and are bounded by the finite literal set, so
     the closure terminates); contradictions (``l=v`` implying both
     ``l'=0`` and ``l'=1``) yield *implied constants* that pure ternary
     propagation cannot see, e.g. ``AND(a, NOT a) = 0``;
  4. **single-path dominators and observability don't-care (ODC)
     conditions per line** — post-dominator sets w.r.t. the primary
     outputs (descending intersection from the universal set; the
     lattice of signal subsets is finite and intersection is monotone,
     so the greatest fixed point is reached without widening), plus the
     classic ODC argument: a change on line *l* is invisible whenever a
     side input of one of its dominators carries the dominator's
     controlling value.

The facts are cached on the netlist itself (``netlist._facts``) and
stamped with the netlist's edit-journal version: :func:`netlist_facts`
returns the cached bundle while the version matches, *repairs* it from
the recorded :class:`~repro.circuit.delta.NetlistDelta` (see
:mod:`repro.analyze.incremental`) when the journal can describe what
changed, and recomputes from scratch only on a full invalidation
(:meth:`Netlist._dirty`).  Consumers: the deep lint rules
(:mod:`repro.analyze.rules_deep`), the rewired ``const-feed`` /
``unobservable-line`` semantic rules, the static suspect pre-screen in
:mod:`repro.diagnose.screening`, and the ``repro facts`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit.gatetypes import GateType, controlling_value
from ..circuit.netlist import Gate, Netlist

__all__ = [
    "DataflowDomain", "run_dataflow", "strongly_connected_components",
    "TernaryConstants", "Implications", "OdcCondition", "NetlistFacts",
    "netlist_facts",
]


# ----------------------------------------------------------------------
# generic machinery
# ----------------------------------------------------------------------
def strongly_connected_components(
        num_nodes: int,
        successors: Callable[[int], Sequence[int]]) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative, on an arbitrary graph.

    Returns the components in *successors-first* order: every component
    appears after all components reachable from it... reversed, i.e. a
    component's successors are emitted *before* it.  Feeding dependency
    edges therefore yields a valid evaluation schedule.
    """
    index = [0] * num_nodes
    low = [0] * num_nodes
    state = bytearray(num_nodes)  # 0 unseen, 1 on stack, 2 done
    comp_stack: List[int] = []
    comps: List[List[int]] = []
    counter = [1]

    for root in range(num_nodes):
        if state[root]:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                state[node] = 1
                comp_stack.append(node)
            succ = successors(node)
            advanced = False
            for pos in range(child, len(succ)):
                nxt = succ[pos]
                if state[nxt] == 0:
                    work[-1] = (node, pos + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if state[nxt] == 1:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp: List[int] = []
                while True:
                    member = comp_stack.pop()
                    state[member] = 2
                    comp.append(member)
                    if member == node:
                        break
                comps.append(comp)
    return comps


class DataflowDomain:
    """One monotone analysis the engine can run to a fixed point.

    Subclasses define the lattice implicitly through ``start`` (the
    iteration origin: bottom for ascending analyses, top for descending
    ones) and ``transfer`` (the monotone function of a gate's dependency
    values).  Termination needs no widening as long as the lattice has
    finite height and ``transfer`` is monotone — each subclass documents
    its own argument.

    Attributes:
        direction: ``"forward"`` (a gate depends on its fanins) or
            ``"backward"`` (a gate depends on its combinational
            fanouts).
        iterate_cycles: when False, members of non-trivial SCCs are not
            iterated; they receive :meth:`cycle_value` instead (used by
            analyses whose transfer is only meaningful on acyclic
            regions, e.g. structural hashing).
    """

    direction = "forward"
    iterate_cycles = True

    def start(self, gate: Gate):
        """Value every gate holds before its component is processed."""
        raise NotImplementedError

    def transfer(self, gate: Gate, values: list):
        """New value of ``gate`` given the current value vector."""
        raise NotImplementedError

    def cycle_value(self, gate: Gate):
        """Value assigned inside cyclic SCCs when ``iterate_cycles`` is
        False (conservative default: the start value)."""
        return self.start(gate)


def _dependency_edges(netlist: Netlist, direction: str) -> List[List[int]]:
    """Per-gate dependency lists for the chosen direction.

    DFF edges are sequential, never combinational, so a DFF has no
    forward dependencies and is never a backward dependency — exactly
    the convention of the simulator and the cone helpers.
    """
    gates = netlist.gates
    if direction == "forward":
        return [[] if g.gtype is GateType.DFF else list(g.fanin)
                for g in gates]
    deps: List[List[int]] = []
    fanouts = netlist.fanouts()
    for i in range(len(gates)):
        deps.append([c for c in dict.fromkeys(fanouts[i])
                     if gates[c].gtype is not GateType.DFF])
    return deps


def run_dataflow(netlist: Netlist, domain: DataflowDomain) -> list:
    """Run ``domain`` to its fixed point; returns one value per gate.

    Scheduling: the SCC condensation of the dependency graph is
    processed dependencies-first.  Acyclic components need exactly one
    transfer application; cyclic components run a chaotic worklist
    restricted to their members until no value changes.  Because every
    domain here is monotone over a finite-height lattice, each member
    of a cyclic SCC is re-evaluated at most ``height * |SCC|`` times.
    """
    gates = netlist.gates
    deps = _dependency_edges(netlist, domain.direction)
    comps = strongly_connected_components(len(gates), deps.__getitem__)
    values: list = [domain.start(g) for g in gates]
    for comp in comps:
        cyclic = len(comp) > 1 or comp[0] in deps[comp[0]]
        if not cyclic:
            i = comp[0]
            values[i] = domain.transfer(gates[i], values)
            continue
        if not domain.iterate_cycles:
            for i in comp:
                values[i] = domain.cycle_value(gates[i])
            continue
        members = set(comp)
        users: Dict[int, List[int]] = {i: [] for i in comp}
        for i in comp:
            for d in deps[i]:
                if d in members:
                    users[d].append(i)
        pending = list(comp)
        queued = set(comp)
        while pending:
            i = pending.pop()
            queued.discard(i)
            new = domain.transfer(gates[i], values)
            if new != values[i]:
                values[i] = new
                for u in users[i]:
                    if u not in queued:
                        queued.add(u)
                        pending.append(u)
    return values


# ----------------------------------------------------------------------
# analysis 1: ternary constant propagation
# ----------------------------------------------------------------------
class TernaryConstants(DataflowDomain):
    """Forward Kleene 0/1/X propagation.

    Lattice: ``None`` (X, unknown) below ``0`` and ``1``, which are
    incomparable maxima — height 1.  Ternary gate evaluation is monotone
    in this information order (a gate whose output is decided by partial
    inputs keeps that output under any refinement), so starting every
    signal at X the iteration ascends at most once per signal and
    terminates.  Inside combinational cycles the least fixed point keeps
    X unless a value is forced from outside the cycle — the sound answer
    for an oscillator.

    ``assume`` optionally pins cut signals (``INPUT``/``DFF`` gates,
    which otherwise start and stay X) to a known value — the hook the
    sequential reset fixpoint uses to replay per-cycle register state
    through the unchanged combinational analysis.
    """

    direction = "forward"
    iterate_cycles = True

    def __init__(self, assume: Optional[Dict[int, Optional[int]]] = None):
        self.assume: Dict[int, Optional[int]] = dict(assume or {})

    def start(self, gate: Gate) -> Optional[int]:
        return None

    def transfer(self, gate: Gate,
                 values: list) -> Optional[int]:
        gt = gate.gtype
        if gt is GateType.CONST0:
            return 0
        if gt is GateType.CONST1:
            return 1
        if gt in (GateType.INPUT, GateType.DFF):
            return self.assume.get(gate.index)
        ins = [values[src] for src in gate.fanin]
        if gt is GateType.BUF:
            return ins[0]
        if gt is GateType.NOT:
            return None if ins[0] is None else 1 - ins[0]
        if gt in (GateType.AND, GateType.NAND):
            if any(v == 0 for v in ins):
                core: Optional[int] = 0
            elif all(v == 1 for v in ins):
                core = 1
            else:
                core = None
            if core is not None and gt is GateType.NAND:
                core = 1 - core
            return core
        if gt in (GateType.OR, GateType.NOR):
            if any(v == 1 for v in ins):
                core = 1
            elif all(v == 0 for v in ins):
                core = 0
            else:
                core = None
            if core is not None and gt is GateType.NOR:
                core = 1 - core
            return core
        # XOR/XNOR: constant only when every input is known.
        if any(v is None for v in ins):
            return None
        acc = 0
        for v in ins:
            acc ^= v
        return acc if gt is GateType.XOR else 1 - acc


# ----------------------------------------------------------------------
# analysis 2: structural-hash equivalence classes
# ----------------------------------------------------------------------
#: Class id reserved for the constant-zero function; the constant-one
#: literal is its negation.
_CONST_CLASS = 0

_LIT_FALSE = (_CONST_CLASS, False)
_LIT_TRUE = (_CONST_CLASS, True)


class _StructuralClasses(DataflowDomain):
    """Forward literal numbering under negation/sorting normalization.

    Every signal is assigned a *literal* ``(class, negated)``.  AND-like
    and OR-like gates are normalized to an AND key over literals via
    De Morgan; XOR-like gates to an XOR key over classes with the parity
    of negations folded into the literal's phase.  Keys are hash-consed
    in ``self.memo``, so two gates computing the same normalized
    function share a class.  The pass is a single deps-first sweep (the
    memo only ever grows and a gate's key is a pure function of its
    fanin literals, so no iteration is needed on acyclic regions);
    members of cyclic SCCs receive opaque per-gate leaf classes, which
    only under-approximates equivalence — never wrongly merges.
    """

    direction = "forward"
    iterate_cycles = False

    def __init__(self, constants: Sequence[Optional[int]]):
        self.constants = constants
        self.memo: Dict[tuple, int] = {}
        self.next_class = _CONST_CLASS + 1

    # -- helpers -------------------------------------------------------
    def _fresh(self, key: tuple) -> int:
        cls = self.memo.get(key)
        if cls is None:
            cls = self.next_class
            self.next_class += 1
            self.memo[key] = cls
        return cls

    def _and_key(self, lits: Sequence[Tuple[int, bool]]
                 ) -> Tuple[int, bool]:
        ordered = []
        seen = set()
        for lit in lits:
            if lit == _LIT_FALSE:
                return _LIT_FALSE
            if lit == _LIT_TRUE:
                continue
            if lit in seen:
                continue  # x AND x = x
            if (lit[0], not lit[1]) in seen:
                return _LIT_FALSE  # x AND NOT x = 0
            seen.add(lit)
            ordered.append(lit)
        if not ordered:
            return _LIT_TRUE
        if len(ordered) == 1:
            return ordered[0]
        key = ("and", tuple(sorted(ordered)))
        return (self._fresh(key), False)

    def _xor_key(self, lits: Sequence[Tuple[int, bool]]
                 ) -> Tuple[int, bool]:
        phase = False
        counts: Dict[int, int] = {}
        for cls, neg in lits:
            phase ^= neg
            counts[cls] = counts.get(cls, 0) + 1
        classes = sorted(cls for cls, cnt in counts.items()
                         if cnt % 2 and cls != _CONST_CLASS)
        if not classes:
            return (_CONST_CLASS, phase)
        if len(classes) == 1:
            return (classes[0], phase)
        key = ("xor", tuple(classes))
        return (self._fresh(key), phase)

    @staticmethod
    def _negate(lit: Tuple[int, bool]) -> Tuple[int, bool]:
        return (lit[0], not lit[1])

    # -- domain interface ----------------------------------------------
    def start(self, gate: Gate) -> Tuple[int, bool]:
        return (self._fresh(("leaf", gate.index)), False)

    def cycle_value(self, gate: Gate) -> Tuple[int, bool]:
        return (self._fresh(("cyclic", gate.index)), False)

    def transfer(self, gate: Gate, values: list) -> Tuple[int, bool]:
        const = self.constants[gate.index]
        if const is not None:
            return _LIT_TRUE if const else _LIT_FALSE
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.DFF):
            return (self._fresh(("leaf", gate.index)), False)
        lits = [values[src] for src in gate.fanin]
        if gt is GateType.BUF:
            return lits[0]
        if gt is GateType.NOT:
            return self._negate(lits[0])
        if gt is GateType.AND:
            return self._and_key(lits)
        if gt is GateType.NAND:
            return self._negate(self._and_key(lits))
        if gt is GateType.OR:
            return self._negate(
                self._and_key([self._negate(lit) for lit in lits]))
        if gt is GateType.NOR:
            return self._and_key([self._negate(lit) for lit in lits])
        if gt is GateType.XOR:
            return self._xor_key(lits)
        if gt is GateType.XNOR:
            return self._negate(self._xor_key(lits))
        # CONST gates were handled through ``constants`` above.
        return _LIT_TRUE if gt is GateType.CONST1 else _LIT_FALSE


# ----------------------------------------------------------------------
# analysis 3: static implications with contrapositive closure
# ----------------------------------------------------------------------
class Implications:
    """The implication graph over literals ``(signal, value)``, closed.

    Node encoding: literal ``signal = v`` is node ``2 * signal + v``;
    its negation is ``node ^ 1``.  Every direct edge is added together
    with its contrapositive, so the closure is contrapositive-complete
    by construction.  Transitive closure runs over the graph's SCC
    condensation; each component's reachability set is the union of its
    members and its successors' sets.  Reachability sets are subsets of
    the finite literal universe and only grow, so the computation is a
    terminating ascending fixed point.

    A literal is *impossible* when it reaches a literal known false
    (the complement of a propagated constant) or reaches both phases of
    some signal; the complement of an impossible literal is an *implied
    constant* — this is how ``AND(a, NOT a)`` is proven 0.
    """

    def __init__(self, netlist: Netlist,
                 constants: Dict[int, int]):
        self.netlist = netlist
        n = len(netlist.gates)
        self.num_nodes = 2 * n
        self._succ: List[List[int]] = [[] for _ in range(self.num_nodes)]
        # Direct edges recorded per gate so a repair can retract exactly
        # the edges an edited gate contributed (repro.analyze.incremental).
        self._gate_edges: Dict[int, List[Tuple[int, int]]] = {}
        self._build(netlist)
        self._reach = self._close()
        self._impossible = self._find_impossible(constants)
        self.implied_constants = self._implied_constants()
        #: Literal nodes whose reachability set the last delta repair
        #: recomputed (``None`` for a scratch build) — lets downstream
        #: repairs (testability verdicts) re-derive only what moved.
        self.repair_affected: Optional[frozenset] = None

    # -- construction --------------------------------------------------
    def _edge(self, u: int, w: int) -> None:
        """Add ``u -> w`` and its contrapositive ``not w -> not u``."""
        self._succ[u].append(w)
        self._succ[w ^ 1].append(u ^ 1)

    @staticmethod
    def edges_for_gate(gate: Gate) -> List[Tuple[int, int]]:
        """Direct implication edges contributed by one gate (the
        contrapositives are added separately by :meth:`_edge`)."""
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.CONST0, GateType.CONST1,
                  GateType.DFF):
            return []
        g1 = 2 * gate.index + 1
        g0 = 2 * gate.index
        ins = gate.fanin
        unary_like = len(ins) == 1
        edges: List[Tuple[int, int]] = []
        if gt is GateType.BUF or (unary_like and gt in (
                GateType.AND, GateType.OR, GateType.XOR)):
            edges.append((g1, 2 * ins[0] + 1))
            edges.append((g0, 2 * ins[0]))
        elif gt is GateType.NOT or (unary_like and gt in (
                GateType.NAND, GateType.NOR, GateType.XNOR)):
            edges.append((g1, 2 * ins[0]))
            edges.append((g0, 2 * ins[0] + 1))
        elif gt is GateType.AND:
            for src in ins:
                edges.append((g1, 2 * src + 1))
        elif gt is GateType.NAND:
            for src in ins:
                edges.append((g0, 2 * src + 1))
        elif gt is GateType.OR:
            for src in ins:
                edges.append((g0, 2 * src))
        elif gt is GateType.NOR:
            for src in ins:
                edges.append((g1, 2 * src))
        # XOR/XNOR with >= 2 inputs admit no single-literal implications.
        return edges

    def _build(self, netlist: Netlist) -> None:
        for gate in netlist.gates:
            edges = self.edges_for_gate(gate)
            if edges:
                self._gate_edges[gate.index] = edges
                for u, w in edges:
                    self._edge(u, w)

    # -- closure -------------------------------------------------------
    def _close(self) -> List[int]:
        comps = strongly_connected_components(
            self.num_nodes, self._succ.__getitem__)
        comp_of = [0] * self.num_nodes
        for cid, comp in enumerate(comps):
            for node in comp:
                comp_of[node] = cid
        comp_reach: List[int] = [0] * len(comps)
        # Tarjan order is successors-first, so every edge target's
        # component set is final before it is unioned in here.
        for cid, comp in enumerate(comps):
            bits = 0
            for node in comp:
                bits |= 1 << node
                for w in self._succ[node]:
                    bits |= comp_reach[comp_of[w]]
            comp_reach[cid] = bits
        return [comp_reach[comp_of[u]] for u in range(self.num_nodes)]

    def _find_impossible(self, constants: Dict[int, int]) -> int:
        seeds = 0
        for signal, value in constants.items():
            seeds |= 1 << (2 * signal + (1 - value))
        n = self.num_nodes // 2
        even_mask = (pow(4, n) - 1) // 3 if n else 0
        impossible = 0
        for u in range(self.num_nodes):
            r = self._reach[u]
            if r & seeds:
                impossible |= 1 << u
                continue
            if (r & (r >> 1)) & even_mask:
                impossible |= 1 << u
        return impossible

    def _implied_constants(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for signal in range(self.num_nodes // 2):
            zero_bad = (self._impossible >> (2 * signal)) & 1
            one_bad = (self._impossible >> (2 * signal + 1)) & 1
            if zero_bad and one_bad:
                continue  # inconsistent region (cyclic netlist); punt
            if one_bad:
                out[signal] = 0
            elif zero_bad:
                out[signal] = 1
        return out

    # -- queries -------------------------------------------------------
    def holds(self, signal: int, value: int,
              other: int, other_value: int) -> bool:
        """True when ``signal=value`` statically implies
        ``other=other_value``."""
        u = 2 * signal + value
        return bool((self._reach[u] >> (2 * other + other_value)) & 1)

    def impossible(self, signal: int, value: int) -> bool:
        """True when ``signal=value`` occurs in no consistent
        assignment."""
        return bool((self._impossible >> (2 * signal + value)) & 1)

    def implied_by(self, signal: int, value: int
                   ) -> List[Tuple[int, int]]:
        """All literals implied by ``signal=value`` (excluding itself)."""
        u = 2 * signal + value
        r = self._reach[u] & ~(1 << u)
        out: List[Tuple[int, int]] = []
        node = 0
        while r:
            if r & 1:
                out.append((node >> 1, node & 1))
            r >>= 1
            node += 1
        return out

    def edge_count(self) -> int:
        """Number of non-trivial closed implications (diagnostic)."""
        total = 0
        for u in range(self.num_nodes):
            r = self._reach[u] & ~(1 << u)
            total += bin(r).count("1")
        return total


# ----------------------------------------------------------------------
# analysis 4: dominators and ODCs
# ----------------------------------------------------------------------
class _Dominators(DataflowDomain):
    """Backward post-dominator sets w.r.t. the primary outputs.

    Value per signal: an int bitset of the signals every combinational
    path from it to *any* primary output passes through (itself
    included); ``dom(po) = {po}`` because observation happens at the
    output pin.  Transfer intersects over the observable combinational
    consumers.  Iteration starts at the universal set (top) and only
    descends; the lattice of signal subsets is finite, intersection and
    union are monotone, so the greatest fixed point is reached without
    widening.  Signals with no path to an output are resolved separately
    by plain reachability (:class:`NetlistFacts` reports them
    unobservable and gives them no dominator set).
    """

    direction = "backward"
    iterate_cycles = True

    def __init__(self, netlist: Netlist, observable: frozenset):
        self.netlist = netlist
        self.observable = observable
        self.outputs = set(netlist.outputs)
        self.universe = (1 << len(netlist.gates)) - 1

    def start(self, gate: Gate) -> int:
        return self.universe

    def transfer(self, gate: Gate, values: list) -> int:
        i = gate.index
        if i not in self.observable:
            return self.universe  # dead; filtered out afterwards
        if i in self.outputs:
            return 1 << i
        meet = self.universe
        gates = self.netlist.gates
        for consumer in dict.fromkeys(self.netlist.fanouts()[i]):
            if gates[consumer].gtype is GateType.DFF:
                continue
            if consumer in self.observable:
                meet &= values[consumer]
        return meet | (1 << i)


@dataclass(frozen=True)
class OdcCondition:
    """One observability don't-care condition of a line.

    Changes on the line are invisible at every primary output whenever
    ``side_input`` (a fanin of ``dominator`` outside the line's fanout
    cone) carries ``ctrl``, the dominator's controlling value.
    """

    dominator: int
    side_input: int
    ctrl: int


# ----------------------------------------------------------------------
# the facts bundle
# ----------------------------------------------------------------------
class NetlistFacts:
    """Lazily-computed static facts about one netlist snapshot.

    Obtain through :func:`netlist_facts`; the instance is cached on the
    netlist and dropped on any structural mutation, so facts never
    outlive the structure they describe.  Sections are materialized on
    first use: constants and equivalence classes are cheap single
    sweeps, dominators one backward fixed point, implications (the
    priciest) only on demand — the diagnosis pre-screen runs without
    them, deep lint forces them.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        #: Edit-journal version this bundle describes; when the netlist
        #: moves past it, :func:`netlist_facts` repairs or recomputes.
        self.version: int = netlist._version
        self._constants: Optional[Dict[int, int]] = None
        self._literals: Optional[List[Tuple[int, bool]]] = None
        self._lit_domain: Optional[_StructuralClasses] = None
        self._implications: Optional[Implications] = None
        self._observable: Optional[frozenset] = None
        self._dominators: Optional[List[Optional[int]]] = None
        self._cones: Dict[int, frozenset] = {}
        self._blocked: Dict[bool, frozenset] = {}
        self._scoap: Optional[object] = None
        self._testability: Optional[object] = None
        self._prover: Optional[object] = None
        self._seq_prover: Optional[object] = None
        self._reset: Dict[tuple, object] = {}

    # -- constants -----------------------------------------------------
    def constants(self) -> Dict[int, int]:
        """Signals with a structurally-forced value (ternary CP only)."""
        if self._constants is None:
            values = run_dataflow(self.netlist, TernaryConstants())
            self._constants = {i: v for i, v in enumerate(values)
                               if v is not None}
        return self._constants

    def implied_constants(self) -> Dict[int, int]:
        """Extra constants proven by implication contradictions."""
        consts = self.constants()
        return {i: v for i, v in self.implications()
                .implied_constants.items() if i not in consts}

    def structural_constants(self) -> Dict[int, int]:
        """Constants proven by hash-consing alone, e.g. ``XOR(g, g)``.

        These are invisible to both ternary propagation (the inputs are
        X) and the implication closure (XOR admits no single-literal
        implications); cancellation in the normalized key is what
        exposes them.
        """
        lits = self.literals()
        consts = self.constants()
        return {i: int(lit[1]) for i, lit in enumerate(lits)
                if lit[0] == _CONST_CLASS and i not in consts}

    def known_constants(self, deep: bool = False) -> Dict[int, int]:
        """Ternary constants, plus implication- and hash-derived ones
        if ``deep``.

        When the implication analysis has not been materialized and
        ``deep`` is False, no extra analysis work is triggered.
        """
        out = dict(self.constants())
        if deep or self._implications is not None:
            out.update(self.implications().implied_constants)
            out.update(self.structural_constants())
        return out

    # -- equivalence classes -------------------------------------------
    def literals(self) -> List[Tuple[int, bool]]:
        """Normalized literal ``(class, negated)`` per signal."""
        if self._literals is None:
            domain = _StructuralClasses(
                [self.constants().get(i)
                 for i in range(len(self.netlist.gates))])
            self._literals = run_dataflow(self.netlist, domain)
            self._lit_domain = domain
        return self._literals

    def duplicate_groups(self) -> List[List[int]]:
        """Groups of >= 2 gates computing the identical function.

        Constant literals are excluded (they belong to the constant
        facts) and so are ``INPUT``/``DFF``/``CONST`` gates, whose
        literals are definitionally unique leaves.
        """
        groups: Dict[Tuple[int, bool], List[int]] = {}
        lits = self.literals()
        for gate in self.netlist.gates:
            if gate.gtype in (GateType.INPUT, GateType.DFF,
                              GateType.CONST0, GateType.CONST1):
                continue
            lit = lits[gate.index]
            if lit[0] == _CONST_CLASS:
                continue
            groups.setdefault(lit, []).append(gate.index)
        # Sorted by member content, not by raw class id: the partition is
        # the invariant — ids may differ between a scratch numbering and
        # a delta-repaired one that reuses the memo.
        return sorted(sorted(members) for members in groups.values()
                      if len(members) >= 2)

    # -- implications --------------------------------------------------
    def implications(self) -> Implications:
        if self._implications is None:
            self._implications = Implications(self.netlist,
                                              self.constants())
            self._blocked.clear()  # deep blocking may now see more
        return self._implications

    # -- observability / dominators ------------------------------------
    def observable_set(self) -> frozenset:
        """Signals with a combinational path to some primary output."""
        if self._observable is None:
            gates = self.netlist.gates
            seen: set = set()
            stack = list(self.netlist.outputs)
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                if gates[node].gtype is not GateType.DFF:
                    stack.extend(gates[node].fanin)
            self._observable = frozenset(seen)
        return self._observable

    def observable(self, signal: int) -> bool:
        return signal in self.observable_set()

    def _dom_bits(self) -> List[Optional[int]]:
        if self._dominators is None:
            obs = self.observable_set()
            values = run_dataflow(self.netlist,
                                  _Dominators(self.netlist, obs))
            self._dominators = [values[i] if i in obs else None
                                for i in range(len(self.netlist.gates))]
        return self._dominators

    def dominators(self, signal: int) -> Optional[frozenset]:
        """Signals on every path from ``signal`` to a primary output
        (``signal`` included), or ``None`` when no such path exists."""
        bits = self._dom_bits()[signal]
        if bits is None:
            return None
        out = set()
        node = 0
        while bits:
            if bits & 1:
                out.add(node)
            bits >>= 1
            node += 1
        return frozenset(out)

    # -- cones (BFS membership only; cycle-safe on purpose) ------------
    def cone(self, signal: int) -> frozenset:
        """Fanout-cone membership of ``signal`` (itself included).

        Computed with a plain BFS rather than
        :meth:`Netlist.sorted_cone` so lint can run on netlists with
        combinational cycles, where topological sorting raises.
        """
        cached = self._cones.get(signal)
        if cached is not None:
            return cached
        gates = self.netlist.gates
        fanouts = self.netlist.fanouts()
        seen = {signal}
        stack = [signal]
        while stack:
            node = stack.pop()
            for nxt in fanouts[node]:
                if nxt not in seen and gates[nxt].gtype is not GateType.DFF:
                    seen.add(nxt)
                    stack.append(nxt)
        cone = frozenset(seen)
        self._cones[signal] = cone
        return cone

    # -- ODCs ----------------------------------------------------------
    def odc_conditions(self, signal: int) -> Tuple[OdcCondition, ...]:
        """Static ODC conditions of a line, sorted for determinism.

        Only side inputs *outside* the line's fanout cone qualify: a
        reconvergent side input changes together with the line, so its
        value cannot be assumed stable while the line is faulty.
        """
        dom = self.dominators(signal)
        if dom is None:
            return ()
        cone = self.cone(signal)
        gates = self.netlist.gates
        conditions: List[OdcCondition] = []
        for d in sorted(dom):
            if d == signal:
                continue
            ctrl = controlling_value(gates[d].gtype)
            if ctrl is None:
                continue
            for src in gates[d].fanin:
                if src not in cone:
                    conditions.append(OdcCondition(d, src, ctrl))
        return tuple(conditions)

    def statically_blocked(self, signal: int, deep: bool = False) -> bool:
        """True when no change on ``signal`` can ever reach an output.

        Soundness: a fault/correction on the line only perturbs values
        inside its fanout cone; a side input outside the cone keeps its
        fault-free value, and a proven-constant controlling side input
        of a dominator therefore kills the difference on *every* path,
        for *every* vector.  ``deep`` additionally uses
        implication-derived constants (forces the implication
        analysis).
        """
        return signal in self.blocked_signals(deep)

    def blocked_signals(self, deep: bool = False) -> frozenset:
        """All signals whose ODC conditions are statically always-on."""
        key = bool(deep) or self._implications is not None
        cached = self._blocked.get(key)
        if cached is not None:
            return cached
        consts = self.known_constants(deep=key)
        blocked = set()
        for gate in self.netlist.gates:
            i = gate.index
            if not self.observable(i):
                continue
            for cond in self.odc_conditions(i):
                if consts.get(cond.side_input) == cond.ctrl:
                    blocked.add(i)
                    break
        result = frozenset(blocked)
        self._blocked[key] = result
        return result

    # -- testability ----------------------------------------------------
    def scoap(self):
        """SCOAP CC0/CC1/CO cost vectors for this snapshot.

        Computed by the saturating min-plus lattices of
        :mod:`repro.analyze.testability` on this engine (cycle-safe);
        cached and delta-repaired like every other section.
        """
        if self._scoap is None:
            from .testability import scoap_costs
            self._scoap = scoap_costs(self.netlist)
        return self._scoap

    def testability(self):
        """Static untestable-fault identification for this snapshot.

        Requirement-literal records per fault site plus the set of
        statically-proven untestable stuck-at faults (see
        :mod:`repro.analyze.testability`).  Forces the implication
        closure on first use.
        """
        if self._testability is None:
            from .testability import derive_testability
            self._testability = derive_testability(self)
        return self._testability

    # -- proofs ---------------------------------------------------------
    def prover(self, conflict_budget: Optional[int] = None,
               nvectors: Optional[int] = None, seed: int = 0):
        """The SAT-sweeping prover for this snapshot, built once.

        The :class:`~repro.analyze.prove.Prover` carries the Tseitin
        encoding of the whole combinational core plus the accumulated
        simulation signatures; caching it here ties its lifetime to the
        facts bundle, so :meth:`Netlist._dirty` invalidates the CNF with
        every other derived structure.  ``conflict_budget`` updates the
        cached instance's per-query budget; ``nvectors``/``seed`` only
        apply on first construction.  Raises
        :class:`~repro.errors.NetlistError` on combinational cycles.
        """
        from .prove import DEFAULT_CONFLICT_BUDGET, DEFAULT_VECTORS, Prover

        if self._prover is None:
            self._prover = Prover(
                self.netlist, facts=self,
                conflict_budget=(DEFAULT_CONFLICT_BUDGET
                                 if conflict_budget is None
                                 else conflict_budget),
                nvectors=(DEFAULT_VECTORS if nvectors is None
                          else nvectors),
                seed=seed, retirable=True)
        elif conflict_budget is not None:
            self._prover.conflict_budget = conflict_budget
        return self._prover

    # -- sequential facts -----------------------------------------------
    def reset_fixpoint(self, initial_state=0):
        """The reset-state ternary fixpoint of this netlist, cached per
        initial state (see :func:`repro.analyze.seq.reset_fixpoint`).

        Like every other section of the bundle the result describes one
        structural snapshot and is dropped by :meth:`Netlist._dirty`.
        """
        from ..circuit.sequential import normalize_initial_state
        from .seq import reset_fixpoint

        state = normalize_initial_state(self.netlist, initial_state)
        key = tuple(sorted(state.items(),
                           key=lambda kv: (kv[0], kv[1] is None)))
        cached = self._reset.get(key)
        if cached is None:
            cached = reset_fixpoint(self.netlist, state)
            self._reset[key] = cached
        return cached

    def seq_prover(self, k: Optional[int] = None,
                   conflict_budget: Optional[int] = None,
                   nvectors: Optional[int] = None, seed: int = 0,
                   initial_state=0):
        """The k-induction correspondence prover, built once per snapshot.

        Mirrors :meth:`prover`: the
        :class:`~repro.analyze.seq.SeqProver` carries the unrolled
        Tseitin encodings and the per-frame simulation signatures, so
        caching it here ties its lifetime to the facts bundle and
        :meth:`Netlist._dirty` invalidates it with everything else.
        ``conflict_budget`` updates the cached instance's per-query
        budget; ``k``/``nvectors``/``seed``/``initial_state`` only apply
        on first construction.
        """
        from .seq import (DEFAULT_INDUCTION_K, DEFAULT_SEQ_BUDGET,
                          DEFAULT_SEQ_VECTORS, SeqProver)

        if self._seq_prover is None:
            self._seq_prover = SeqProver(
                self.netlist, facts=self,
                k=DEFAULT_INDUCTION_K if k is None else k,
                conflict_budget=(DEFAULT_SEQ_BUDGET
                                 if conflict_budget is None
                                 else conflict_budget),
                nvectors=(DEFAULT_SEQ_VECTORS if nvectors is None
                          else nvectors),
                seed=seed, initial_state=initial_state)
        elif conflict_budget is not None:
            self._seq_prover.conflict_budget = conflict_budget
        return self._seq_prover

    # -- reporting ------------------------------------------------------
    def summary(self, deep: bool = True, seq: bool = False,
                testability: bool = False) -> dict:
        """Deterministic JSON-ready digest (the ``repro facts`` CLI)."""
        names = [g.name for g in self.netlist.gates]
        consts = self.constants()
        if deep:
            implied = {i: v for i, v in self.known_constants(True).items()
                       if i not in consts}
        else:
            implied = {}
        live = self.netlist.live_set()
        unobs = sorted(names[i] for i in range(len(names))
                       if i in live and not self.observable(i))
        blocked = sorted(names[i]
                         for i in self.blocked_signals(deep=deep))
        dup = [[names[i] for i in group]
               for group in self.duplicate_groups()]
        out = {
            "netlist": self.netlist.name,
            "gates": len(names),
            "constants": {names[i]: v
                          for i, v in sorted(consts.items())},
            "implied_constants": {names[i]: v
                                  for i, v in sorted(implied.items())},
            "duplicate_groups": sorted(dup),
            "unobservable": unobs,
            "odc_blocked": blocked,
        }
        if deep:
            out["implications"] = self.implications().edge_count()
        if testability:
            from .testability import INF, describe_site
            sc = self.scoap()
            tb = self.testability()
            finite_cc = [max(c0, c1) for c0, c1 in zip(sc.cc0, sc.cc1)
                         if max(c0, c1) < INF]
            finite_co = [c for c in sc.co if c < INF]
            out["testability"] = {
                "max_cc": max(finite_cc, default=0),
                "max_co": max(finite_co, default=0),
                "untestable_faults": sorted(
                    f"{describe_site(self.netlist, site)}/sa{value}: "
                    f"{verdict.reason}"
                    for (site, value), verdict in tb.untestable.items()
                    if site[1] in live),
            }
        if seq and self.netlist.dffs():
            fx = self.reset_fixpoint()
            result = self.seq_prover().sweep()
            comb = self.constants()
            out["seq"] = {
                "fixpoint_iterations": fx.iterations,
                "stuck_registers": {
                    names[d]: v
                    for d, v in sorted(fx.stuck_registers.items())},
                "seq_constants": {
                    names[i]: v for i, v in sorted(fx.constants.items())
                    if i not in comb
                    and i not in fx.stuck_registers},
                "induction_k": result.k,
                "proven_constants": {
                    names[i]: pc.value
                    for i, pc in sorted(result.constants.items())
                    if i not in comb},
                "proven_classes": sorted(
                    [sorted(names[s] for s, _ph in members)
                     for members in result.classes]),
            }
        return out


class FactsCacheStats:
    """Process-wide tally of :func:`netlist_facts` cache decisions.

    ``facts_reused`` counts bundles repaired from an edit-journal delta,
    ``facts_recomputed`` bundles built from scratch (first touch or full
    invalidation), ``delta_edits`` the journal records those repairs
    replayed.  Same-version cache hits move nothing.  Surfaced by
    ``repro facts --stats`` so incrementality is observable end to end.
    """

    __slots__ = ("facts_reused", "facts_recomputed", "delta_edits")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.facts_reused = 0
        self.facts_recomputed = 0
        self.delta_edits = 0

    def snapshot(self) -> dict:
        return {"facts_reused": self.facts_reused,
                "facts_recomputed": self.facts_recomputed,
                "delta_edits": self.delta_edits}


#: The module-wide counter instance (reset it before a measured block).
FACTS_CACHE = FactsCacheStats()


def netlist_facts(netlist: Netlist) -> NetlistFacts:
    """The facts bundle for ``netlist``, cached and version-checked.

    The cache rides on ``netlist._facts``.  While the netlist's
    edit-journal version matches the bundle's, the cached object is
    returned as-is.  After journalled mutations the bundle is *repaired*
    from the delta (:func:`repro.analyze.incremental.warm_facts` —
    only the materialized sections pay, and only cone-locally); a full
    invalidation (:meth:`Netlist._dirty`) cleared the cache entirely, so
    a stale bundle can never describe a mutated circuit.  Either way a
    *new* bundle object is installed after a mutation: identity of the
    returned object certifies an unchanged snapshot.
    """
    facts = netlist._facts
    if isinstance(facts, NetlistFacts):
        if facts.version == netlist._version:
            return facts
        delta = netlist.edits_since(facts.version)
        if delta is not None:
            from .incremental import warm_facts

            fresh = warm_facts(netlist, facts, delta)
            netlist._facts = fresh
            FACTS_CACHE.facts_reused += 1
            FACTS_CACHE.delta_edits += len(delta)
            return fresh
    fresh = NetlistFacts(netlist)
    netlist._facts = fresh
    FACTS_CACHE.facts_recomputed += 1
    return fresh
