"""Core of the static-analysis engine: diagnostics, rules, registry.

A *rule* is a named check over a :class:`~repro.circuit.netlist.Netlist`
that yields :class:`Diagnostic` records.  Rules belong to a *group*
(``structural``, ``semantic`` or ``deep``) and carry a default
:class:`Severity`.
The :class:`RuleRegistry` holds every known rule; the module-level
:data:`DEFAULT_REGISTRY` is what the lint driver and the ``validate()``
shim use.

Structural rules check the invariants the rest of the library assumes
(index/arity/name-map integrity); semantic rules reason about the logic
(dead cones, combinational loops, unobservable lines) and are only run
once the structure is sound, because their graph traversals would crash
on out-of-range indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..circuit.netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dataflow import NetlistFacts


class Severity(enum.IntEnum):
    """How bad a diagnostic is.  Ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule on one netlist.

    Attributes:
        rule: id of the rule that produced this finding.
        severity: effective severity (usually the rule's default).
        message: human-readable description, self-contained.
        gate: name of the offending gate, when one exists.
        data: extra machine-readable context (cycle path, pin, ...).
    """

    rule: str
    severity: Severity
    message: str
    gate: str | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form used by the JSON reporter."""
        out = {"rule": self.rule, "severity": str(self.severity),
               "message": self.message}
        if self.gate is not None:
            out["gate"] = self.gate
        if self.data:
            out["data"] = self.data
        return out


class AnalysisContext:
    """Shared per-run scratch space handed to every rule.

    Caches the graph views several rules need (fanouts, live set) so a
    full lint pass stays a small constant number of netlist traversals.
    All cached views are cycle-safe; rules must not call
    :meth:`Netlist.topo_order` (it raises on combinational loops —
    detecting those is a rule's job, not a crash).
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        #: Per-query conflict budget for the ``prove`` rule group
        #: (None = the engine default); set by the lint driver.
        self.prove_budget: int | None = None
        #: Per-query conflict budget for the ``seq`` rule group
        #: (None = the engine default); set by the lint driver.
        self.seq_budget: int | None = None
        #: SCOAP alarm thresholds for the ``testability`` rule group
        #: (None = the rules' defaults); set by the lint driver.
        self.cc_threshold: int | None = None
        self.co_threshold: int | None = None
        self._fanouts: list[list[int]] | None = None
        self._live: set[int] | None = None

    def fanouts(self) -> list[list[int]]:
        if self._fanouts is None:
            self._fanouts = self.netlist.fanouts()
        return self._fanouts

    def live(self) -> set[int]:
        if self._live is None:
            self._live = self.netlist.live_set()
        return self._live

    def facts(self) -> "NetlistFacts":
        """The netlist's dataflow facts (cached on the netlist itself).

        Everything in the bundle is computed with cycle-safe SCC
        scheduling, so rules may use it even on looped netlists.
        """
        from .dataflow import netlist_facts
        return netlist_facts(self.netlist)


#: Signature every rule check implements.
CheckFn = Callable[[AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered check.

    Attributes:
        id: stable kebab-case identifier (used for suppression).
        group: ``structural``, ``semantic`` or ``deep``.
        severity: default severity of this rule's diagnostics.
        description: one-line summary for ``repro lint --list-rules``.
        check: the function producing diagnostics.
    """

    id: str
    group: str
    severity: Severity
    description: str
    check: CheckFn

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        return list(self.check(ctx))


class RuleRegistry:
    """Ordered collection of rules, addressable by id and by group."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def rule(self, rule_id: str, group: str, severity: Severity,
             description: str) -> Callable[[CheckFn], CheckFn]:
        """Decorator registering ``check`` as a rule."""
        def wrap(check: CheckFn) -> CheckFn:
            self.register(Rule(rule_id, group, severity, description,
                               check))
            return check
        return wrap

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule {rule_id!r}") from None

    def group(self, group: str) -> list[Rule]:
        return [r for r in self._rules.values() if r.group == group]

    def ids(self) -> list[str]:
        return list(self._rules)


#: The registry the lint driver, CLI and ``validate()`` shim all use.
#: Importing :mod:`repro.analyze` populates it with the built-in rules.
DEFAULT_REGISTRY = RuleRegistry()
