"""Lint report container and the text / JSON reporters."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .core import Diagnostic, Severity


@dataclass
class LintReport:
    """Everything one lint pass found on one netlist.

    Attributes:
        netlist_name: name of the analyzed netlist.
        diagnostics: findings, in rule-registration order.
        skipped_groups: rule groups not run (semantic rules are skipped
            while structural errors are present).
        suppressed: rule ids the caller suppressed for this run.
        prove_stats: effort accounting of the SAT-sweep when the
            ``prove`` group ran (queries, proven/refuted/unknown
            counts, conflicts, solver stats), else ``None``.
        seq_stats: effort accounting of the sequential sweep when the
            ``seq`` group ran (induction depth, fixpoint iterations,
            base/step queries, proven/refuted/unknown counts,
            conflicts), else ``None``.
    """

    netlist_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    skipped_groups: list[str] = field(default_factory=list)
    suppressed: list[str] = field(default_factory=list)
    prove_stats: dict | None = None
    seq_stats: dict | None = None

    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def clean(self) -> bool:
        """True when nothing at all was reported."""
        return not self.diagnostics

    @property
    def ok(self) -> bool:
        """True when no *error* was reported (warnings/info allowed)."""
        return not self.errors

    def counts(self) -> dict:
        out = {str(sev): 0 for sev in Severity}
        for diag in self.diagnostics:
            out[str(diag.severity)] += 1
        return out

    def exit_code(self, strict: bool = False) -> int:
        """CLI convention: 0 clean/info, 1 findings.

        Errors always exit 1; warnings exit 1 only under ``strict``.
        (Exit 2 is reserved by the CLI for unreadable/unparsable input.)
        """
        if self.errors or (strict and self.warnings):
            return 1
        return 0

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Human-readable report, one line per finding plus a summary."""
        lines = []
        for diag in self.diagnostics:
            lines.append(f"{self.netlist_name}: {diag.severity}: "
                         f"[{diag.rule}] {diag.message}")
        counts = self.counts()
        summary = (f"{self.netlist_name}: {counts['error']} error(s), "
                   f"{counts['warning']} warning(s), "
                   f"{counts['info']} info")
        if self.skipped_groups:
            summary += (" (skipped " + ", ".join(self.skipped_groups)
                        + " rules until structural errors are fixed)")
        lines.append(summary)
        if self.prove_stats:
            lines.append(
                f"{self.netlist_name}: prove: "
                f"{self.prove_stats.get('queries', 0)} SAT queries, "
                f"{self.prove_stats.get('proven', 0)} proven, "
                f"{self.prove_stats.get('refuted', 0)} refuted, "
                f"{self.prove_stats.get('unknown', 0)} unknown, "
                f"{self.prove_stats.get('conflicts', 0)} conflicts")
        if self.seq_stats:
            lines.append(
                f"{self.netlist_name}: seq: "
                f"k={self.seq_stats.get('k', 0)}, "
                f"{self.seq_stats.get('fixpoint_iterations', 0)} "
                f"fixpoint sweep(s), "
                f"{self.seq_stats.get('base_queries', 0)} base + "
                f"{self.seq_stats.get('step_queries', 0)} step queries, "
                f"{self.seq_stats.get('proven', 0)} proven, "
                f"{self.seq_stats.get('refuted', 0)} refuted, "
                f"{self.seq_stats.get('unknown', 0)} unknown, "
                f"{self.seq_stats.get('conflicts', 0)} conflicts")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form with fully deterministic ordering.

        Diagnostics are sorted by (rule, gate, message) — not left in
        rule-registration order — so byte-identical output survives
        rule reordering and makes CI diffs reproducible.  Every entry
        carries its severity; the netlist name is at the top level.
        """
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.rule, d.gate or "", d.message))
        out = {
            "netlist": self.netlist_name,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in ordered],
            "skipped_groups": sorted(self.skipped_groups),
            "suppressed": sorted(self.suppressed),
        }
        if self.prove_stats is not None:
            stats = dict(self.prove_stats)
            stats.pop("time_s", None)  # wall time is not reproducible
            out["prove_stats"] = stats
        if self.seq_stats is not None:
            stats = dict(self.seq_stats)
            stats.pop("time_s", None)  # wall time is not reproducible
            out["seq_stats"] = stats
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
