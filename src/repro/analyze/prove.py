"""Simulation-guided SAT sweeping: heuristic facts become proofs.

The dataflow layer (:mod:`repro.analyze.dataflow`) derives *structural*
facts — hash-consed equivalence classes, ternary constants, ODC
dominators.  Those are sound but incomplete: two cones can compute the
identical function without sharing a normalized key, and a line can be
constant for reasons no local rewrite exposes.  This module closes the
gap with the classic SAT-sweeping loop used by AIG packages and
SAT-based model-based-diagnosis systems:

1. the combinational core is Tseitin-encoded **once** per netlist
   snapshot (one CNF variable per signal; primary inputs and DFF outputs
   are free *cut* variables), cached inside :class:`NetlistFacts` and
   dropped by :meth:`Netlist._dirty` with every other derived structure;
2. candidate equivalences are seeded from the structural hash classes
   (pre-merged at zero solver cost — hash consing is a proof already)
   plus *random-simulation signatures*: bit-parallel rows over the cut
   points; two signals are candidates only while their signatures match
   up to complement;
3. every candidate merge becomes an XOR-miter query under a per-query
   conflict budget.  UNSAT promotes the pair to a proven equivalence or
   antivalence (proven constant against 0/1 for the constant
   candidates); SAT yields a counterexample cut assignment that is
   *harvested* back into the signatures, splitting every class it
   distinguishes before the next query; a budget-exhausted query is
   recorded as UNKNOWN — never silently dropped.

Every answer is a three-valued :class:`Verdict` (``PROVEN`` / ``REFUTED``
/ ``UNKNOWN``) carrying the refuting counterexample when one exists and
the solver conflicts spent on the query.

Consumers: the ``prove`` lint rule group
(:mod:`repro.analyze.rules_prove`), the diagnosis candidate dedup pass
(:mod:`repro.diagnose.dedup`), the ``repro prove`` CLI subcommand and
the SAT-backed distinguishing-vector generator in
:mod:`repro.tgen.distinguish`.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gatetypes import GateType, MULTI_INPUT_TYPES
from ..circuit.miter import build_miter
from ..circuit.netlist import Netlist
from ..errors import SimulationError
from ..sat.cnf import CnfBuilder
from ..sat.solver import SatSolver

__all__ = [
    "ProofStatus", "Verdict", "ProvenConstant", "SweepStats",
    "SweepResult", "Prover", "prove_equivalent", "eval_row",
    "DEFAULT_CONFLICT_BUDGET", "DEFAULT_VECTORS",
]

#: Conflicts one query may spend before it is declared UNKNOWN.
DEFAULT_CONFLICT_BUDGET = 20_000

#: Random signature vectors seeded before the first query.
DEFAULT_VECTORS = 128

#: Cut gate types: their CNF variables are left unconstrained.
_CUT_TYPES = (GateType.INPUT, GateType.DFF)


class ProofStatus(enum.Enum):
    """Outcome of one budgeted proof obligation."""

    PROVEN = "proven"      # UNSAT miter: holds on every input vector
    REFUTED = "refuted"    # counterexample in hand
    UNKNOWN = "unknown"    # conflict budget exhausted; undecided

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Verdict:
    """One three-valued answer with its evidence and its cost.

    Attributes:
        status: proven / refuted / unknown.
        counterexample: for REFUTED verdicts, one 0/1 value per cut
            signal (:attr:`Prover.cut_signals` order — primary inputs
            first, so on a combinational netlist this *is* an input
            vector); ``None`` otherwise.
        conflicts: solver conflicts this query spent (0 when random
            simulation alone refuted the obligation).
    """

    status: ProofStatus
    counterexample: Optional[Tuple[int, ...]] = None
    conflicts: int = 0

    def to_dict(self) -> dict:
        out: dict = {"status": str(self.status),
                     "conflicts": self.conflicts}
        if self.counterexample is not None:
            out["counterexample"] = list(self.counterexample)
        return out


@dataclass(frozen=True)
class ProvenConstant:
    """A line proven constant, with the analysis that proved it.

    ``proof`` is ``"sat-sweep"`` for solver-established constants, or
    the dataflow provenance (``"ternary-propagation"`` /
    ``"implication-contradiction"`` / ``"structural-hash"``) when the
    heuristic layer had already proven the value and no query was spent.
    """

    value: int
    proof: str
    verdict: Verdict


@dataclass
class SweepStats:
    """Effort accounting of one sweep — no silent caps anywhere."""

    queries: int = 0             # SAT queries issued
    proven: int = 0              # queries answered UNSAT (fact proven)
    refuted: int = 0             # queries answered SAT (counterexample)
    unknown: int = 0             # queries that exhausted their budget
    sim_refuted: int = 0         # obligations killed by signatures alone
    structural_merges: int = 0   # classes pre-merged from hash consing
    counterexamples: int = 0     # vectors harvested into the signatures
    conflicts: int = 0           # total solver conflicts spent
    time_s: float = 0.0
    solver: dict = field(default_factory=dict)  # SolverStats snapshot

    def to_dict(self) -> dict:
        return {
            "queries": self.queries, "proven": self.proven,
            "refuted": self.refuted, "unknown": self.unknown,
            "sim_refuted": self.sim_refuted,
            "structural_merges": self.structural_merges,
            "counterexamples": self.counterexamples,
            "conflicts": self.conflicts, "time_s": self.time_s,
            "solver": dict(self.solver),
        }


@dataclass
class SweepResult:
    """Everything one full sweep established about a netlist.

    Attributes:
        constants: signal -> :class:`ProvenConstant` (heuristic and
            SAT-proven combined, provenance recorded per entry).
        classes: proven equivalence classes with >= 2 members, each a
            list of ``(signal, phase)`` with phase relative to the first
            member (``True`` = antivalent to it); sorted and
            deterministic.
        class_proofs: per class (same order) ``"structural-hash"`` when
            hash consing alone merged it, ``"sat-sweep"`` when at least
            one member needed the solver.
        refuted_pairs / unknown_pairs: candidate merges that failed or
            ran out of budget, as ``(a, b, phase, verdict)``.
        refuted_constants / unknown_constants: constant candidates that
            failed or ran out of budget, as ``(signal, value, verdict)``.
        stats: the sweep's :class:`SweepStats`.
    """

    constants: Dict[int, ProvenConstant]
    classes: List[List[Tuple[int, bool]]]
    class_proofs: List[str]
    refuted_pairs: List[Tuple[int, int, bool, Verdict]]
    unknown_pairs: List[Tuple[int, int, bool, Verdict]]
    refuted_constants: List[Tuple[int, int, Verdict]]
    unknown_constants: List[Tuple[int, int, Verdict]]
    stats: SweepStats


# ----------------------------------------------------------------------
# phase-aware union-find
# ----------------------------------------------------------------------
class _PhaseUnionFind:
    """Union-find over signals where edges carry a complement phase."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._phase: Dict[int, bool] = {}

    def find(self, x: int) -> Tuple[int, bool]:
        """Root of ``x`` and x's phase relative to it."""
        if self._parent.setdefault(x, x) == x:
            self._phase.setdefault(x, False)
            return x, False
        chain: List[int] = []
        node = x
        while self._parent[node] != node:
            chain.append(node)
            node = self._parent[node]
        root = node
        acc = False
        for node in reversed(chain):
            acc ^= self._phase[node]
            self._parent[node] = root
            self._phase[node] = acc
        return root, acc

    def union(self, a: int, b: int, phase: bool) -> bool:
        """Record ``a == b ^ phase``; False on phase inconsistency."""
        ra, pa = self.find(a)
        rb, pb = self.find(b)
        if ra == rb:
            return (pa ^ pb) == phase
        self._parent[rb] = ra
        self._phase[rb] = pa ^ phase ^ pb
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a)[0] == self.find(b)[0]

    def groups(self) -> List[List[Tuple[int, bool]]]:
        """Classes with >= 2 members, phases relative to the smallest
        member, sorted for determinism."""
        by_root: Dict[int, List[Tuple[int, bool]]] = {}
        for x in sorted(self._parent):
            root, phase = self.find(x)
            by_root.setdefault(root, []).append((x, phase))
        out: List[List[Tuple[int, bool]]] = []
        for members in by_root.values():
            if len(members) < 2:
                continue
            members.sort()
            base = members[0][1]
            out.append([(sig, phase ^ base) for sig, phase in members])
        out.sort()
        return out


# ----------------------------------------------------------------------
# big-int row evaluation (the signature substrate)
# ----------------------------------------------------------------------
def _eval_row(gtype: GateType, rows: Sequence[int], mask: int) -> int:
    """Evaluate one gate over packed big-int rows (bit i = vector i)."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype is GateType.BUF:
        return rows[0]
    if gtype is GateType.NOT:
        return rows[0] ^ mask
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = rows[0]
        for row in rows[1:]:
            acc &= row
        return acc ^ mask if gtype is GateType.NAND else acc
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = rows[0]
        for row in rows[1:]:
            acc |= row
        return acc ^ mask if gtype is GateType.NOR else acc
    acc = rows[0]
    for row in rows[1:]:
        acc ^= row
    return acc ^ mask if gtype is GateType.XNOR else acc


#: Public alias of the packed-row gate evaluator — the sequential
#: signature simulator (:mod:`repro.analyze.seq`) runs the same kernel
#: frame by frame.
eval_row = _eval_row


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class Prover:
    """Budgeted SAT proofs over one (acyclic) netlist snapshot.

    The CNF encoding, signature rows and union-find survive across
    queries, so every call refines the same incremental state: proofs
    merge classes, counterexamples split them.  Obtain a cached instance
    through :meth:`NetlistFacts.prover` so the state is invalidated with
    the netlist's other derived structures; standalone construction is
    fine for one-shot checks (see :func:`prove_equivalent`).

    Raises :class:`~repro.errors.NetlistError` on combinational cycles
    (the lint driver never reaches the prove rules on those: comb-loop
    is a semantic ERROR and later groups are gated on error-free runs).
    """

    def __init__(self, netlist: Netlist, facts=None,
                 conflict_budget: int = DEFAULT_CONFLICT_BUDGET,
                 nvectors: int = DEFAULT_VECTORS, seed: int = 0,
                 retirable: bool = False):
        self.netlist = netlist
        self.conflict_budget = conflict_budget
        self.stats = SweepStats()
        self._topo = list(netlist.topo_order())
        self._topo_pos = {idx: pos for pos, idx in enumerate(self._topo)}
        #: Free variables of the combinational core: primary inputs in
        #: netlist order, then DFF outputs — a counterexample is one 0/1
        #: value per entry, in this order.
        self.cut_signals: List[int] = list(netlist.inputs) + sorted(
            g.index for g in netlist.gates if g.gtype is GateType.DFF)
        self._builder = CnfBuilder(SatSolver())
        self.var: Dict[int, int] = {
            idx: self._builder.new_var() for idx in self._topo}
        #: With ``retirable`` every gate encoding is guarded by an
        #: activation literal assumed on each query; :meth:`refresh`
        #: retires a stale gate's clauses with one unit and re-encodes
        #: the edited gate append-only — the CNF survives netlist edits.
        self._retirable = retirable
        self._act: Dict[int, int] = {}
        self._act_assumptions: List[int] = []
        for idx in self._topo:
            gate = netlist.gates[idx]
            if gate.gtype in _CUT_TYPES:
                continue
            act = None
            if retirable:
                act = self._builder.new_var()
                self._act[idx] = act
            self._builder.encode_gate(
                gate.gtype, self.var[idx],
                [self.var[src] for src in gate.fanin],
                activation=act)
        if retirable:
            self._act_assumptions = [
                self._act[idx] for idx in sorted(self._act)]
        # -- simulation signatures ------------------------------------
        self._rng = random.Random(seed)
        self._nbits = 0
        self._rows: List[int] = [0] * len(netlist.gates)
        self._cex: List[Tuple[int, ...]] = []
        self._add_random_patterns(max(1, nvectors))
        # -- heuristic seeding ----------------------------------------
        self._uf = _PhaseUnionFind()
        self._merge_kinds: List[Tuple[int, int, str]] = []
        self._known_constants: Dict[int, int] = {}
        self._facts = facts
        if facts is not None:
            self._known_constants = dict(facts.known_constants(deep=True))
            self._seed_structural(facts)
        # -- query memos ----------------------------------------------
        self._xor_vars: Dict[Tuple[int, int], int] = {}
        self._reduced_vars: Dict[Tuple[int, int], int] = {}
        self._pair_verdicts: Dict[Tuple[int, int, bool], Verdict] = {}
        self._const_verdicts: Dict[int, Tuple[int, Verdict]] = {}
        self._swept: Optional[SweepResult] = None

    # -- signatures ----------------------------------------------------
    @property
    def mask(self) -> int:
        return (1 << self._nbits) - 1

    @property
    def counterexamples(self) -> List[Tuple[int, ...]]:
        """Cut assignments harvested from SAT answers, discovery order."""
        return list(self._cex)

    def _add_random_patterns(self, count: int) -> None:
        for cut in self.cut_signals:
            self._rows[cut] |= self._rng.getrandbits(count) << self._nbits
        self._nbits += count
        self._resimulate()

    def _resimulate(self) -> None:
        mask = self.mask
        rows = self._rows
        gates = self.netlist.gates
        for idx in self._topo:
            gate = gates[idx]
            if gate.gtype in _CUT_TYPES:
                rows[idx] &= mask
                continue
            rows[idx] = _eval_row(
                gate.gtype, [rows[src] for src in gate.fanin], mask)

    def _harvest(self, model: dict) -> Tuple[int, ...]:
        """Append one counterexample column and refresh every row."""
        bit = self._nbits
        values = []
        for cut in self.cut_signals:
            value = 1 if model.get(self.var[cut]) else 0
            values.append(value)
            self._rows[cut] |= value << bit
        self._nbits += 1
        self._resimulate()
        vector = tuple(values)
        self._cex.append(vector)
        self.stats.counterexamples += 1
        return vector

    def _cut_vector(self, bit: int) -> Tuple[int, ...]:
        """The cut assignment stored at signature column ``bit``."""
        return tuple((self._rows[cut] >> bit) & 1
                     for cut in self.cut_signals)

    def _sim_refuted(self, diff: int) -> Verdict:
        """REFUTED verdict from a nonzero signature difference row."""
        bit = (diff & -diff).bit_length() - 1
        self.stats.sim_refuted += 1
        return Verdict(ProofStatus.REFUTED, self._cut_vector(bit), 0)

    # -- structural seeding --------------------------------------------
    def _seed_structural(self, facts) -> None:
        """Pre-merge hash-consed classes: proofs at zero solver cost."""
        by_class: Dict[int, List[Tuple[int, bool]]] = {}
        for idx, (cls, neg) in enumerate(facts.literals()):
            if cls == 0 or idx in self._known_constants:
                continue  # constants are handled by the constant facts
            by_class.setdefault(cls, []).append((idx, neg))
        for members in by_class.values():
            if len(members) < 2:
                continue
            rep, rep_neg = members[0]
            for sig, neg in members[1:]:
                if self._uf.union(rep, sig, rep_neg ^ neg):
                    self.stats.structural_merges += 1
                    self._merge_kinds.append((rep, sig,
                                              "structural-hash"))

    # -- incremental refresh -------------------------------------------
    def refresh(self, netlist: Netlist, delta, facts=None) -> bool:
        """Patch the CNF and signatures for a journalled edit batch.

        Returns False — caller must rebuild from scratch — when the
        prover was not constructed ``retirable``, the edited netlist is
        cyclic, or the cut-signal set changed (the counterexample vector
        layout would silently shift).  On success every edited gate's
        old clauses are retired by a permanent ``-activation`` unit, the
        gate is re-encoded onto its *same* output variable under a fresh
        activation literal, rows are resimulated, and the heuristic
        seeding (union-find, known constants) restarts from ``facts``.
        The clause database itself is append-only, so learned clauses
        stay sound: any consequence of a retired gate's clauses carries
        the old activation literal negated and is satisfied the moment
        the retirement unit lands.
        """
        from ..errors import NetlistError

        if not self._retirable or delta is None:
            return False
        try:
            topo = list(netlist.topo_order())
        except NetlistError:
            return False
        new_cuts = list(netlist.inputs) + sorted(
            g.index for g in netlist.gates if g.gtype is GateType.DFF)
        if new_cuts != self.cut_signals:
            return False
        self.netlist = netlist
        self._topo = topo
        self._topo_pos = {idx: pos for pos, idx in enumerate(topo)}
        for idx in range(len(self._rows), len(netlist.gates)):
            self.var[idx] = self._builder.new_var()
            self._rows.append(0)
        touched = delta.touched_gates()
        for idx in sorted(touched):
            gate = netlist.gates[idx]
            if gate.gtype in _CUT_TYPES:
                continue  # cut variables are free; fanin edits no-op
            old_act = self._act.pop(idx, None)
            if old_act is not None:
                self._builder.add([-old_act])
            act = self._builder.new_var()
            self._act[idx] = act
            self._builder.encode_gate(
                gate.gtype, self.var[idx],
                [self.var[src] for src in gate.fanin], activation=act)
        self._act_assumptions = [
            self._act[idx] for idx in sorted(self._act)]
        # Reduced-pin encodings referenced the old fanin list; the stale
        # definitions keep constraining only their own fresh variables.
        for key in [k for k in self._reduced_vars if k[0] in touched]:
            del self._reduced_vars[key]
        self._resimulate()
        self._uf = _PhaseUnionFind()
        self._merge_kinds = []
        self._known_constants = {}
        self._facts = facts
        if facts is not None:
            self._known_constants = dict(facts.known_constants(deep=True))
            self._seed_structural(facts)
        self._pair_verdicts.clear()
        self._const_verdicts.clear()
        self._swept = None
        return True

    # -- the budgeted queries ------------------------------------------
    def _query(self, assumptions: List[int]) -> Tuple[Optional[bool], int]:
        solver = self._builder.solver
        before = solver.stats.conflicts
        if self._act_assumptions:
            assumptions = self._act_assumptions + assumptions
        answer = solver.solve(assumptions,
                              conflict_limit=self.conflict_budget)
        spent = solver.stats.conflicts - before
        self.stats.queries += 1
        self.stats.conflicts += spent
        return answer, spent

    def _finish(self, answer: Optional[bool], spent: int) -> Verdict:
        if answer is False:
            self.stats.proven += 1
            return Verdict(ProofStatus.PROVEN, None, spent)
        if answer is None:
            self.stats.unknown += 1
            return Verdict(ProofStatus.UNKNOWN, None, spent)
        self.stats.refuted += 1
        vector = self._harvest(self._builder.solver.model())
        return Verdict(ProofStatus.REFUTED, vector, spent)

    def prove_constant(self, signal: int, value: int) -> Verdict:
        """Is ``signal`` equal to ``value`` on every cut assignment?"""
        diff = (self._rows[signal] ^ (self.mask if value else 0)) \
            & self.mask
        if diff:
            return self._sim_refuted(diff)
        lit = self.var[signal] if value == 0 else -self.var[signal]
        answer, spent = self._query([lit])
        return self._finish(answer, spent)

    def _xor_var(self, a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        var = self._xor_vars.get(key)
        if var is None:
            var = self._builder.new_var()
            self._builder._xor2(var, self.var[key[0]], self.var[key[1]])
            self._xor_vars[key] = var
        return var

    def prove_equal(self, a: int, b: int, phase: bool = False) -> Verdict:
        """Is ``a == b`` (``a == NOT b`` when ``phase``) everywhere?

        The XOR miter variable is created once per pair and serves both
        phases: UNSAT under assumption ``xor`` proves equivalence, UNSAT
        under ``-xor`` proves antivalence.
        """
        if a == b:
            return Verdict(ProofStatus.REFUTED if phase
                           else ProofStatus.PROVEN, None, 0)
        diff = (self._rows[a] ^ self._rows[b]
                ^ (self.mask if phase else 0)) & self.mask
        if diff:
            return self._sim_refuted(diff)
        xor = self._xor_var(a, b)
        answer, spent = self._query([-xor] if phase else [xor])
        return self._finish(answer, spent)

    def prove_pin_redundant(self, gate_index: int, pin: int) -> Verdict:
        """Does dropping fanin ``pin`` leave the gate's function intact?

        Only meaningful for multi-input gates with >= 2 fanins; the
        reduced function (same type, one pin removed) is encoded lazily
        and compared against the gate's own variable.
        """
        gate = self.netlist.gates[gate_index]
        if (gate.gtype not in MULTI_INPUT_TYPES
                or len(gate.fanin) < 2
                or not 0 <= pin < len(gate.fanin)):
            raise SimulationError(
                f"gate {gate.name!r} has no droppable pin {pin}")
        reduced = [src for p, src in enumerate(gate.fanin) if p != pin]
        row = _eval_row(gate.gtype, [self._rows[s] for s in reduced],
                        self.mask)
        diff = (row ^ self._rows[gate_index]) & self.mask
        if diff:
            return self._sim_refuted(diff)
        key = (gate_index, pin)
        var = self._reduced_vars.get(key)
        if var is None:
            var = self._builder.new_var()
            self._builder.encode_gate(gate.gtype, var,
                                      [self.var[s] for s in reduced])
            self._reduced_vars[key] = var
        xor = self._builder.new_var()
        self._builder._xor2(xor, self.var[gate_index], var)
        answer, spent = self._query([xor])
        return self._finish(answer, spent)

    # -- the sweep -----------------------------------------------------
    def _constant_provenance(self, signal: int) -> str:
        facts = self._facts
        if facts is None:
            return "sat-sweep"
        if signal in facts.constants():
            return "ternary-propagation"
        if signal in facts.implications().implied_constants:
            return "implication-contradiction"
        if signal in facts.structural_constants():
            return "structural-hash"
        return "sat-sweep"

    def _candidates(self) -> Tuple[List[Tuple[int, int]],
                                   List[List[Tuple[int, bool]]]]:
        """Constant and merge candidates from the current signatures."""
        mask = self.mask
        constants: List[Tuple[int, int]] = []
        groups: Dict[int, List[Tuple[int, bool]]] = {}
        for gate in self.netlist.gates:
            idx = gate.index
            if gate.gtype in (GateType.CONST0, GateType.CONST1):
                continue
            row = self._rows[idx] & mask
            if idx in self._known_constants:
                continue
            if row == 0 or row == mask:
                if gate.gtype not in _CUT_TYPES:
                    constants.append((idx, 0 if row == 0 else 1))
                continue
            if row & 1:
                groups.setdefault(row ^ mask, []).append((idx, True))
            else:
                groups.setdefault(row, []).append((idx, False))
        merge = [sorted(members, key=lambda m: self._topo_pos[m[0]])
                 for members in groups.values() if len(members) >= 2]
        merge.sort(key=lambda members: members[0])
        return constants, merge

    def sweep(self, force: bool = False) -> SweepResult:
        """Run the refinement loop to quiescence and report everything.

        The result is cached (the netlist cannot change under a live
        Prover: :class:`NetlistFacts` drops the whole bundle on
        mutation); ``force`` recomputes, reusing every memoized verdict.
        """
        if self._swept is not None and not force:
            return self._swept
        t0 = time.perf_counter()
        refuted_pairs: List[Tuple[int, int, bool, Verdict]] = []
        unknown_pairs: List[Tuple[int, int, bool, Verdict]] = []
        refuted_consts: List[Tuple[int, int, Verdict]] = []
        unknown_consts: List[Tuple[int, int, Verdict]] = []
        proven_consts: Dict[int, ProvenConstant] = {
            sig: ProvenConstant(val, self._constant_provenance(sig),
                                Verdict(ProofStatus.PROVEN, None, 0))
            for sig, val in sorted(self._known_constants.items())}
        restart = True
        while restart:
            restart = False
            const_cands, merge_cands = self._candidates()
            for signal, value in const_cands:
                if signal in self._const_verdicts:
                    continue
                verdict = self.prove_constant(signal, value)
                self._const_verdicts[signal] = (value, verdict)
                if verdict.status is ProofStatus.PROVEN:
                    proven_consts[signal] = ProvenConstant(
                        value, "sat-sweep", verdict)
                elif verdict.status is ProofStatus.UNKNOWN:
                    unknown_consts.append((signal, value, verdict))
                else:
                    refuted_consts.append((signal, value, verdict))
                    restart = True
                    break
            if restart:
                continue
            for members in merge_cands:
                rep, rep_phase = members[0]
                for sig, sig_phase in members[1:]:
                    if self._uf.same(rep, sig):
                        continue
                    phase = rep_phase ^ sig_phase
                    key = (min(rep, sig), max(rep, sig), phase)
                    if key in self._pair_verdicts:
                        continue
                    verdict = self.prove_equal(rep, sig, phase)
                    self._pair_verdicts[key] = verdict
                    if verdict.status is ProofStatus.PROVEN:
                        self._uf.union(rep, sig, phase)
                        self._merge_kinds.append((rep, sig, "sat-sweep"))
                    elif verdict.status is ProofStatus.UNKNOWN:
                        unknown_pairs.append((rep, sig, phase, verdict))
                    else:
                        refuted_pairs.append((rep, sig, phase, verdict))
                        restart = True
                        break
                if restart:
                    break
        classes = self._uf.groups()
        class_proofs = []
        for members in classes:
            signals = {sig for sig, _phase in members}
            proof = "structural-hash"
            for a, b, kind in self._merge_kinds:
                if kind == "sat-sweep" and a in signals and b in signals:
                    proof = "sat-sweep"
                    break
            class_proofs.append(proof)
        self.stats.time_s += time.perf_counter() - t0
        self.stats.solver = self._builder.solver.stats.to_dict()
        self._swept = SweepResult(
            constants=proven_consts, classes=classes,
            class_proofs=class_proofs,
            refuted_pairs=sorted(refuted_pairs,
                                 key=lambda r: (r[0], r[1], r[2])),
            unknown_pairs=sorted(unknown_pairs,
                                 key=lambda r: (r[0], r[1], r[2])),
            refuted_constants=sorted(refuted_consts,
                                     key=lambda r: (r[0], r[1])),
            unknown_constants=sorted(unknown_consts,
                                     key=lambda r: (r[0], r[1])),
            stats=self.stats)
        return self._swept

    # -- exports -------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Current effort accounting with a fresh solver-stats view."""
        self.stats.solver = self._builder.solver.stats.to_dict()
        return self.stats.to_dict()

    def distinguishing_patterns(self):
        """Harvested counterexamples as a simulatable pattern set.

        Each SAT counterexample is, by construction, a vector on which
        two near-equivalent cones disagree — exactly the distinguishing
        stimulus :mod:`repro.tgen.distinguish` hunts for.  Only defined
        for combinational netlists, where the cut points are precisely
        the primary inputs.
        """
        from ..sim.packing import PatternSet

        if not self.netlist.is_combinational:
            raise SimulationError(
                "distinguishing patterns need a combinational netlist "
                "(full-scan sequential designs first)")
        if not self._cex:
            import numpy as np
            return PatternSet(
                np.zeros((len(self.cut_signals), 0), dtype=np.uint64), 0)
        return PatternSet.from_vectors(self._cex)


def prove_equivalent(a: Netlist, b: Netlist,
                     conflict_budget: int = DEFAULT_CONFLICT_BUDGET,
                     nvectors: int = 64, seed: int = 0) -> Verdict:
    """Budgeted combinational equivalence check of two netlists.

    Builds the full miter (shared inputs, XOR per output pair, OR of the
    XORs) and asks whether its output can ever be 1.  PROVEN means the
    netlists agree on every input vector; a REFUTED verdict carries the
    distinguishing input vector (miter inputs == the shared primary
    inputs, positionally matched); UNKNOWN means the conflict budget ran
    out first.
    """
    miter = build_miter(a, b)
    prover = Prover(miter, conflict_budget=conflict_budget,
                    nvectors=nvectors, seed=seed)
    return prover.prove_constant(miter.outputs[0], 0)
