"""Testability rules: SCOAP cost outliers and untestable faults.

These consume the testability sections of
:class:`~repro.analyze.dataflow.NetlistFacts` — the SCOAP CC0/CC1/CO
cost vectors and the static untestable-fault identification of
:mod:`repro.analyze.testability` — and run only under ``repro lint
--testability`` (or ``lint_netlist(testability=True)``), after every
earlier group is error-free.

* ``hard-to-control-line`` / ``hard-to-observe-line`` — cost outliers
  above a threshold (:attr:`AnalysisContext.cc_threshold` /
  :attr:`~AnalysisContext.co_threshold`, default
  :data:`DEFAULT_CC_THRESHOLD` / :data:`DEFAULT_CO_THRESHOLD`).
  Unachievable (:data:`~repro.analyze.testability.INF`) costs are the
  business of ``const-line`` and ``unobservable-line`` and are skipped
  here.
* ``untestable-fault`` — every statically-proven untestable stuck-at
  on a live site, with the proof provenance (impossible requirement
  literal, conflicting requirement pair, or unobservable site) spelled
  out.  Untestable stuck-ats are redundancies: the same objects the
  SAT-backed ``prove`` group hunts, found here without a single solver
  call.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import SOURCE_TYPES
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity
from .testability import INF, describe_site

_rule = DEFAULT_REGISTRY.rule

#: Default controllability alarm threshold (max of CC0/CC1).
DEFAULT_CC_THRESHOLD = 64
#: Default observability alarm threshold.
DEFAULT_CO_THRESHOLD = 64


@_rule("hard-to-control-line", "testability", Severity.INFO,
       "no live line needs more than the threshold SCOAP cost to set "
       "to either value")
def check_hard_to_control(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    costs = facts.scoap()
    live = ctx.live()
    threshold = (ctx.cc_threshold if ctx.cc_threshold is not None
                 else DEFAULT_CC_THRESHOLD)
    for gate in ctx.netlist.gates:
        i = gate.index
        if i not in live or gate.gtype in SOURCE_TYPES:
            continue
        worst = max(costs.cc0[i], costs.cc1[i])
        if worst < INF and worst > threshold:
            hard = 0 if costs.cc0[i] >= costs.cc1[i] else 1
            yield Diagnostic(
                "hard-to-control-line", Severity.INFO,
                f"line {gate.name!r} needs SCOAP cost {worst} to justify "
                f"value {hard} (cc0={costs.cc0[i]}, cc1={costs.cc1[i]}, "
                f"threshold {threshold}); deterministic tests through it "
                f"will be expensive",
                gate=gate.name,
                data={"cc0": costs.cc0[i], "cc1": costs.cc1[i],
                      "threshold": threshold})


@_rule("hard-to-observe-line", "testability", Severity.INFO,
       "no live line needs more than the threshold SCOAP cost to "
       "propagate to an output")
def check_hard_to_observe(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    costs = facts.scoap()
    live = ctx.live()
    threshold = (ctx.co_threshold if ctx.co_threshold is not None
                 else DEFAULT_CO_THRESHOLD)
    for gate in ctx.netlist.gates:
        i = gate.index
        co = costs.co[i]
        if i not in live or co >= INF or co <= threshold:
            continue
        yield Diagnostic(
            "hard-to-observe-line", Severity.INFO,
            f"line {gate.name!r} needs SCOAP cost {co} to propagate a "
            f"change to a primary output (threshold {threshold}); "
            f"faults there resist detection",
            gate=gate.name, data={"co": co, "threshold": threshold})


@_rule("untestable-fault", "testability", Severity.WARNING,
       "no stuck-at fault on a live line is statically untestable "
       "(implication-proven redundancy)")
def check_untestable_fault(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    live = ctx.live()
    names = [g.name for g in ctx.netlist.gates]
    for (site, value), verdict in sorted(
            facts.testability().untestable.items()):
        rec = facts.testability().sites[site]
        if rec.head not in live or rec.driver not in live:
            continue  # dead logic has its own rules
        where = describe_site(ctx.netlist, site)
        witness = ", ".join(f"{names[s]}={v}" for s, v in verdict.witness)
        detail = {
            "unobservable":
                "the site reaches no primary output",
            "impossible-requirement":
                f"required literal {witness} holds in no consistent "
                f"assignment",
            "conflicting-requirements":
                f"required literals {witness} statically contradict",
        }[verdict.reason]
        yield Diagnostic(
            "untestable-fault", Severity.WARNING,
            f"stuck-at-{value} on {where} is statically untestable: "
            f"{detail}; the fault is a redundancy and every test set "
            f"misses it",
            gate=names[rec.head],
            data={"site": where, "value": value,
                  "reason": verdict.reason,
                  "witness": [[names[s], v] for s, v in verdict.witness]})
