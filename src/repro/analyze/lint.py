"""The lint driver: run the rule registry over a netlist.

Two layers:

* :func:`lint_netlist` — the library API.  Runs structural rules first
  and gates the semantic group on their outcome (semantic traversals
  assume in-range indices); the dataflow-backed ``deep`` group is
  opt-in (``deep=True``) and gated on the earlier groups being
  error-free.
* :func:`lint_on_load` — the hook ``bench_io``/``verilog_io`` call
  after parsing, governed by a process-wide *load policy*:

  ========== =========================================================
  ``off``     parse only, no lint.
  ``errors``  (default) raise :class:`~repro.errors.ParseError` when
              lint finds an ERROR; warnings are ignored.
  ``warn``    as ``errors``, plus warnings printed to stderr.
  ``strict``  raise on warnings too.
  ========== =========================================================
"""

from __future__ import annotations

import sys
from typing import Iterable

from ..circuit.netlist import Netlist
from ..errors import ParseError
from .core import (AnalysisContext, DEFAULT_REGISTRY, RuleRegistry,
                   Severity)
from .report import LintReport

#: Rule-group execution order; later groups require earlier ones clean.
#: ``deep`` (dataflow-backed rules) is opt-in via ``deep=True``;
#: ``prove`` (SAT-backed rules) via ``prove=True``; ``seq``
#: (sequential fixpoint + k-induction rules) via ``seq=True``;
#: ``testability`` (SCOAP costs + static untestable faults) via
#: ``testability=True``.
GROUP_ORDER = ("structural", "semantic", "deep", "prove", "seq",
               "testability")

#: Groups run when the caller does not ask for anything special.
DEFAULT_GROUPS = ("structural", "semantic")

LOAD_POLICIES = ("off", "errors", "warn", "strict")

_load_policy = "errors"


def get_load_lint_policy() -> str:
    """Current process-wide lint-on-load policy."""
    return _load_policy


def set_load_lint_policy(policy: str) -> str:
    """Set the lint-on-load policy; returns the previous one."""
    global _load_policy
    if policy not in LOAD_POLICIES:
        raise ValueError(
            f"unknown lint policy {policy!r}; pick one of "
            f"{', '.join(LOAD_POLICIES)}")
    previous = _load_policy
    _load_policy = policy
    return previous


def lint_netlist(netlist: Netlist,
                 registry: RuleRegistry | None = None,
                 suppress: Iterable[str] = (),
                 groups: Iterable[str] | None = None,
                 deep: bool = False,
                 prove: bool = False,
                 prove_budget: int | None = None,
                 seq: bool = False,
                 seq_budget: int | None = None,
                 testability: bool = False,
                 cc_threshold: int | None = None,
                 co_threshold: int | None = None) -> LintReport:
    """Run every (non-suppressed) rule and collect the findings.

    Args:
        netlist: the circuit to analyze.
        registry: rule set (default: the built-in registry).
        suppress: rule ids to skip; unknown ids raise ``KeyError`` so
            typos don't silently disable nothing.
        groups: restrict to these rule groups (default:
            :data:`DEFAULT_GROUPS`, plus ``deep``/``prove``/``seq``
            when requested); names outside :data:`GROUP_ORDER` raise
            ``ValueError`` so typos don't silently run nothing.
        deep: also run the dataflow-backed ``deep`` group (provable
            constants, duplicate logic, ODC-masked lines).  These rules
            compute fixed points over the netlist and cost noticeably
            more than the shallow sweeps, hence opt-in.
        prove: also run the SAT-backed ``prove`` group (SAT-sweeping:
            proven constants, proven duplicate logic, proven redundant
            fanins).  Costs solver time, hence opt-in; the sweep's
            effort accounting lands in :attr:`LintReport.prove_stats`.
        prove_budget: per-query conflict budget for the prove group
            (default: the engine's
            :data:`~repro.analyze.prove.DEFAULT_CONFLICT_BUDGET`).
        seq: also run the sequential ``seq`` group (reset fixpoint +
            k-induction: stuck registers, sequential constants,
            redundant registers, sequential equivalences).  Costs
            unrolled solver time, hence opt-in; effort accounting
            lands in :attr:`LintReport.seq_stats`.
        seq_budget: per-query conflict budget for the seq group
            (default: the engine's
            :data:`~repro.analyze.seq.DEFAULT_SEQ_BUDGET`).
        testability: also run the ``testability`` group (SCOAP
            controllability/observability cost outliers and the static
            untestable-fault identification of
            :mod:`repro.analyze.testability`).  Costs the implication
            closure plus two min-plus fixed points, hence opt-in.
        cc_threshold: SCOAP controllability alarm threshold (default:
            :data:`~repro.analyze.rules_testability.DEFAULT_CC_THRESHOLD`).
        co_threshold: SCOAP observability alarm threshold (default:
            :data:`~repro.analyze.rules_testability.DEFAULT_CO_THRESHOLD`).
    """
    registry = registry or DEFAULT_REGISTRY
    suppressed = list(suppress)
    for rule_id in suppressed:
        registry.get(rule_id)  # raises KeyError on unknown ids
    opted = {"deep": deep, "prove": prove, "seq": seq,
             "testability": testability}
    if groups is not None:
        wanted = tuple(groups)
        unknown = sorted(set(wanted) - set(GROUP_ORDER))
        if unknown:
            raise ValueError(
                f"unknown lint group(s) {', '.join(map(repr, unknown))}; "
                f"pick from {', '.join(GROUP_ORDER)}")
        for group, on in opted.items():
            if on and group not in wanted:
                wanted = wanted + (group,)
    else:
        wanted = tuple(g for g in GROUP_ORDER
                       if g in DEFAULT_GROUPS or opted.get(g, False))
    report = LintReport(netlist.name, suppressed=suppressed)
    ctx = AnalysisContext(netlist)
    ctx.prove_budget = prove_budget
    ctx.seq_budget = seq_budget
    ctx.cc_threshold = cc_threshold
    ctx.co_threshold = co_threshold
    for position, group in enumerate(GROUP_ORDER):
        if group not in wanted:
            continue
        # Every group after the first requires the run error-free so
        # far: their traversals assume the invariants the earlier
        # groups police (derived from position, not hard-coded names).
        if position > 0 and any(
                d.severity is Severity.ERROR for d in report.diagnostics):
            report.skipped_groups.append(group)
            continue
        for rule in registry.group(group):
            if rule.id in suppressed:
                continue
            report.diagnostics.extend(rule.run(ctx))
        if group in ("prove", "seq"):
            from .dataflow import netlist_facts
            facts = netlist_facts(netlist)
            engine = (facts._prover if group == "prove"
                      else facts._seq_prover)
            if engine is not None:
                snapshot = engine.stats_snapshot()
                if group == "prove":
                    report.prove_stats = snapshot
                else:
                    report.seq_stats = snapshot
    return report


def lint_on_load(netlist: Netlist, policy: str | None = None,
                 source: str | None = None) -> LintReport | None:
    """Post-parse hook used by the file readers.

    Returns the report (``None`` under the ``off`` policy).  Raises
    :class:`ParseError` per the policy table above so reader callers
    see one uniform exception type for "this file is unusable".
    """
    policy = policy if policy is not None else _load_policy
    if policy not in LOAD_POLICIES:
        raise ValueError(
            f"unknown lint policy {policy!r}; pick one of "
            f"{', '.join(LOAD_POLICIES)}")
    if policy == "off":
        return None
    report = lint_netlist(netlist)
    where = source or netlist.name
    if report.errors:
        first = report.errors[0]
        extra = len(report.errors) - 1
        raise ParseError(
            f"{where}: lint failed: [{first.rule}] {first.message}"
            + (f" (+{extra} more error(s))" if extra else ""))
    if report.warnings:
        if policy == "strict":
            first = report.warnings[0]
            extra = len(report.warnings) - 1
            raise ParseError(
                f"{where}: lint failed (strict): [{first.rule}] "
                f"{first.message}"
                + (f" (+{extra} more warning(s))" if extra else ""))
        if policy == "warn":
            for diag in report.warnings:
                print(f"{where}: warning: [{diag.rule}] {diag.message}",
                      file=sys.stderr)
    return report
