"""Sequential static analysis: reset fixpoint + k-induction correspondence.

Every analysis in :mod:`repro.analyze.dataflow` and
:mod:`repro.analyze.prove` stops dead at flip-flop boundaries: DFF
outputs are free cut points, so a register stuck at its reset value, a
redundant state bit or a cross-frame equivalence is invisible to both
the lint rules and the diagnosis pre-screen.  This module closes that
gap with two cooperating engines:

* :func:`reset_fixpoint` — a **reset-state ternary fixpoint**.  The
  per-DFF state lattice ``{0, 1, X}`` is seeded from the initial state
  and the existing combinational constant propagation
  (:class:`~repro.analyze.dataflow.TernaryConstants` with the new
  ``assume`` hook) is iterated across time frames; a register whose
  computed next-state value disagrees with its current state value is
  *widened* to X, so the iteration only descends and terminates after at
  most ``#DFFs + 1`` sweeps.  The stable state map is an inductive
  invariant from reset: every non-X signal of the final sweep holds its
  value at **every cycle** under **arbitrary inputs** (primary inputs
  stay X throughout), which is exactly what "sequentially constant" and
  "stuck register" mean.

* :class:`SeqProver` — SAT-backed **k-induction register/signal
  correspondence** in the style of ABC's ``scorr``.  Candidate
  equivalence classes are seeded from bit-parallel random simulation
  *from reset* (per-frame big-int rows via
  :func:`repro.analyze.prove.eval_row`; a signature is the tuple of
  per-frame rows, normalized up to complement).  Each candidate then
  faces two budgeted proof obligations over
  :func:`repro.circuit.unroll.unroll`-built models reusing the PR 4
  Tseitin encoding:

  - **base**: unroll ``k`` frames from the reset state and prove the
    candidate at every frame ``0..k-1``.  A SAT answer here is a
    concrete input sequence from reset — a genuine counterexample — so
    the candidate is ``REFUTED`` with the decoded :class:`SeqTrace`
    attached;
  - **step**: unroll ``k+1`` frames with a *free* initial state, assume
    **all** surviving candidates at frames ``0..k-1`` (plus the reset
    fixpoint's stuck-register values, which are globally invariant, at
    every frame) and prove the candidate at frame ``k``.  A SAT answer
    here may start from an unreachable state, so it only demotes the
    candidate to ``UNKNOWN`` — never ``REFUTED`` — and, because the
    dropped candidate was an assumption for its peers, the step loop
    restarts until a full pass survives intact.

  The survivors are simultaneously inductive, hence all ``PROVEN``
  (classic strengthening argument: base gives cycles ``0..k-1``;
  induction over ``T`` extends every candidate from cycles
  ``T..T+k-1`` to ``T+k`` at once).

Consumers: the ``seq`` lint group (:mod:`repro.analyze.rules_seq`), the
sequential diagnosis pre-screen (:func:`seq_masked_signals`, driven by
``DiagnosisConfig(seq_prescreen=True)``), the ``repro facts --seq``
digest and ``benchmarks/bench_seq.py``.  Instances are cached on
:class:`~repro.analyze.dataflow.NetlistFacts` (``reset_fixpoint`` /
``seq_prover``) and dropped by :meth:`Netlist._dirty`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.gatetypes import GateType, eval_ternary
from ..circuit.netlist import Netlist
from ..circuit.sequential import full_scan, normalize_initial_state
from ..circuit.unroll import unroll
from ..sat.cnf import CnfBuilder
from ..sat.solver import SatSolver
from .prove import ProofStatus, Prover, _PhaseUnionFind, eval_row

__all__ = [
    "ResetFixpoint", "reset_fixpoint", "SeqTrace", "SeqVerdict",
    "SeqConstant", "SeqStats", "SeqSweepResult", "SeqProver",
    "replay_trace", "seq_masked_signals",
    "DEFAULT_INDUCTION_K", "DEFAULT_SEQ_BUDGET", "DEFAULT_SEQ_VECTORS",
]

#: Induction depth used when the caller does not pick one.
DEFAULT_INDUCTION_K = 2

#: Conflicts one base/step query may spend before UNKNOWN.
DEFAULT_SEQ_BUDGET = 20_000

#: Random stimulus sequences simulated to seed candidate classes.
DEFAULT_SEQ_VECTORS = 64


# ----------------------------------------------------------------------
# the reset-state ternary fixpoint
# ----------------------------------------------------------------------
@dataclass
class ResetFixpoint:
    """Stable result of iterating ternary propagation across frames.

    Attributes:
        state: per-DFF inductive state value (``None`` = X); non-X
            entries are registers provably holding that value at every
            cycle from reset.
        values: one ternary value per gate from the final sweep — every
            non-X entry holds at every cycle under arbitrary inputs.
        constants: the non-X entries of ``values`` as a dict (includes
            the purely combinational constants).
        stuck_registers: the non-X entries of ``state``.
        iterations: dataflow sweeps until stability (bounded by
            ``#DFFs + 1``).
    """

    state: Dict[int, Optional[int]]
    values: List[Optional[int]]
    constants: Dict[int, int]
    stuck_registers: Dict[int, int]
    iterations: int


def widen_state(gates, state, values):
    """One widening step of the reset fixpoint: any register whose
    computed next state (its fanin's value in ``values``) disagrees
    with its assumed value descends to X.  Shared with the incremental
    warm-start so both paths widen identically."""
    return {
        dff: (value if value == values[gates[dff].fanin[0]]
              else None)
        for dff, value in state.items()}


def reset_fixpoint(netlist: Netlist,
                   initial_state=0) -> ResetFixpoint:
    """Greatest inductive ternary invariant of ``netlist`` from reset.

    Iterates :class:`~repro.analyze.dataflow.TernaryConstants` with the
    current state map assumed on the DFF outputs; any register whose
    computed next state disagrees with its assumed value is widened to
    X and the sweep repeats.  The state lattice only descends
    (``0``/``1`` → X, never back), so at most ``#DFFs + 1`` sweeps run.

    Soundness: the returned ``state`` satisfies *(i)* it holds at cycle
    0 (it only weakens the initial state) and *(ii)* assuming it at
    cycle ``t`` forces it at cycle ``t+1`` (that is the stability
    condition), so by induction it holds at every cycle; the final
    sweep's non-X signal values follow from the state assumption alone
    — primary inputs stay X — hence hold at every cycle under
    arbitrary stimulus.
    """
    from .dataflow import TernaryConstants, run_dataflow

    state = normalize_initial_state(netlist, initial_state)
    gates = netlist.gates
    iterations = 0
    while True:
        iterations += 1
        values = run_dataflow(netlist, TernaryConstants(assume=state))
        new_state = widen_state(gates, state, values)
        if new_state == state:
            break
        state = new_state
    return ResetFixpoint(
        state=state, values=values,
        constants={i: v for i, v in enumerate(values) if v is not None},
        stuck_registers={d: v for d, v in sorted(state.items())
                         if v is not None},
        iterations=iterations)


# ----------------------------------------------------------------------
# verdicts, traces, stats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeqTrace:
    """A concrete input sequence from reset refuting a candidate.

    Attributes:
        initial: ``((dff_index, value), ...)`` — the fully resolved
            reset state (X entries of the configured initial state get
            the counterexample's chosen bit).
        inputs: per-frame primary-input vectors in ``netlist.inputs``
            order.
        frame: first frame at which the violated property is visible.
    """

    initial: Tuple[Tuple[int, int], ...]
    inputs: Tuple[Tuple[int, ...], ...]
    frame: int

    def to_dict(self) -> dict:
        return {"initial": [list(pair) for pair in self.initial],
                "inputs": [list(cycle) for cycle in self.inputs],
                "frame": self.frame}


@dataclass(frozen=True)
class SeqVerdict:
    """One three-valued sequential answer with evidence and cost.

    ``REFUTED`` always carries a :class:`SeqTrace` (base-case or
    simulation counterexamples only — an induction-step SAT answer may
    start from an unreachable state and is reported ``UNKNOWN``).
    """

    status: ProofStatus
    trace: Optional[SeqTrace] = None
    conflicts: int = 0

    def to_dict(self) -> dict:
        out: dict = {"status": str(self.status),
                     "conflicts": self.conflicts}
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out


@dataclass(frozen=True)
class SeqConstant:
    """A signal proven sequentially constant, with its provenance.

    ``proof`` is ``"reset-fixpoint"`` when the ternary fixpoint alone
    established the value (``"ternary-propagation"`` when even the
    state assumption was unnecessary), or ``"k-induction"`` for
    SAT-proven constants the fixpoint cannot see.
    """

    value: int
    proof: str
    verdict: SeqVerdict


@dataclass
class SeqStats:
    """Effort accounting of one sequential sweep — no silent caps."""

    k: int = 0
    sim_frames: int = 0
    fixpoint_iterations: int = 0
    constant_candidates: int = 0
    pair_candidates: int = 0
    base_queries: int = 0
    step_queries: int = 0
    proven: int = 0
    refuted: int = 0
    unknown: int = 0
    step_restarts: int = 0
    conflicts: int = 0
    time_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "k": self.k, "sim_frames": self.sim_frames,
            "fixpoint_iterations": self.fixpoint_iterations,
            "constant_candidates": self.constant_candidates,
            "pair_candidates": self.pair_candidates,
            "base_queries": self.base_queries,
            "step_queries": self.step_queries,
            "proven": self.proven, "refuted": self.refuted,
            "unknown": self.unknown,
            "step_restarts": self.step_restarts,
            "conflicts": self.conflicts, "time_s": self.time_s,
        }


@dataclass
class SeqSweepResult:
    """Everything one sequential sweep established about a netlist.

    Attributes:
        k: induction depth used.
        fixpoint: the :class:`ResetFixpoint` (its constants are folded
            into ``constants`` with provenance ``"reset-fixpoint"``).
        constants: signal -> :class:`SeqConstant`, every entry proven
            to hold at every cycle from reset.
        classes: proven correspondence classes with >= 2 members, each
            a list of ``(signal, phase)`` with phase relative to the
            first member (``True`` = antivalent); members agree at
            every cycle from reset.
        refuted_constants / refuted_pairs: candidates killed by a
            concrete reset trace, verdicts carrying the
            :class:`SeqTrace`.
        unknown_constants / unknown_pairs: candidates whose base query
            ran out of budget or whose induction step failed (possibly
            from an unreachable state) — undecided, never dropped
            silently.
        stats: the sweep's :class:`SeqStats`.
    """

    k: int
    fixpoint: ResetFixpoint
    constants: Dict[int, SeqConstant]
    classes: List[List[Tuple[int, bool]]]
    refuted_constants: List[Tuple[int, int, SeqVerdict]]
    unknown_constants: List[Tuple[int, int, SeqVerdict]]
    refuted_pairs: List[Tuple[int, int, bool, SeqVerdict]]
    unknown_pairs: List[Tuple[int, int, bool, SeqVerdict]]
    stats: SeqStats = field(default_factory=SeqStats)

    def stuck_registers(self, netlist: Netlist) -> Dict[int, SeqConstant]:
        """The proven-constant DFF outputs (stuck registers)."""
        return {i: c for i, c in self.constants.items()
                if netlist.gates[i].gtype is GateType.DFF}


# ----------------------------------------------------------------------
# trace replay (the test oracle for REFUTED verdicts)
# ----------------------------------------------------------------------
def replay_trace(netlist: Netlist, trace: SeqTrace) -> List[List[int]]:
    """Cycle-accurate replay of a :class:`SeqTrace`.

    Returns one fully-resolved value list per frame (indexed by gate),
    so a test can check the violated property directly at
    ``trace.frame`` — e.g. that a REFUTED constant candidate really
    does take the other value there.
    """
    gates = netlist.gates
    order = list(netlist.topo_order())
    state: Dict[int, int] = dict(trace.initial)
    frames: List[List[int]] = []
    for cycle in trace.inputs:
        pi_values = dict(zip(netlist.inputs, cycle))
        values: List[Optional[int]] = [None] * len(gates)
        for idx in order:
            gate = gates[idx]
            if gate.gtype is GateType.INPUT:
                values[idx] = int(pi_values[idx])
            elif gate.gtype is GateType.DFF:
                values[idx] = state[idx]
            else:
                values[idx] = eval_ternary(
                    gate.gtype, [values[src] for src in gate.fanin])
        state = {dff: values[gates[dff].fanin[0]] for dff in state}
        frames.append(values)  # type: ignore[arg-type]
    return frames  # type: ignore[return-value]


# ----------------------------------------------------------------------
# the k-induction engine
# ----------------------------------------------------------------------
class SeqProver:
    """Budgeted k-induction proofs over one sequential netlist snapshot.

    Obtain a cached instance through
    :meth:`NetlistFacts.seq_prover <repro.analyze.dataflow.NetlistFacts.seq_prover>`
    so its unrolled encodings die with the netlist's other derived
    structures; standalone construction is fine for one-shot sweeps.

    Raises :class:`~repro.errors.NetlistError` on combinational cycles
    (unrolling needs a topological order; the lint driver never reaches
    the seq rules on those — comb-loop is a semantic ERROR and later
    groups are gated on error-free runs).
    """

    def __init__(self, netlist: Netlist, facts=None,
                 k: int = DEFAULT_INDUCTION_K,
                 conflict_budget: int = DEFAULT_SEQ_BUDGET,
                 nvectors: int = DEFAULT_SEQ_VECTORS, seed: int = 0,
                 initial_state=0, sim_frames: Optional[int] = None):
        if k < 1:
            raise ValueError("induction depth k must be >= 1")
        self.netlist = netlist
        self.k = k
        self.conflict_budget = conflict_budget
        self.init = normalize_initial_state(netlist, initial_state)
        self.stats = SeqStats(k=k)
        self._facts = facts
        if facts is not None:
            self.fixpoint = facts.reset_fixpoint(self.init)
        else:
            self.fixpoint = reset_fixpoint(netlist, self.init)
        self.stats.fixpoint_iterations = self.fixpoint.iterations
        # -- base model: k frames from reset --------------------------
        self._base_model, self._base_umap = unroll(
            netlist, k, initial_state=self.init,
            name=f"{netlist.name}_base{k}")
        self._base_prover = Prover(
            self._base_model, conflict_budget=conflict_budget,
            nvectors=max(1, nvectors), seed=seed)
        # -- step model: k+1 frames, free initial state ----------------
        self._step_model, self._step_umap = unroll(
            netlist, k + 1, initial_state=None,
            name=f"{netlist.name}_step{k}")
        self._step_builder = CnfBuilder(SatSolver())
        self._step_var: Dict[int, int] = {}
        for idx in self._step_model.topo_order():
            self._step_var[idx] = self._step_builder.new_var()
        for idx in self._step_model.topo_order():
            gate = self._step_model.gates[idx]
            if gate.gtype is GateType.INPUT:
                continue
            self._step_builder.encode_gate(
                gate.gtype, self._step_var[idx],
                [self._step_var[src] for src in gate.fanin])
        self._step_xor: Dict[Tuple[int, int], int] = {}
        # -- sequential signatures from reset --------------------------
        self._rng = random.Random(seed)
        self.sim_frames = (sim_frames if sim_frames is not None
                           else max(k + 1, 4))
        self.stats.sim_frames = self.sim_frames
        self._nbits = max(1, nvectors)
        self._sim_rows = self._simulate_sequences()
        self._swept: Optional[SeqSweepResult] = None

    # -- sequential bit-parallel simulation ----------------------------
    def _simulate_sequences(self) -> List[List[int]]:
        """Per-frame big-int rows from reset under random stimulus."""
        mask = (1 << self._nbits) - 1
        gates = self.netlist.gates
        order = list(self.netlist.topo_order())
        state_rows = {
            dff: (0 if value == 0 else mask if value == 1
                  else self._rng.getrandbits(self._nbits))
            for dff, value in self.init.items()}
        frames: List[List[int]] = []
        for _t in range(self.sim_frames):
            rows = [0] * len(gates)
            for idx in order:
                gate = gates[idx]
                if gate.gtype is GateType.INPUT:
                    rows[idx] = self._rng.getrandbits(self._nbits)
                elif gate.gtype is GateType.DFF:
                    rows[idx] = state_rows[idx]
                else:
                    rows[idx] = eval_row(
                        gate.gtype,
                        [rows[src] for src in gate.fanin], mask)
            state_rows = {dff: rows[gates[dff].fanin[0]]
                          for dff in state_rows}
            frames.append(rows)
        return frames

    # -- candidate seeding ---------------------------------------------
    def _candidates(self) -> Tuple[List[Tuple[int, int]],
                                   List[Tuple[int, int, bool]]]:
        """Constant and pair candidates from the per-frame signatures.

        A signature is the tuple of a signal's rows at every simulated
        frame, normalized by complementing when the first vector of
        frame 0 reads 1 — so equivalence and antivalence candidates
        land in the same bucket with a relative phase.
        """
        mask = (1 << self._nbits) - 1
        known = self.fixpoint.constants
        constants: List[Tuple[int, int]] = []
        groups: Dict[Tuple[int, ...], List[Tuple[int, bool]]] = {}
        for gate in self.netlist.gates:
            idx = gate.index
            if gate.gtype in (GateType.INPUT, GateType.CONST0,
                              GateType.CONST1):
                continue
            if idx in known:
                continue  # the fixpoint already proved these
            sig = tuple(rows[idx] & mask for rows in self._sim_rows)
            if all(row == 0 for row in sig):
                constants.append((idx, 0))
                continue
            if all(row == mask for row in sig):
                constants.append((idx, 1))
                continue
            if sig[0] & 1:
                sig = tuple(row ^ mask for row in sig)
                phase = True
            else:
                phase = False
            groups.setdefault(sig, []).append((idx, phase))
        pairs: List[Tuple[int, int, bool]] = []
        for members in groups.values():
            if len(members) < 2:
                continue
            members.sort()
            rep, rep_phase = members[0]
            pairs.extend((rep, idx, rep_phase ^ phase)
                         for idx, phase in members[1:])
        pairs.sort()
        return constants, pairs

    # -- base obligations ----------------------------------------------
    def _decode_base_cex(self, cex: Tuple[int, ...],
                         frame: int) -> SeqTrace:
        """Base-model counterexample -> concrete trace from reset.

        The base model is combinational, so the prover's cut signals
        are exactly its primary inputs; ``pi_rows``/``init_rows`` map
        input-list positions back to (frame, PI) and X-reset DFFs.
        """
        umap = self._base_umap
        inputs = tuple(
            tuple(cex[umap.pi_rows[(t, pos)]]
                  for pos in range(self.netlist.num_inputs))
            for t in range(self.k))
        initial = tuple(
            (dff, value if value is not None
             else cex[umap.init_rows[dff]])
            for dff, value in sorted(self.init.items()))
        return SeqTrace(initial, inputs, frame)

    def _base_constant(self, signal: int,
                       value: int) -> Optional[SeqVerdict]:
        """Prove ``signal == value`` at frames 0..k-1 from reset.

        Returns ``None`` when every frame is PROVEN (candidate moves on
        to the induction step), a REFUTED verdict with the decoded
        trace, or an UNKNOWN verdict on budget exhaustion.
        """
        conflicts = 0
        for t in range(self.k):
            inst = self._base_umap.instance[t][signal]
            verdict = self._base_prover.prove_constant(inst, value)
            self.stats.base_queries += 1
            self.stats.conflicts += verdict.conflicts
            conflicts += verdict.conflicts
            if verdict.status is ProofStatus.REFUTED:
                return SeqVerdict(
                    ProofStatus.REFUTED,
                    self._decode_base_cex(verdict.counterexample, t),
                    conflicts)
            if verdict.status is ProofStatus.UNKNOWN:
                return SeqVerdict(ProofStatus.UNKNOWN, None, conflicts)
        return None

    def _base_pair(self, a: int, b: int,
                   phase: bool) -> Optional[SeqVerdict]:
        """Prove ``a == b ^ phase`` at frames 0..k-1 from reset."""
        conflicts = 0
        for t in range(self.k):
            inst = self._base_umap.instance[t]
            verdict = self._base_prover.prove_equal(
                inst[a], inst[b], phase)
            self.stats.base_queries += 1
            self.stats.conflicts += verdict.conflicts
            conflicts += verdict.conflicts
            if verdict.status is ProofStatus.REFUTED:
                return SeqVerdict(
                    ProofStatus.REFUTED,
                    self._decode_base_cex(verdict.counterexample, t),
                    conflicts)
            if verdict.status is ProofStatus.UNKNOWN:
                return SeqVerdict(ProofStatus.UNKNOWN, None, conflicts)
        return None

    # -- step obligations ----------------------------------------------
    def _step_xor_var(self, a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        var = self._step_xor.get(key)
        if var is None:
            var = self._step_builder.new_var()
            self._step_builder._xor2(var, self._step_var[key[0]],
                                     self._step_var[key[1]])
            self._step_xor[key] = var
        return var

    def _assume_constant(self, signal: int, value: int,
                         frame: int) -> int:
        var = self._step_var[self._step_umap.instance[frame][signal]]
        return var if value else -var

    def _assume_pair(self, a: int, b: int, phase: bool,
                     frame: int) -> int:
        inst = self._step_umap.instance[frame]
        xor = self._step_xor_var(inst[a], inst[b])
        return xor if phase else -xor

    def _step_query(self, assumptions: List[int]) -> Tuple[Optional[bool],
                                                           int]:
        solver = self._step_builder.solver
        before = solver.stats.conflicts
        answer = solver.solve(assumptions,
                              conflict_limit=self.conflict_budget)
        spent = solver.stats.conflicts - before
        self.stats.step_queries += 1
        self.stats.conflicts += spent
        return answer, spent

    def _step_pass(self, const_survivors: List[Tuple[int, int]],
                   pair_survivors: List[Tuple[int, int, bool]]
                   ) -> Tuple[set, Dict[object, int]]:
        """One pass of the induction step under mutual assumptions.

        Returns the keys that failed (SAT or budget-out) and the
        conflicts each query spent.  All candidates — plus the globally
        invariant stuck-register values at every frame — are assumed at
        frames 0..k-1; each candidate is then attacked at frame k.
        """
        assumptions: List[int] = []
        for frame in range(self.k + 1):
            for dff, value in self.fixpoint.stuck_registers.items():
                assumptions.append(
                    self._assume_constant(dff, value, frame))
        for frame in range(self.k):
            for signal, value in const_survivors:
                assumptions.append(
                    self._assume_constant(signal, value, frame))
            for a, b, phase in pair_survivors:
                assumptions.append(self._assume_pair(a, b, phase, frame))
        failed: set = set()
        spent_by_key: Dict[object, int] = {}
        for signal, value in const_survivors:
            goal = -self._assume_constant(signal, value, self.k)
            answer, spent = self._step_query(assumptions + [goal])
            spent_by_key[(signal, value)] = spent
            if answer is not False:
                failed.add((signal, value))
        for a, b, phase in pair_survivors:
            goal = -self._assume_pair(a, b, phase, self.k)
            answer, spent = self._step_query(assumptions + [goal])
            spent_by_key[(a, b, phase)] = spent
            if answer is not False:
                failed.add((a, b, phase))
        return failed, spent_by_key

    # -- the sweep -----------------------------------------------------
    def _constant_provenance(self, signal: int) -> str:
        if self._facts is not None:
            if signal in self._facts.constants():
                return "ternary-propagation"
        return "reset-fixpoint"

    def sweep(self, force: bool = False) -> SeqSweepResult:
        """Run base + induction to quiescence and report everything.

        The result is cached (the netlist cannot change under a live
        SeqProver: :class:`NetlistFacts` drops the bundle on mutation);
        ``force`` recomputes from the candidate seeding on.
        """
        if self._swept is not None and not force:
            return self._swept
        t0 = time.perf_counter()
        const_cands, pair_cands = self._candidates()
        self.stats.constant_candidates = len(const_cands)
        self.stats.pair_candidates = len(pair_cands)
        proven: Dict[int, SeqConstant] = {
            sig: SeqConstant(value, self._constant_provenance(sig),
                             SeqVerdict(ProofStatus.PROVEN))
            for sig, value in sorted(self.fixpoint.constants.items())}
        refuted_consts: List[Tuple[int, int, SeqVerdict]] = []
        unknown_consts: List[Tuple[int, int, SeqVerdict]] = []
        refuted_pairs: List[Tuple[int, int, bool, SeqVerdict]] = []
        unknown_pairs: List[Tuple[int, int, bool, SeqVerdict]] = []
        # -- base: refute from reset or establish frames 0..k-1 --------
        const_survivors: List[Tuple[int, int]] = []
        base_conflicts: Dict[object, int] = {}
        for signal, value in const_cands:
            verdict = self._base_constant(signal, value)
            if verdict is None:
                const_survivors.append((signal, value))
                base_conflicts[(signal, value)] = 0
            elif verdict.status is ProofStatus.REFUTED:
                self.stats.refuted += 1
                refuted_consts.append((signal, value, verdict))
            else:
                self.stats.unknown += 1
                unknown_consts.append((signal, value, verdict))
        pair_survivors: List[Tuple[int, int, bool]] = []
        for a, b, phase in pair_cands:
            verdict = self._base_pair(a, b, phase)
            if verdict is None:
                pair_survivors.append((a, b, phase))
                base_conflicts[(a, b, phase)] = 0
            elif verdict.status is ProofStatus.REFUTED:
                self.stats.refuted += 1
                refuted_pairs.append((a, b, phase, verdict))
            else:
                self.stats.unknown += 1
                unknown_pairs.append((a, b, phase, verdict))
        # -- step: drop non-inductive candidates and restart -----------
        spent: Dict[object, int] = dict(base_conflicts)
        while const_survivors or pair_survivors:
            failed, spent_by_key = self._step_pass(const_survivors,
                                                   pair_survivors)
            for key, cost in spent_by_key.items():
                spent[key] = spent.get(key, 0) + cost
            if not failed:
                break
            self.stats.step_restarts += 1
            for signal, value in list(const_survivors):
                if (signal, value) in failed:
                    const_survivors.remove((signal, value))
                    self.stats.unknown += 1
                    unknown_consts.append((signal, value, SeqVerdict(
                        ProofStatus.UNKNOWN, None,
                        spent[(signal, value)])))
            for a, b, phase in list(pair_survivors):
                if (a, b, phase) in failed:
                    pair_survivors.remove((a, b, phase))
                    self.stats.unknown += 1
                    unknown_pairs.append((a, b, phase, SeqVerdict(
                        ProofStatus.UNKNOWN, None, spent[(a, b, phase)])))
        # -- survivors are simultaneously inductive: all proven --------
        for signal, value in const_survivors:
            self.stats.proven += 1
            proven[signal] = SeqConstant(
                value, "k-induction",
                SeqVerdict(ProofStatus.PROVEN, None,
                           spent[(signal, value)]))
        uf = _PhaseUnionFind()
        for a, b, phase in pair_survivors:
            self.stats.proven += 1
            uf.union(a, b, phase)
        self.stats.time_s += time.perf_counter() - t0
        self._swept = SeqSweepResult(
            k=self.k, fixpoint=self.fixpoint, constants=proven,
            classes=uf.groups(),
            refuted_constants=sorted(refuted_consts,
                                     key=lambda r: (r[0], r[1])),
            unknown_constants=sorted(unknown_consts,
                                     key=lambda r: (r[0], r[1])),
            refuted_pairs=sorted(refuted_pairs,
                                 key=lambda r: (r[0], r[1], r[2])),
            unknown_pairs=sorted(unknown_pairs,
                                 key=lambda r: (r[0], r[1], r[2])),
            stats=self.stats)
        return self._swept

    def stats_snapshot(self) -> dict:
        """Current effort accounting (the lint driver's seq_stats)."""
        return self.stats.to_dict()


# ----------------------------------------------------------------------
# the sequential diagnosis pre-screen
# ----------------------------------------------------------------------
def seq_masked_signals(netlist: Netlist, initial_state=0,
                       deep: bool = False) -> frozenset:
    """Signals provably masked from reset — the seq pre-screen's core.

    A signal is *masked* when a stuck-at fault on it (present in every
    cycle, the time-frame fault model) provably changes no primary
    output at any cycle from the given reset.  Two sufficient
    conditions, both evaluated on the **full-scan model** so "escapes"
    through next-state logic count as observations:

    * no combinational path to any primary output *or any flip-flop
      data input* (unobservable in the scan model, whose output list
      appends every DFF's D fanin);
    * ODC-blocked in the scan model, where the side input's constant
      value may come from the scan model's combinational constants
      *or* from the reset fixpoint's sequential constants of the
      original netlist (indices coincide — ``full_scan`` copies the
      netlist preserving gate indices).

    Soundness, by induction over cycles: suppose the state is
    fault-free entering cycle ``T`` (true at ``T = 0``: reset values
    do not travel through faulty wires).  Within cycle ``T`` the fault
    only perturbs the signal's combinational fanout cone; a blocking
    side input lies outside that cone, so it carries its fault-free
    value — which equals the proven constant, because sequential
    constants hold at every cycle of the *fault-free* machine and the
    state is fault-free by hypothesis.  The dominator therefore kills
    the difference before it reaches any primary output or any DFF
    data input, so cycle ``T`` observes nothing and the state entering
    ``T + 1`` is again fault-free.

    Like the combinational pre-screen this is airtight per suspect;
    across a *tuple* of joint corrections one masked member can in
    principle unmask another, so the pre-screen is off by default
    (``DiagnosisConfig(seq_prescreen=False)``) and shares the per-node
    caveat documented on
    :func:`repro.diagnose.screening.prescreen_suspects`.
    """
    from .dataflow import netlist_facts

    scan, _smap = full_scan(netlist)
    facts = netlist_facts(scan)
    fx = netlist_facts(netlist).reset_fixpoint(initial_state)
    consts = dict(facts.known_constants(deep=deep))
    consts.update(fx.constants)
    observable = facts.observable_set()
    masked = set()
    for gate in netlist.gates:
        index = gate.index
        if index not in observable:
            masked.add(index)
            continue
        for cond in facts.odc_conditions(index):
            if consts.get(cond.side_input) == cond.ctrl:
                masked.add(index)
                break
    return frozenset(masked)
