"""Delta-driven repair of cached static analysis facts.

:func:`warm_facts` takes a stale :class:`~repro.analyze.dataflow.NetlistFacts`
bundle plus the :class:`~repro.circuit.delta.NetlistDelta` recorded since
its version, and returns a *fresh* bundle whose materialized sections are
repaired cone-locally instead of recomputed from scratch.  Sections the
base never materialized stay lazy; sections outside the caller's
``sections`` filter are dropped back to lazy too (the diagnosis engine
asks only for what its pre-screen reads).

Every repair rule is **exact** — the repaired section equals the
from-scratch computation on the edited netlist (class *ids* of the
structural hash may differ; the induced partition does not).  The
arguments, per layer:

* **Region re-solve** (:func:`_solve_region`).  For a forward analysis
  the repair region is the union of the fanout cones of the edited
  gates; for a backward analysis the union of the fanin cones of the
  seed set.  A node outside the region has no edited node among its
  transitive dependencies (else the cone BFS would have reached it), so
  the old fixpoint restricted to the outside is a fixpoint of the new
  system there — and by the uniqueness of least/greatest fixpoints of
  monotone maps it *is* the new fixpoint outside.  Cycles are wholly in
  or out of a region (their members are mutually reachable), so the
  region subgraph's own SCC condensation schedules exactly like the
  global one.  Re-descending the region from its lattice origin with
  correct boundary values therefore reproduces the scratch answer.
* **Structural hash**: the repaired run continues the base numbering
  (memo and counter are inherited), so only the edited region is
  rehashed.  Leaf keys ``("leaf", idx)`` coincide in both numberings and
  composite keys correspond inductively, giving a bijection between the
  warm and scratch class ids — partitions, duplicate groups and
  constant-class membership are identical.
* **Implications**: the per-gate direct edges recorded by
  :class:`~repro.analyze.dataflow.Implications` are surgically swapped
  for the edited gates; only literals that can reach a changed
  endpoint (in the old *or* new graph — membership of a removed edge
  matters too) can change their reachability set, so transitive closure
  is recomputed for that affected set only.
* **ODC blocked verdicts**: a node's verdict reads its dominators, its
  cone, the dominator gates' definitions, its observability and the
  constant status of the dominators' side inputs.  The first four only
  change inside the dominator repair region (every witness is
  combinationally reachable from the node, so the node sits in the
  region's backward cone); a flipped side-input constant of dominator
  ``d`` only moves verdicts inside ``d``'s fanin cone.  Verdicts are
  re-derived for that affected set and copied everywhere else.
* **Reset fixpoint**: warm-started re-descent.  Sweep one re-solves the
  edit region plus the cones of registers whose assumed value differs
  between the cached final state and the sweep's initial state; each
  later sweep re-solves only the cones of the registers the previous
  widening moved to X.  The state sequence — and hence the iteration
  count — matches the scratch loop exactly, because each sweep's value
  vector is reproduced exactly (soundness of warm-started *monotone*
  fixpoints: re-descent from a state that only differs inside the
  region cannot overshoot the scratch fixpoint, unlike restarting from
  an arbitrary warmer point).
* **CNF**: the cached retirable :class:`~repro.analyze.prove.Prover` is
  carried over when the netlist object itself was edited in place —
  stale gate clauses are retired by activation-literal units and the
  edited gates re-encoded append-only (:meth:`Prover.refresh`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..circuit.gatetypes import GateType
from ..circuit.netlist import Netlist
from .dataflow import (_CONST_CLASS, DataflowDomain, Implications,
                       NetlistFacts, TernaryConstants, _Dominators,
                       _StructuralClasses, strongly_connected_components)

__all__ = ["warm_facts", "ALL_SECTIONS"]

#: Repairable bundle sections, in dependency order.
ALL_SECTIONS = frozenset([
    "constants", "literals", "implications", "observable", "dominators",
    "cones", "scoap", "testability", "reset", "prover",
])


# ----------------------------------------------------------------------
# regions
# ----------------------------------------------------------------------
def _forward_region(netlist: Netlist, seeds: Iterable[int]) -> Set[int]:
    """Union of the combinational fanout cones of ``seeds`` (cycle-safe
    BFS — :meth:`Netlist.sorted_cone` would topo-sort and raise)."""
    gates = netlist.gates
    fanouts = netlist.fanouts()
    seen = set(seeds)
    stack = list(seen)
    while stack:
        node = stack.pop()
        for nxt in fanouts[node]:
            if nxt not in seen and gates[nxt].gtype is not GateType.DFF:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def _backward_region(netlist: Netlist, seeds: Iterable[int]) -> Set[int]:
    """Union of the combinational fanin cones of ``seeds`` (a DFF's
    fanin is a sequential edge: the walk includes the DFF, stops there)."""
    gates = netlist.gates
    seen = set(seeds)
    stack = list(seen)
    while stack:
        node = stack.pop()
        gate = gates[node]
        if gate.gtype is GateType.DFF:
            continue
        for src in gate.fanin:
            if src not in seen:
                seen.add(src)
                stack.append(src)
    return seen


def _solve_region(netlist: Netlist, domain: DataflowDomain,
                  values: list, region: Set[int]) -> None:
    """Re-run ``domain`` to its fixed point on ``region`` only, in place.

    ``values`` must hold the correct new fixpoint outside the region
    (boundary reads stay valid); region entries are reset to the domain
    origin and re-descended over the region subgraph's SCC condensation,
    mirroring :func:`~repro.analyze.dataflow.run_dataflow` exactly.
    """
    if not region:
        return
    gates = netlist.gates
    members = sorted(region)
    local = {g: i for i, g in enumerate(members)}
    if domain.direction == "forward":
        def deps_of(g: int) -> list:
            gate = gates[g]
            return [] if gate.gtype is GateType.DFF else gate.fanin
    else:
        fanouts = netlist.fanouts()

        def deps_of(g: int) -> list:
            return [c for c in dict.fromkeys(fanouts[g])
                    if gates[c].gtype is not GateType.DFF]
    local_deps = [[local[d] for d in deps_of(g) if d in local]
                  for g in members]
    comps = strongly_connected_components(len(members),
                                          local_deps.__getitem__)
    for g in members:
        values[g] = domain.start(gates[g])
    for comp in comps:
        cyclic = len(comp) > 1 or comp[0] in local_deps[comp[0]]
        if not cyclic:
            g = members[comp[0]]
            values[g] = domain.transfer(gates[g], values)
            continue
        if not domain.iterate_cycles:
            for li in comp:
                g = members[li]
                values[g] = domain.cycle_value(gates[g])
            continue
        in_comp = set(comp)
        users: Dict[int, List[int]] = {li: [] for li in comp}
        for li in comp:
            for d in local_deps[li]:
                if d in in_comp:
                    users[d].append(li)
        pending = list(comp)
        queued = set(comp)
        while pending:
            li = pending.pop()
            queued.discard(li)
            g = members[li]
            new = domain.transfer(gates[g], values)
            if new != values[g]:
                values[g] = new
                for u in users[li]:
                    if u not in queued:
                        queued.add(u)
                        pending.append(u)


# ----------------------------------------------------------------------
# per-section repairs
# ----------------------------------------------------------------------
def _repair_implications(netlist: Netlist, base_imp: Implications,
                         touched: Set[int],
                         constants: Dict[int, int]) -> Implications:
    """Surgical edge swap + affected-set closure recompute."""
    n = len(netlist.gates)
    imp = Implications.__new__(Implications)
    imp.netlist = netlist
    imp.num_nodes = 2 * n
    succ: List[List[int]] = [list(row) for row in base_imp._succ]
    succ.extend([] for _ in range(imp.num_nodes - len(succ)))
    imp._succ = succ
    gate_edges = dict(base_imp._gate_edges)
    # Literals whose outgoing edge multiset changed: for an edge (u, w)
    # that is the tail u and the contrapositive tail w^1.
    changed: Set[int] = set()
    for g in sorted(touched):
        old_edges = gate_edges.get(g, [])
        new_edges = Implications.edges_for_gate(netlist.gates[g])
        if sorted(old_edges) == sorted(new_edges):
            continue
        for u, w in old_edges:
            succ[u].remove(w)
            succ[w ^ 1].remove(u ^ 1)
            changed.add(u)
            changed.add(w ^ 1)
        for u, w in new_edges:
            succ[u].append(w)
            succ[w ^ 1].append(u ^ 1)
            changed.add(u)
            changed.add(w ^ 1)
        if new_edges:
            gate_edges[g] = new_edges
        else:
            gate_edges.pop(g, None)
    imp._gate_edges = gate_edges
    reach = list(base_imp._reach)
    for u in range(len(reach), imp.num_nodes):
        reach.append(1 << u)  # fresh literals reach only themselves yet
    if changed:
        # Only literals that can reach a changed tail — in the old graph
        # (a removed path mattered) or the new one (an added path does) —
        # can see a different closure.  Predecessor walk uses the
        # contrapositive symmetry: preds(x) = {w^1 : w in succ[x^1]}.
        old_succ = base_imp._succ
        affected = set(changed)
        stack = list(changed)
        while stack:
            x = stack.pop()
            rows = []
            if (x ^ 1) < len(old_succ):
                rows.append(old_succ[x ^ 1])
            rows.append(succ[x ^ 1])
            for row in rows:
                for w in row:
                    p = w ^ 1
                    if p not in affected:
                        affected.add(p)
                        stack.append(p)
        aff_sorted = sorted(affected)
        local = {x: i for i, x in enumerate(aff_sorted)}
        local_succ = [[local[w] for w in succ[x] if w in local]
                      for x in aff_sorted]
        comps = strongly_connected_components(len(aff_sorted),
                                              local_succ.__getitem__)
        for comp in comps:
            comp_members = {aff_sorted[li] for li in comp}
            bits = 0
            for li in comp:
                x = aff_sorted[li]
                bits |= 1 << x
                for w in succ[x]:
                    if w in comp_members:
                        continue
                    # Outside the affected set reach[w] never changed;
                    # inside it, successors-first order finalized it.
                    bits |= reach[w]
            for x in comp_members:
                reach[x] = bits
    imp._reach = reach
    imp._impossible = imp._find_impossible(constants)
    imp.implied_constants = imp._implied_constants()
    imp.repair_affected = frozenset(affected) if changed else frozenset()
    return imp


def _repair_reset(netlist: Netlist, base: NetlistFacts,
                  fresh: NetlistFacts, delta, region: Set[int]) -> None:
    """Exact warm re-descent of every cached reset fixpoint."""
    from .seq import ResetFixpoint, widen_state

    for edit in delta:
        if edit.kind == "gate_added" and edit.new[0] is GateType.DFF:
            return  # register set grew: cached state keys are obsolete
    gates = netlist.gates
    n = len(gates)
    for key, base_fx in base._reset.items():
        state = dict(key)
        values = list(base_fx.values)
        values.extend(None for _ in range(n - len(values)))
        # Sweep 1 differs from the cached final sweep inside the edit
        # region and inside the cones of registers whose assumed value
        # changes back from the cached final state to the initial one.
        seeds = set(d for d, v in state.items()
                    if base_fx.state.get(d) != v)
        sweep_region = _forward_region(netlist, seeds) | region
        iterations = 0
        while True:
            iterations += 1
            _solve_region(netlist, TernaryConstants(assume=state),
                          values, sweep_region)
            new_state = widen_state(gates, state, values)
            if new_state == state:
                break
            moved = {d for d in state if new_state[d] != state[d]}
            state = new_state
            sweep_region = _forward_region(netlist, moved)
        fresh._reset[key] = ResetFixpoint(
            state=state, values=values,
            constants={i: v for i, v in enumerate(values)
                       if v is not None},
            stuck_registers={d: v for d, v in sorted(state.items())
                             if v is not None},
            iterations=iterations)


# ----------------------------------------------------------------------
# the bundle repair
# ----------------------------------------------------------------------
def warm_facts(netlist: Netlist, base: NetlistFacts, delta,
               sections: Optional[Iterable[str]] = None) -> NetlistFacts:
    """Build a fresh :class:`NetlistFacts` for ``netlist``, repairing the
    sections ``base`` had materialized from the journalled ``delta``.

    ``base`` is never mutated — the diagnosis engine warms a child
    netlist's bundle from its *parent's*, which must stay intact.
    ``sections`` (default: everything) limits which sections are worth
    repairing; the rest fall back to lazy recomputation on demand.
    """
    want = ALL_SECTIONS if sections is None else frozenset(sections)
    fresh = NetlistFacts(netlist)
    touched = delta.touched_gates()
    sources = delta.touched_sources()
    n = len(netlist.gates)

    region: Optional[Set[int]] = None

    def fwd_region() -> Set[int]:
        nonlocal region
        if region is None:
            region = _forward_region(netlist, touched)
        return region

    # -- constants (needed by literals and implications too) -----------
    need_constants = want & {"constants", "literals", "implications",
                             "reset"}
    if base._constants is not None and need_constants:
        values: list = [base._constants.get(i) for i in range(n)]
        _solve_region(netlist, TernaryConstants(), values, fwd_region())
        fresh._constants = {i: v for i, v in enumerate(values)
                            if v is not None}

    # -- structural hash: continue the base numbering ------------------
    if (base._literals is not None and base._lit_domain is not None
            and "literals" in want):
        consts = fresh.constants()
        domain = _StructuralClasses([consts.get(i) for i in range(n)])
        domain.memo = dict(base._lit_domain.memo)
        domain.next_class = base._lit_domain.next_class
        lits: list = list(base._literals)
        lits.extend(None for _ in range(n - len(lits)))
        _solve_region(netlist, domain, lits, fwd_region())
        fresh._literals = lits
        fresh._lit_domain = domain

    # -- implications --------------------------------------------------
    if base._implications is not None and "implications" in want:
        fresh._implications = _repair_implications(
            netlist, base._implications, touched, fresh.constants())

    # -- observability -------------------------------------------------
    if base._observable is not None and "observable" in want \
            and not delta.connectivity_changed():
        fresh._observable = base._observable

    # -- dominators ----------------------------------------------------
    dom_region: Optional[Set[int]] = None
    if base._dominators is not None and "dominators" in want \
            and base._observable is not None:
        old_obs = base._observable
        new_obs = fresh.observable_set()
        seeds = set(touched) | set(sources)
        outs_before = delta.outputs_before()
        if outs_before is not None:
            seeds |= set(outs_before) ^ set(netlist.outputs)
        seeds |= old_obs ^ new_obs
        dom: list = [base._dominators[i] if i < len(base._dominators)
                     else None for i in range(n)]
        # Old bitsets lack the new gates' bits — exactly right: a new
        # gate on every output path of an un-re-solved node would have
        # put that node inside the repair region.
        dom_region = _backward_region(netlist, seeds)
        _solve_region(netlist, _Dominators(netlist, new_obs), dom,
                      dom_region)
        fresh._dominators = [dom[i] if i in new_obs else None
                             for i in range(n)]

    # -- cones ---------------------------------------------------------
    if base._cones and "cones" in want:
        for start, cone in base._cones.items():
            if sources.isdisjoint(cone):
                fresh._cones[start] = cone

    # -- ODC blocked verdicts ------------------------------------------
    # blocked(i) reads dominators(i), cone(i), the dominator gates'
    # definitions, observability of i and the constant status of the
    # dominators' side inputs.  The first four can only change for
    # nodes inside the dominator repair region (a dominator, a touched
    # gate or a changed-cone witness is combinationally reachable from
    # i, and the region is exactly the backward cone of every seed);
    # a changed side-input constant of a dominator d can only move
    # verdicts of nodes in d's fanin cone.  Everything outside keeps
    # its base verdict.  Only the key the fresh bundle itself would
    # compute is repaired — a stale other-keyed entry stays lazy.
    key = fresh._implications is not None
    if base._blocked.get(key) is not None and "dominators" in want \
            and dom_region is not None and base._constants is not None \
            and (not key or fresh._literals is not None):
        old_consts = dict(base._constants)
        new_consts = dict(fresh.constants())
        if key:
            # mirror NetlistFacts.known_constants(deep=True) merge order
            for consts, facts in ((old_consts, base), (new_consts, fresh)):
                consts.update(facts._implications.implied_constants)
                consts.update(
                    {i: int(lit[1])
                     for i, lit in enumerate(facts._literals)
                     if lit is not None and lit[0] == _CONST_CLASS
                     and i not in facts._constants})
        affected = set(dom_region)
        diff = {s for s in old_consts.keys() | new_consts.keys()
                if old_consts.get(s) != new_consts.get(s)}
        if diff:
            heads = [g.index for g in netlist.gates
                     if not diff.isdisjoint(g.fanin)]
            affected |= _backward_region(netlist, heads)
        new_obs = fresh.observable_set()
        blocked = {i for i in base._blocked[key] if i not in affected}
        for i in affected:
            if i not in new_obs:
                continue
            for cond in fresh.odc_conditions(i):
                if new_consts.get(cond.side_input) == cond.ctrl:
                    blocked.add(i)
                    break
        fresh._blocked[key] = frozenset(blocked)

    # -- SCOAP cost lattices -------------------------------------------
    # Controllability is a plain forward analysis: the edit region is
    # exactly the fanout cones of the touched gates.  Observability
    # additionally depends on (a) who consumes a signal (sources), (b)
    # the output list, and (c) the CC costs of the consumers' *side*
    # pins — so the backward seeds are the sources, the output diff,
    # the fanins of every touched gate (its pin set or side costs per
    # type changed) and the fanins of every consumer of a CC-changed
    # signal (their side sums moved).  Everything outside the backward
    # cone of those seeds reads only unchanged values.
    if base._scoap is not None and "scoap" in want:
        from .testability import (INF, ScoapCosts, _Controllability,
                                  _Observability)
        old_sc = base._scoap
        # New gates start at the lattice top: a new gate outside the
        # repair region has no consumers and is no output (anything
        # else would have seeded it in), so top is its true fixpoint.
        cc: list = [(old_sc.cc0[i], old_sc.cc1[i])
                    if i < len(old_sc.cc0) else (INF, INF)
                    for i in range(n)]
        _solve_region(netlist, _Controllability(), cc, fwd_region())
        cc_changed = {i for i in range(n)
                      if i >= len(old_sc.cc0)
                      or cc[i] != (old_sc.cc0[i], old_sc.cc1[i])}
        co: list = [old_sc.co[i] if i < len(old_sc.co) else INF
                    for i in range(n)]
        seeds = set(sources)
        outs_before = delta.outputs_before()
        if outs_before is not None:
            seeds |= set(outs_before) ^ set(netlist.outputs)
        for g in touched:
            seeds.update(netlist.gates[g].fanin)
        if cc_changed:
            fanouts = netlist.fanouts()
            for s in cc_changed:
                for consumer in fanouts[s]:
                    seeds.update(netlist.gates[consumer].fanin)
        _solve_region(netlist, _Observability(netlist, cc), co,
                      _backward_region(netlist, seeds))
        fresh._scoap = ScoapCosts(tuple(c[0] for c in cc),
                                  tuple(c[1] for c in cc), tuple(co))

    # -- static testability --------------------------------------------
    # A site record reads its head's dominators/cone/ODC conditions,
    # the sink's pins (branch sites) and the global DFF-feed frontier —
    # all of which can only change for heads inside the dominator
    # repair region (same argument as the ODC verdicts: every witness,
    # including a DFF-feed flip, is seeded from touched/sources and the
    # region is the backward cone of the seeds).  New sites always
    # re-derive (an added gate is touched; a new branch pin's sink is
    # touched or its driver a source — either way inside the region).
    # A verdict outside the region can still flip when the implication
    # closure moved under it: re-derive when any requirement literal's
    # reach row was recomputed (``repair_affected``) or its impossible
    # bit flipped; copy the base verdict everywhere else.
    if base._testability is not None and "testability" in want \
            and fresh._implications is not None \
            and base._implications is not None and dom_region is not None:
        from .testability import (Testability, derive_site, dff_feed_set,
                                  fault_sites, fault_verdict)
        imp = fresh._implications
        changed_nodes = imp.repair_affected or frozenset()
        flipped_bits = imp._impossible ^ base._implications._impossible
        dff_feed = dff_feed_set(netlist)
        base_tb = base._testability
        sites: Dict[tuple, object] = {}
        untestable: Dict[tuple, object] = {}
        for site in fault_sites(netlist):
            base_rec = base_tb.sites.get(site)
            structural = base_rec is None or site[1] in dom_region
            rec = (derive_site(fresh, site, dff_feed) if structural
                   else base_rec)
            sites[site] = rec
            redo = structural
            if not redo:
                for reqs in rec.requirements:
                    for r in reqs:
                        node = 2 * r.signal + r.value
                        if node in changed_nodes \
                                or (flipped_bits >> node) & 1:
                            redo = True
                            break
                    if redo:
                        break
            for value in (0, 1):
                if redo:
                    verdict = fault_verdict(imp, rec, value)
                else:
                    verdict = base_tb.untestable.get((site, value))
                if verdict is not None:
                    untestable[(site, value)] = verdict
        fresh._testability = Testability(sites, untestable)

    # -- reset fixpoints -----------------------------------------------
    if base._reset and "reset" in want:
        _repair_reset(netlist, base, fresh, delta, fwd_region())

    # -- the retirable CNF ---------------------------------------------
    # Only when the *same* netlist object was edited in place — the
    # prover is stolen from the bundle being replaced.  A child copy
    # gets its own prover lazily.  The sequential prover's unrollings
    # are not retirable; it is always rebuilt on demand.
    if base._prover is not None and "prover" in want \
            and base.netlist is netlist:
        prover = base._prover
        if prover.refresh(netlist, delta, facts=fresh):
            fresh._prover = prover

    return fresh
