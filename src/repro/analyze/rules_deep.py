"""Deep rules: findings that need the dataflow fixed points.

These consume :class:`~repro.analyze.dataflow.NetlistFacts` — ternary
constants, the implication closure, structural-hash classes and
dominator/ODC sets — and therefore cost more than a graph sweep.  They
run only under ``repro lint --deep`` (or ``lint_netlist(deep=True)``)
and only once the structural and semantic groups report no errors.

Each rule proves something the shallow rules merely approximate:

* ``const-line`` — the line's *value* is fixed for every input vector,
  even when no ``CONST`` gate is anywhere near it (implication
  contradictions prove ``AND(a, NOT a) = 0``; hash cancellation proves
  ``XOR(g, g) = 0``);
* ``duplicate-logic`` — two gates compute the identical function under
  input reordering, duplicate-operand folding and De Morgan phase
  normalization, not merely the same gate type over the same wires;
* ``odc-unobservable`` — the line reaches a primary output, but every
  path is statically blocked by a dominator whose side input provably
  carries the controlling value, so no fault *effect* ever gets
  through.  ``unobservable-line`` only catches the no-path case.

Constant and blocked lines matter to diagnosis directly: a correction
on such a line can never change a primary output on any vector, so the
search keeps resimulating a suspect that cannot explain anything.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import SOURCE_TYPES, GateType
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity

_rule = DEFAULT_REGISTRY.rule


def _proof_of(facts, index: int) -> str:
    """Which analysis established the constant (for the report)."""
    if index in facts.constants():
        return "ternary-propagation"
    if index in facts.implications().implied_constants:
        return "implication-contradiction"
    return "structural-hash"


@_rule("const-line", "deep", Severity.WARNING,
       "no live line is provably constant over all input vectors "
       "(constants, implications and hashing combined)")
def check_const_line(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    live = ctx.live()
    gates = ctx.netlist.gates
    for index, value in sorted(facts.known_constants(deep=True).items()):
        gate = gates[index]
        if gate.gtype in SOURCE_TYPES or index not in live:
            continue  # declared constants and dead logic have own rules
        proof = _proof_of(facts, index)
        yield Diagnostic(
            "const-line", Severity.WARNING,
            f"line {gate.name!r} ({gate.gtype.name}) is provably "
            f"constant {value} on every input vector "
            f"(proof: {proof}); any correction there is "
            f"indistinguishable from a constant swap",
            gate=gate.name, data={"value": value, "proof": proof})


@_rule("duplicate-logic", "deep", Severity.WARNING,
       "no two live gates compute the identical function (under input "
       "sorting and negation normalization)")
def check_duplicate_logic(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    live = ctx.live()
    names = [g.name for g in ctx.netlist.gates]
    for group in facts.duplicate_groups():
        members = [i for i in group if i in live]
        if len(members) < 2:
            continue
        pretty = [names[i] for i in members]
        yield Diagnostic(
            "duplicate-logic", Severity.WARNING,
            f"gates {pretty} compute the identical function; duplicated "
            f"logic doubles the suspect space without adding "
            f"diagnosability", gate=pretty[0], data={"gates": pretty})


@_rule("odc-unobservable", "deep", Severity.WARNING,
       "no live line is fully masked by static ODC conditions "
       "(constant controlling side input on a dominator)")
def check_odc_unobservable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    facts = ctx.facts()
    live = ctx.live()
    gates = ctx.netlist.gates
    consts = facts.known_constants(deep=True)
    for index in sorted(facts.blocked_signals(deep=True)):
        gate = gates[index]
        if index not in live or gate.gtype is GateType.DFF:
            continue
        if index in consts or gate.gtype in (GateType.CONST0,
                                             GateType.CONST1):
            continue  # constant lines are reported by const-line
        witness = next(
            cond for cond in facts.odc_conditions(index)
            if consts.get(cond.side_input) == cond.ctrl)
        dom_name = gates[witness.dominator].name
        side_name = gates[witness.side_input].name
        yield Diagnostic(
            "odc-unobservable", Severity.WARNING,
            f"line {gate.name!r} reaches a primary output only through "
            f"dominator {dom_name!r}, whose side input {side_name!r} is "
            f"provably constant {witness.ctrl} (its controlling value); "
            f"no change on the line is ever observable",
            gate=gate.name,
            data={"dominator": dom_name, "side_input": side_name,
                  "controlling_value": witness.ctrl})
