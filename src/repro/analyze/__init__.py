"""repro.analyze — rule-based netlist lint and diagnosis invariants.

A static-analysis engine over :class:`~repro.circuit.netlist.Netlist`:

* a :class:`RuleRegistry` of built-in rules in three groups —
  *structural* (index/arity/name-map integrity, interface presence;
  these supersede the old ``circuit/validate.py`` checks), *semantic*
  (combinational loops with the cycle printed, dead cones,
  unobservable lines, constant feeds, foldable logic, inverter chains)
  and *deep* (dataflow-backed: provably-constant lines, duplicate
  logic, ODC-masked lines; opt-in via ``lint_netlist(deep=True)``);
* :mod:`~repro.analyze.dataflow` — an SCC-scheduled worklist
  fixed-point engine with four analyses (ternary constants,
  structural-hash equivalence, implication closure,
  dominators + ODCs), bundled as :class:`NetlistFacts` and cached on
  the netlist;
* *prove* rules backed by the SAT-sweeping engine
  (:mod:`~repro.analyze.prove`): proven-constant lines,
  proven-duplicate logic and proven-redundant fanins, each verdict
  three-valued with the refuting counterexample attached when one
  exists (opt-in via ``lint_netlist(prove=True)``);
* *seq* rules backed by the sequential engine
  (:mod:`~repro.analyze.seq`): a reset-state ternary fixpoint and
  SAT-backed k-induction correspondence prove stuck registers,
  sequential constants, redundant registers and sequential
  equivalences at every cycle from reset; refutations carry the
  concrete input sequence (opt-in via ``lint_netlist(seq=True)``);
* severity levels (error / warning / info) with per-rule suppression;
* text and JSON reporters (:class:`LintReport`);
* :class:`InvariantChecker`, a debug-mode guard over the engine's
  ``Verr``/``Vcorr`` bit-lists and the Theorem 1 screen.

Entry points: :func:`lint_netlist` (library), ``repro lint`` (CLI),
:func:`lint_on_load` (automatic post-parse hook in ``bench_io`` /
``verilog_io``, policy via :func:`set_load_lint_policy`).
"""

from .core import (AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Rule,
                   RuleRegistry, Severity)
from .dataflow import (DataflowDomain, Implications, NetlistFacts,
                       OdcCondition, TernaryConstants, netlist_facts,
                       run_dataflow)
from .invariants import InvariantChecker
from .lint import (DEFAULT_GROUPS, GROUP_ORDER, LOAD_POLICIES,
                   get_load_lint_policy, lint_netlist, lint_on_load,
                   set_load_lint_policy)
from .prove import (ProofStatus, ProvenConstant, Prover, SweepResult,
                    SweepStats, Verdict, prove_equivalent)
from .report import LintReport
from .seq import (ResetFixpoint, SeqConstant, SeqProver, SeqStats,
                  SeqSweepResult, SeqTrace, SeqVerdict, replay_trace,
                  reset_fixpoint, seq_masked_signals)
from .testability import (ScoapCosts, SiteTestability, Testability,
                          UntestableFault, derive_testability, scoap_costs)

# Importing the rule modules registers the built-in rules.
from . import rules_structural, rules_semantic, rules_deep  # noqa: E402,F401
from . import rules_prove  # noqa: E402,F401
from . import rules_seq  # noqa: E402,F401
from . import rules_testability  # noqa: E402,F401

__all__ = [
    "AnalysisContext", "DEFAULT_REGISTRY", "Diagnostic", "Rule",
    "RuleRegistry", "Severity",
    "DataflowDomain", "Implications", "NetlistFacts", "OdcCondition",
    "TernaryConstants", "netlist_facts", "run_dataflow",
    "InvariantChecker",
    "DEFAULT_GROUPS", "GROUP_ORDER", "LOAD_POLICIES",
    "get_load_lint_policy", "lint_netlist", "lint_on_load",
    "set_load_lint_policy",
    "ProofStatus", "ProvenConstant", "Prover", "SweepResult",
    "SweepStats", "Verdict", "prove_equivalent",
    "ResetFixpoint", "SeqConstant", "SeqProver", "SeqStats",
    "SeqSweepResult", "SeqTrace", "SeqVerdict", "replay_trace",
    "reset_fixpoint", "seq_masked_signals",
    "ScoapCosts", "SiteTestability", "Testability", "UntestableFault",
    "derive_testability", "scoap_costs",
    "LintReport",
]
