"""repro.analyze — rule-based netlist lint and diagnosis invariants.

A static-analysis engine over :class:`~repro.circuit.netlist.Netlist`:

* a :class:`RuleRegistry` of ~15 built-in rules in two groups —
  *structural* (index/arity/name-map integrity, interface presence;
  these supersede the old ``circuit/validate.py`` checks) and
  *semantic* (combinational loops with the cycle printed, dead cones,
  unobservable lines, constant feeds, foldable logic, inverter chains);
* severity levels (error / warning / info) with per-rule suppression;
* text and JSON reporters (:class:`LintReport`);
* :class:`InvariantChecker`, a debug-mode guard over the engine's
  ``Verr``/``Vcorr`` bit-lists and the Theorem 1 screen.

Entry points: :func:`lint_netlist` (library), ``repro lint`` (CLI),
:func:`lint_on_load` (automatic post-parse hook in ``bench_io`` /
``verilog_io``, policy via :func:`set_load_lint_policy`).
"""

from .core import (AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Rule,
                   RuleRegistry, Severity)
from .invariants import InvariantChecker
from .lint import (GROUP_ORDER, LOAD_POLICIES, get_load_lint_policy,
                   lint_netlist, lint_on_load, set_load_lint_policy)
from .report import LintReport

# Importing the rule modules registers the built-in rules.
from . import rules_structural, rules_semantic  # noqa: E402,F401

__all__ = [
    "AnalysisContext", "DEFAULT_REGISTRY", "Diagnostic", "Rule",
    "RuleRegistry", "Severity",
    "InvariantChecker",
    "GROUP_ORDER", "LOAD_POLICIES", "get_load_lint_policy",
    "lint_netlist", "lint_on_load", "set_load_lint_policy",
    "LintReport",
]
