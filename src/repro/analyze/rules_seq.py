"""Seq rules: lint findings backed by sequential proofs.

The ``seq`` group runs the reset-state ternary fixpoint and the
k-induction correspondence engine (:mod:`repro.analyze.seq`) and
reports only what one of them *proved* about the machine's behaviour
at every cycle from reset:

* ``seq-stuck-register`` — a flip-flop provably never leaves one value
  from reset (the classic "stuck register": its state bit, and every
  correction on it, is sequentially untestable);
* ``seq-const-line`` — a line that is not combinationally constant but
  provably holds one value at every cycle from reset (combinational
  constants stay with the ``deep``/``prove`` groups so the finding is
  genuinely sequential);
* ``seq-redundant-register`` — two or more flip-flops proven
  equivalent (or antivalent) at every cycle from reset: the state
  encoding carries a redundant bit;
* ``seq-equivalent-logic`` — a proven correspondence class without a
  redundant register: signals that agree at every cycle from reset
  even though no combinational argument relates them.

Like the ``prove`` group these rules are opt-in (``repro lint --seq``)
and run only once the earlier groups are error-free: time-frame
expansion needs a topological order, which combinational loops (a
semantic ERROR) deny.  Every WARNING is proof-backed — fixpoint
invariant or simultaneous k-induction — and every undecided or refuted
candidate is surfaced as INFO (refutations carry the concrete input
sequence from reset that distinguishes the pair), never dropped
silently.  On a netlist without flip-flops the group is a no-op.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import GateType, SOURCE_TYPES
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity
from .prove import ProofStatus

_rule = DEFAULT_REGISTRY.rule


def _seq_result(ctx: AnalysisContext):
    """The context's cached seq sweep (budget set by the lint driver)."""
    return ctx.facts().seq_prover(
        conflict_budget=getattr(ctx, "seq_budget", None)).sweep()


@_rule("seq-stuck-register", "seq", Severity.WARNING,
       "no flip-flop is provably stuck at one value from reset")
def check_seq_stuck_register(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.netlist.dffs():
        return
    result = _seq_result(ctx)
    live = ctx.live()
    gates = ctx.netlist.gates
    for index in sorted(result.constants):
        gate = gates[index]
        if gate.gtype is not GateType.DFF or index not in live:
            continue
        constant = result.constants[index]
        yield Diagnostic(
            "seq-stuck-register", Severity.WARNING,
            f"flip-flop {gate.name!r} provably holds {constant.value} at "
            f"every cycle from reset (proof: {constant.proof}); the "
            f"state bit is sequentially untestable and any correction "
            f"on it is unobservable",
            gate=gate.name,
            data={"status": str(ProofStatus.PROVEN),
                  "value": constant.value, "proof": constant.proof,
                  "conflicts": constant.verdict.conflicts})


@_rule("seq-const-line", "seq", Severity.WARNING,
       "no live line is provably constant at every cycle from reset "
       "beyond the combinational constants")
def check_seq_const_line(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.netlist.dffs():
        return
    result = _seq_result(ctx)
    live = ctx.live()
    gates = ctx.netlist.gates
    comb = ctx.facts().constants()
    for index in sorted(result.constants):
        gate = gates[index]
        if (gate.gtype in SOURCE_TYPES or gate.gtype is GateType.DFF
                or index not in live or index in comb):
            continue  # sources, registers and comb constants have own rules
        constant = result.constants[index]
        yield Diagnostic(
            "seq-const-line", Severity.WARNING,
            f"line {gate.name!r} ({gate.gtype.name}) provably holds "
            f"{constant.value} at every cycle from reset (proof: "
            f"{constant.proof}) though it is not combinationally "
            f"constant; the machine never exercises it",
            gate=gate.name,
            data={"status": str(ProofStatus.PROVEN),
                  "value": constant.value, "proof": constant.proof,
                  "conflicts": constant.verdict.conflicts})
    for index, value, verdict in result.unknown_constants:
        gate = gates[index]
        if index not in live:
            continue
        yield Diagnostic(
            "seq-const-line", Severity.INFO,
            f"line {gate.name!r} looks stuck at {value} on every "
            f"simulated cycle from reset but the {result.k}-induction "
            f"proof did not close ({verdict.conflicts} conflicts); "
            f"undecided",
            gate=gate.name,
            data={"status": str(ProofStatus.UNKNOWN), "value": value,
                  "conflicts": verdict.conflicts})
    for index, value, verdict in result.refuted_constants:
        gate = gates[index]
        if index not in live or verdict.trace is None:
            continue
        yield Diagnostic(
            "seq-const-line", Severity.INFO,
            f"line {gate.name!r} looked stuck at {value} but a concrete "
            f"input sequence from reset drives it to {1 - value} at "
            f"cycle {verdict.trace.frame}; not sequentially constant",
            gate=gate.name,
            data={"status": str(ProofStatus.REFUTED), "value": value,
                  "trace": verdict.trace.to_dict(),
                  "conflicts": verdict.conflicts})


def _split_classes(ctx: AnalysisContext):
    """Proven classes -> (redundant-register, equivalent-logic) halves.

    A class with two or more live flip-flop members is a redundant
    register finding; any other class with two or more live non-source
    members is an equivalent-logic finding.  Phases are re-based on the
    first kept member.
    """
    result = _seq_result(ctx)
    live = ctx.live()
    gates = ctx.netlist.gates
    registers, logic = [], []
    for members in result.classes:
        kept = [(sig, phase) for sig, phase in members
                if sig in live and gates[sig].gtype not in SOURCE_TYPES]
        if len(kept) < 2:
            continue
        base = kept[0][1]
        kept = [(sig, phase ^ base) for sig, phase in kept]
        n_dffs = sum(1 for sig, _ph in kept
                     if gates[sig].gtype is GateType.DFF)
        (registers if n_dffs >= 2 else logic).append(kept)
    return registers, logic


@_rule("seq-redundant-register", "seq", Severity.WARNING,
       "no two flip-flops are provably equivalent at every cycle "
       "from reset")
def check_seq_redundant_register(
        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.netlist.dffs():
        return
    registers, _logic = _split_classes(ctx)
    gates = ctx.netlist.gates
    for kept in registers:
        pretty = [gates[sig].name for sig, _phase in kept]
        inverted = [gates[sig].name for sig, phase in kept if phase]
        ffs = [gates[sig].name for sig, _ph in kept
               if gates[sig].gtype is GateType.DFF]
        relation = ("track each other" if not inverted else
                    f"track each other up to inversion of {inverted}")
        yield Diagnostic(
            "seq-redundant-register", Severity.WARNING,
            f"flip-flops {ffs} provably {relation} at every cycle from "
            f"reset (k-induction, k={_seq_result(ctx).k}); the state "
            f"encoding carries a redundant bit "
            f"(full class: {pretty})",
            gate=ffs[0],
            data={"status": str(ProofStatus.PROVEN), "registers": ffs,
                  "gates": pretty, "inverted": inverted})


@_rule("seq-equivalent-logic", "seq", Severity.WARNING,
       "no two signals are provably equivalent at every cycle from "
       "reset without being combinationally related")
def check_seq_equivalent_logic(
        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.netlist.dffs():
        return
    result = _seq_result(ctx)
    _registers, logic = _split_classes(ctx)
    gates = ctx.netlist.gates
    live = ctx.live()
    for kept in logic:
        pretty = [gates[sig].name for sig, _phase in kept]
        inverted = [gates[sig].name for sig, phase in kept if phase]
        relation = ("equivalent" if not inverted else
                    f"equivalent up to inversion of {inverted}")
        yield Diagnostic(
            "seq-equivalent-logic", Severity.WARNING,
            f"signals {pretty} are proven {relation} at every cycle "
            f"from reset (k-induction, k={result.k}); sequentially "
            f"duplicated logic doubles the suspect space without "
            f"adding diagnosability",
            gate=pretty[0],
            data={"status": str(ProofStatus.PROVEN), "gates": pretty,
                  "inverted": inverted})
    for a, b, phase, verdict in result.refuted_pairs:
        if a not in live or b not in live or verdict.trace is None:
            continue
        yield Diagnostic(
            "seq-equivalent-logic", Severity.INFO,
            f"signals [{gates[a].name!r}, {gates[b].name!r}] agreed on "
            f"every simulated cycle but a concrete input sequence from "
            f"reset distinguishes them at cycle {verdict.trace.frame}; "
            f"not sequentially "
            f"{'antivalent' if phase else 'equivalent'}",
            gate=gates[a].name,
            data={"status": str(ProofStatus.REFUTED),
                  "gates": [gates[a].name, gates[b].name],
                  "antivalence": phase,
                  "trace": verdict.trace.to_dict(),
                  "conflicts": verdict.conflicts})
    for a, b, phase, verdict in result.unknown_pairs:
        if a not in live or b not in live:
            continue
        yield Diagnostic(
            "seq-equivalent-logic", Severity.INFO,
            f"signals [{gates[a].name!r}, {gates[b].name!r}] look "
            f"sequentially {'antivalent' if phase else 'equivalent'} "
            f"but the {result.k}-induction proof did not close "
            f"({verdict.conflicts} conflicts); undecided",
            gate=gates[a].name,
            data={"status": str(ProofStatus.UNKNOWN),
                  "gates": [gates[a].name, gates[b].name],
                  "antivalence": phase,
                  "conflicts": verdict.conflicts})
