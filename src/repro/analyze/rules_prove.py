"""Prove rules: lint findings backed by SAT proofs, not heuristics.

The ``prove`` group runs the SAT-sweeping engine
(:mod:`repro.analyze.prove`) over the netlist and reports only what the
solver (or the already-sound structural analyses) *proved*:

* ``proven-const-line`` — the line holds one value on every input
  vector; the proof is named (``sat-sweep`` or the dataflow provenance)
  and budget-exhausted constant candidates are surfaced as INFO rather
  than dropped;
* ``proven-duplicate-logic`` — an equivalence/antivalence class whose
  merges are each certified UNSAT (or by hash-consing, which is a proof
  already).  Near-miss candidates — signatures agreed on every random
  vector but the solver found a counterexample — are reported as INFO
  with the refuting vector attached, as are budget-exhausted pairs;
* ``proven-redundant-fanin`` — a multi-input gate computes the same
  function with one of its pins removed, so the connection carries no
  information (classic redundancy, the dual of an untestable stuck-at).

Like the ``deep`` group these rules are opt-in (``repro lint --prove``)
and run only once the earlier groups are error-free: the sweep needs a
topological order, which combinational loops (a semantic ERROR) deny.
Unlike the ``deep`` group a PROVEN verdict here is exact by
construction — the property tests pin every one against exhaustive
simulation.
"""

from __future__ import annotations

from typing import Iterator

from ..circuit.gatetypes import (GateType, MULTI_INPUT_TYPES,
                                 SOURCE_TYPES)
from .core import AnalysisContext, DEFAULT_REGISTRY, Diagnostic, Severity
from .prove import ProofStatus

_rule = DEFAULT_REGISTRY.rule

#: Gate types never reported as duplicate-class members (leaf literals).
_LEAF_TYPES = (GateType.INPUT, GateType.DFF,
               GateType.CONST0, GateType.CONST1)


def _prover_of(ctx: AnalysisContext):
    """The context's cached prover (budget set by the lint driver)."""
    return ctx.facts().prover(
        conflict_budget=getattr(ctx, "prove_budget", None))


@_rule("proven-const-line", "prove", Severity.WARNING,
       "no live line is SAT-provably constant over all input vectors")
def check_proven_const_line(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    result = _prover_of(ctx).sweep()
    live = ctx.live()
    gates = ctx.netlist.gates
    for index in sorted(result.constants):
        gate = gates[index]
        if gate.gtype in SOURCE_TYPES or index not in live:
            continue  # declared constants and dead logic have own rules

        proven = result.constants[index]
        yield Diagnostic(
            "proven-const-line", Severity.WARNING,
            f"line {gate.name!r} ({gate.gtype.name}) is proven constant "
            f"{proven.value} on every input vector (proof: "
            f"{proven.proof}); any correction there is indistinguishable "
            f"from a constant swap",
            gate=gate.name,
            data={"status": str(ProofStatus.PROVEN),
                  "value": proven.value, "proof": proven.proof,
                  "conflicts": proven.verdict.conflicts})
    for index, value, verdict in result.unknown_constants:
        gate = gates[index]
        if index not in live:
            continue
        yield Diagnostic(
            "proven-const-line", Severity.INFO,
            f"line {gate.name!r} looks constant {value} on every "
            f"simulated vector but the proof exhausted its budget "
            f"({verdict.conflicts} conflicts); undecided",
            gate=gate.name,
            data={"status": str(ProofStatus.UNKNOWN), "value": value,
                  "conflicts": verdict.conflicts})


@_rule("proven-duplicate-logic", "prove", Severity.WARNING,
       "no two live gates are SAT-provably equivalent (or antivalent)")
def check_proven_duplicate_logic(
        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    result = _prover_of(ctx).sweep()
    live = ctx.live()
    gates = ctx.netlist.gates
    for members, proof in zip(result.classes, result.class_proofs):
        kept = [(sig, phase) for sig, phase in members
                if sig in live and gates[sig].gtype not in _LEAF_TYPES]
        if len(kept) < 2:
            continue
        base = kept[0][1]
        kept = [(sig, phase ^ base) for sig, phase in kept]
        pretty = [gates[sig].name for sig, _phase in kept]
        inverted = [gates[sig].name for sig, phase in kept if phase]
        relation = ("equivalent" if not inverted else
                    f"equivalent up to inversion of {inverted}")
        yield Diagnostic(
            "proven-duplicate-logic", Severity.WARNING,
            f"gates {pretty} are proven {relation} on every input "
            f"vector (proof: {proof}); duplicated logic doubles the "
            f"suspect space without adding diagnosability",
            gate=pretty[0],
            data={"status": str(ProofStatus.PROVEN), "gates": pretty,
                  "inverted": inverted, "proof": proof})
    for a, b, phase, verdict in result.refuted_pairs:
        if a not in live or b not in live:
            continue
        cex = list(verdict.counterexample or ())
        yield Diagnostic(
            "proven-duplicate-logic", Severity.INFO,
            f"gates [{gates[a].name!r}, {gates[b].name!r}] agreed on "
            f"every random vector but are NOT "
            f"{'antivalent' if phase else 'equivalent'}: counterexample "
            f"{cex} distinguishes them ({verdict.conflicts} conflicts)",
            gate=gates[a].name,
            data={"status": str(ProofStatus.REFUTED),
                  "gates": [gates[a].name, gates[b].name],
                  "antivalence": phase, "counterexample": cex,
                  "conflicts": verdict.conflicts})
    for a, b, phase, verdict in result.unknown_pairs:
        if a not in live or b not in live:
            continue
        yield Diagnostic(
            "proven-duplicate-logic", Severity.INFO,
            f"gates [{gates[a].name!r}, {gates[b].name!r}] look "
            f"{'antivalent' if phase else 'equivalent'} but the proof "
            f"exhausted its budget ({verdict.conflicts} conflicts); "
            f"undecided",
            gate=gates[a].name,
            data={"status": str(ProofStatus.UNKNOWN),
                  "gates": [gates[a].name, gates[b].name],
                  "antivalence": phase,
                  "conflicts": verdict.conflicts})


@_rule("proven-redundant-fanin", "prove", Severity.WARNING,
       "no live multi-input gate computes the same function with one "
       "of its pins removed")
def check_proven_redundant_fanin(
        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    prover = _prover_of(ctx)
    prover.sweep()  # signatures refined before any pin query
    live = ctx.live()
    for gate in ctx.netlist.gates:
        if (gate.gtype not in MULTI_INPUT_TYPES
                or len(gate.fanin) < 2 or gate.index not in live):
            continue
        for pin in range(len(gate.fanin)):
            verdict = prover.prove_pin_redundant(gate.index, pin)
            src = ctx.netlist.gates[gate.fanin[pin]].name
            if verdict.status is ProofStatus.PROVEN:
                yield Diagnostic(
                    "proven-redundant-fanin", Severity.WARNING,
                    f"pin {pin} of gate {gate.name!r} "
                    f"({gate.gtype.name}, fed by {src!r}) is proven "
                    f"redundant: dropping it leaves the function "
                    f"unchanged on every input vector",
                    gate=gate.name,
                    data={"status": str(ProofStatus.PROVEN), "pin": pin,
                          "source": src,
                          "conflicts": verdict.conflicts})
            elif verdict.status is ProofStatus.UNKNOWN:
                yield Diagnostic(
                    "proven-redundant-fanin", Severity.INFO,
                    f"pin {pin} of gate {gate.name!r} looks redundant "
                    f"on every simulated vector but the proof exhausted "
                    f"its budget ({verdict.conflicts} conflicts); "
                    f"undecided",
                    gate=gate.name,
                    data={"status": str(ProofStatus.UNKNOWN),
                          "pin": pin, "source": src,
                          "conflicts": verdict.conflicts})
