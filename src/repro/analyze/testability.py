"""Static testability analysis: SCOAP costs and untestable faults.

Two analyses, both derived without any search:

* **SCOAP controllability/observability** (Goldstein's classic
  testability measures).  ``CC0``/``CC1`` — the cost of justifying a
  0/1 on a signal from the primary inputs — is a *forward* min-plus
  fixed point; ``CO`` — the cost of propagating a change on the signal
  to a primary output — is a *backward* one.  Both run as
  :class:`~repro.analyze.dataflow.DataflowDomain` lattices on the
  SCC-scheduled worklist engine, so they are cycle-safe: costs start at
  the saturating top :data:`INF` and only descend, every gate hop adds
  a strictly positive ``+1``, so chaotic iteration inside a cyclic SCC
  converges exactly like Bellman-Ford with non-negative weights.

* **Static untestable-fault identification** (FIRE-style, from the
  implication bundle).  Every collapsed stuck-at fault site carries a
  set of *requirement literals* — fault-free values the single
  detecting vector must realize: the excitation literal (the driver at
  the complement of the stuck value), the *site-side* literals of a
  branch fault (every other fanin of the sink at the sink's
  non-controlling value: the effect enters the circuit only through
  the sink), and the *dominator-side* literals from the ODC conditions
  (every side input of every dominator non-controlling: the effect
  must pass every dominator to reach an output).  A fault whose
  requirement set contains an impossible literal
  (:meth:`Implications.impossible`, which already folds the ternary
  and implied constants in), or two literals that statically
  contradict (:meth:`Implications.holds` of one against the other's
  complement), is UNTESTABLE with provenance — no PODEM search, no SAT
  call.

Sequential soundness.  The implication closure treats ``INPUT`` and
``DFF`` gates as free cuts, so its facts hold in *every* frame of a
sequential circuit.  In the first frame where a faulty-machine trace
diverges from the good one, all incoming state is still equal, so the
divergence must originate at the fault site: the excitation and
site-side requirements apply in that frame unchanged.  What does *not*
survive sequentially is the combinational output-dominator argument —
an effect may escape into a register and come back frames later.  A
site whose fanout cone reaches a DFF input therefore has *escape*: its
dominator-side requirements and the "unobservable" verdict are
disabled, only excitation/site-side reasoning is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..circuit.gatetypes import GateType, controlling_value
from ..circuit.lines import LineTable
from ..circuit.netlist import Gate, Netlist
from .dataflow import DataflowDomain, Implications, run_dataflow

__all__ = [
    "INF", "ScoapCosts", "scoap_costs", "Requirement", "SiteTestability",
    "UntestableFault", "Testability", "fault_sites", "derive_site",
    "fault_verdict", "derive_testability", "dff_feed_set", "describe_site",
]

#: Saturating "unachievable" cost.  Finite so the min-plus algebra stays
#: on plain ints; larger than any realizable cost (every hop adds 1 and
#: netlists are nowhere near 10**9 gates).
INF = 10 ** 9


def _sat1(x: int) -> int:
    """``x + 1`` saturating at :data:`INF`."""
    return x + 1 if x < INF else INF


def _sat_add(a: int, b: int) -> int:
    """``a + b`` saturating at :data:`INF`."""
    s = a + b
    return s if s < INF else INF


# ----------------------------------------------------------------------
# SCOAP lattices
# ----------------------------------------------------------------------
class _Controllability(DataflowDomain):
    """Forward min-plus (CC0, CC1) pairs.

    Lattice: pairs of ints in ``[0, INF]`` ordered pointwise, iteration
    descending from the top ``(INF, INF)``.  The transfer is a min of
    saturating sums of the fanin costs, hence monotone; every formula
    adds the strictly positive ``+1`` gate hop, so in a cyclic SCC a
    path through the cycle only ever costs more than one around it —
    no negative cycles, and the chaotic iteration converges to the
    shortest-justification costs exactly as Bellman-Ford does.

    ``INPUT`` and ``DFF`` gates are free cuts at cost ``(1, 1)``
    (full-scan convention, mirroring how the implication closure and
    the simulator treat registers); constants cost 0 on their forced
    side and :data:`INF` on the other.
    """

    direction = "forward"
    iterate_cycles = True

    def start(self, gate: Gate) -> Tuple[int, int]:
        return (INF, INF)

    def transfer(self, gate: Gate, values: list) -> Tuple[int, int]:
        gt = gate.gtype
        if gt is GateType.CONST0:
            return (0, INF)
        if gt is GateType.CONST1:
            return (INF, 0)
        if gt in (GateType.INPUT, GateType.DFF):
            return (1, 1)
        ins = [values[src] for src in gate.fanin]
        if not ins:
            return (INF, INF)
        if gt is GateType.BUF:
            return (_sat1(ins[0][0]), _sat1(ins[0][1]))
        if gt is GateType.NOT:
            return (_sat1(ins[0][1]), _sat1(ins[0][0]))
        if gt in (GateType.AND, GateType.NAND):
            all1, any0 = 0, INF
            for c0, c1 in ins:
                all1 = _sat_add(all1, c1)
                any0 = min(any0, c0)
            core = (_sat1(any0), _sat1(all1))
            return core if gt is GateType.AND else (core[1], core[0])
        if gt in (GateType.OR, GateType.NOR):
            all0, any1 = 0, INF
            for c0, c1 in ins:
                all0 = _sat_add(all0, c0)
                any1 = min(any1, c1)
            core = (_sat1(all0), _sat1(any1))
            return core if gt is GateType.OR else (core[1], core[0])
        # XOR/XNOR: parity DP over the fanins — (cheapest even-parity,
        # cheapest odd-parity) input combination so far.
        even, odd = 0, INF
        for c0, c1 in ins:
            even, odd = (min(_sat_add(even, c0), _sat_add(odd, c1)),
                         min(_sat_add(even, c1), _sat_add(odd, c0)))
        core = (_sat1(even), _sat1(odd))
        return core if gt is GateType.XOR else (core[1], core[0])


class _Observability(DataflowDomain):
    """Backward min-plus CO given fixed (CC0, CC1) vectors.

    ``CO(po) = 0`` at the output pin; through a consumer gate,
    ``CO(pin) = CO(gate) + 1 + sum(side-pin non-controlling cost)``
    where the non-controlling cost of a side input is ``CC1`` for
    AND/NAND, ``CC0`` for OR/NOR and ``min(CC0, CC1)`` for XOR/XNOR
    (any defined value propagates through an XOR).  A stem's CO is the
    min over its branch pins.  DFF consumers are sequential edges and
    contribute nothing — CO measures same-frame combinational
    observability, matching :meth:`NetlistFacts.observable_set`.

    Monotone descending from :data:`INF` with a strictly positive hop,
    so cyclic SCCs converge (same Bellman-Ford argument as
    :class:`_Controllability`).
    """

    direction = "backward"
    iterate_cycles = True

    def __init__(self, netlist: Netlist, cc: List[Tuple[int, int]]):
        self.netlist = netlist
        self.cc = cc
        self.outputs = set(netlist.outputs)
        self._fanouts = netlist.fanouts()

    def start(self, gate: Gate) -> int:
        return INF

    def _noncontrolling_cost(self, gt: GateType, src: int) -> int:
        c0, c1 = self.cc[src]
        if gt in (GateType.AND, GateType.NAND):
            return c1
        if gt in (GateType.OR, GateType.NOR):
            return c0
        if gt in (GateType.XOR, GateType.XNOR):
            return min(c0, c1)
        return 0  # BUF/NOT: no side pins exist

    def transfer(self, gate: Gate, values: list) -> int:
        i = gate.index
        best = 0 if i in self.outputs else INF
        gates = self.netlist.gates
        for consumer in dict.fromkeys(self._fanouts[i]):
            cgate = gates[consumer]
            gt = cgate.gtype
            if gt is GateType.DFF:
                continue
            down = values[consumer]
            if down >= INF:
                continue
            # Per-pin side costs (python ints don't overflow; cap at
            # the end so one INF side pin poisons only its own pin).
            costs = [self._noncontrolling_cost(gt, src)
                     for src in cgate.fanin]
            total = sum(costs)
            for pin, src in enumerate(cgate.fanin):
                if src != i:
                    continue
                through = down + 1 + (total - costs[pin])
                if through < best:
                    best = through
        return best if best < INF else INF


@dataclass(frozen=True)
class ScoapCosts:
    """SCOAP cost vectors, one entry per gate index."""

    cc0: Tuple[int, ...]
    cc1: Tuple[int, ...]
    co: Tuple[int, ...]

    def pairs(self) -> List[Tuple[int, int]]:
        """(CC0, CC1) per gate — the :class:`_Observability` input."""
        return list(zip(self.cc0, self.cc1))


def scoap_costs(netlist: Netlist) -> ScoapCosts:
    """Compute the full SCOAP cost vectors for one netlist snapshot."""
    cc = run_dataflow(netlist, _Controllability())
    co = run_dataflow(netlist, _Observability(netlist, cc))
    return ScoapCosts(tuple(c[0] for c in cc), tuple(c[1] for c in cc),
                      tuple(co))


# ----------------------------------------------------------------------
# static untestable-fault identification
# ----------------------------------------------------------------------
#: Site keys are structural, liveness-independent and stable across
#: edits: ``("stem", driver)`` for every gate output, ``("branch",
#: sink, pin)`` for every fanout-branch pin (the :class:`LineTable`
#: convention: a branch exists when its source has more than one
#: consumer pin).
Site = Tuple


@dataclass(frozen=True)
class Requirement:
    """One fault-free literal the detecting vector must realize.

    ``origin`` is the provenance: ``"excite"`` (the driver must carry
    the complement of the stuck value), ``"site"`` (a side fanin of a
    branch fault's sink must be non-controlling) or ``"dominator"`` (a
    side input of an output dominator must be non-controlling; only
    sound without sequential escape).  ``anchor`` is the sink or
    dominator gate the literal belongs to (``None`` for excitation).
    """

    signal: int
    value: int
    origin: str
    anchor: Optional[int] = None


@dataclass(frozen=True)
class SiteTestability:
    """Static per-site record: requirement literals for both polarities."""

    site: Site
    head: int
    driver: int
    observable: bool
    escape: bool
    #: ``requirements[v]`` — literals required to detect stuck-at-``v``.
    requirements: Tuple[Tuple[Requirement, ...], Tuple[Requirement, ...]]


@dataclass(frozen=True)
class UntestableFault:
    """One statically-proven untestable stuck-at fault, with provenance.

    ``reason`` is ``"unobservable"`` (no combinational path to any
    output and no sequential escape), ``"impossible-requirement"``
    (a requirement literal occurs in no consistent assignment) or
    ``"conflicting-requirements"`` (one requirement statically implies
    the complement of another).  ``witness`` lists the ``(signal,
    value)`` literals that close the argument.
    """

    site: Site
    value: int
    reason: str
    witness: Tuple[Tuple[int, int], ...] = ()


def dff_feed_set(netlist: Netlist) -> Set[int]:
    """Signals feeding at least one register — the escape frontier."""
    feeds: Set[int] = set()
    for gate in netlist.gates:
        if gate.gtype is GateType.DFF:
            feeds.update(gate.fanin)
    return feeds


def fault_sites(netlist: Netlist) -> List[Site]:
    """Every structural fault site, in deterministic order."""
    fanouts = netlist.fanouts()
    sites: List[Site] = [("stem", gate.index) for gate in netlist.gates]
    for gate in netlist.gates:
        for pin, src in enumerate(gate.fanin):
            if len(fanouts[src]) > 1:
                sites.append(("branch", gate.index, pin))
    return sites


def derive_site(facts, site: Site, dff_feed: Set[int]) -> SiteTestability:
    """Build the requirement record of one site from the facts bundle."""
    netlist = facts.netlist
    gates = netlist.gates
    if site[0] == "stem":
        head = driver = site[1]
    else:
        head = site[1]
        driver = gates[head].fanin[site[2]]
    cone = facts.cone(head)
    observable = facts.dominators(head) is not None
    escape = bool(dff_feed) and not dff_feed.isdisjoint(cone)
    side: List[Requirement] = []
    if site[0] == "branch":
        sink_gate = gates[head]
        ctrl = controlling_value(sink_gate.gtype)
        if ctrl is not None:
            for pin, src in enumerate(sink_gate.fanin):
                # A reconvergent side pin changes with the fault; its
                # fault-free value cannot be required (cycle-safe: in
                # an acyclic netlist no fanin is in cone(sink)).
                if pin == site[2] or src in cone:
                    continue
                side.append(Requirement(src, 1 - ctrl, "site", head))
    doms = tuple(
        Requirement(cond.side_input, 1 - cond.ctrl, "dominator",
                    cond.dominator)
        for cond in facts.odc_conditions(head))
    reqs = tuple(
        (Requirement(driver, 1 - value, "excite"),) + tuple(side) + doms
        for value in (0, 1))
    return SiteTestability(site, head, driver, observable, escape,
                           (reqs[0], reqs[1]))


def fault_verdict(imp: Implications, rec: SiteTestability,
                  value: int) -> Optional[UntestableFault]:
    """The static verdict for stuck-at-``value`` on ``rec``'s site.

    Returns an :class:`UntestableFault` or ``None`` (possibly
    testable).  Under sequential escape only excitation and site-side
    requirements participate (see the module docstring).
    """
    if not rec.observable and not rec.escape:
        return UntestableFault(rec.site, value, "unobservable")
    reqs = rec.requirements[value]
    if rec.escape:
        reqs = tuple(r for r in reqs if r.origin != "dominator")
    literals = sorted({(r.signal, r.value) for r in reqs})
    for sig, val in literals:
        if imp.impossible(sig, val):
            return UntestableFault(rec.site, value,
                                   "impossible-requirement",
                                   ((sig, val),))
    for i, (a, va) in enumerate(literals):
        for b, vb in literals[i + 1:]:
            # Contrapositive completeness makes the one-sided check
            # symmetric; reach includes self, so requiring both phases
            # of one signal conflicts automatically.
            if imp.holds(a, va, b, 1 - vb):
                return UntestableFault(rec.site, value,
                                       "conflicting-requirements",
                                       ((a, va), (b, vb)))
    return None


class Testability:
    """The static testability section of a facts bundle.

    ``sites`` maps every site key to its :class:`SiteTestability`
    record; ``untestable`` maps ``(site, value)`` to the
    :class:`UntestableFault` verdict for every statically-proven
    untestable fault.
    """

    def __init__(self, sites: Dict[Site, SiteTestability],
                 untestable: Dict[Tuple[Site, int], UntestableFault]):
        self.sites = sites
        self.untestable = untestable

    def untestable_line_keys(self, table: LineTable) -> Set[Tuple[int, int]]:
        """``(line_index, stuck_value)`` pairs for a line table.

        Sites without a line (dead gates under ``only_live`` tables,
        single-fanout pins) are simply skipped — the mapping only ever
        under-approximates, never invents a fault.
        """
        keys: Set[Tuple[int, int]] = set()
        for site, value in self.untestable:
            if site[0] == "stem":
                try:
                    line = table.stem(site[1])
                except KeyError:
                    continue
            else:
                line = table.branch(site[1], site[2])
                if line is None:
                    continue
            keys.add((line.index, value))
        return keys


def derive_testability(facts) -> Testability:
    """Derive the full static testability section from a facts bundle."""
    netlist = facts.netlist
    imp = facts.implications()
    dff_feed = dff_feed_set(netlist)
    sites: Dict[Site, SiteTestability] = {}
    untestable: Dict[Tuple[Site, int], UntestableFault] = {}
    for site in fault_sites(netlist):
        rec = derive_site(facts, site, dff_feed)
        sites[site] = rec
        for value in (0, 1):
            verdict = fault_verdict(imp, rec, value)
            if verdict is not None:
                untestable[(site, value)] = verdict
    return Testability(sites, untestable)


def describe_site(netlist: Netlist, site: Site) -> str:
    """Human-readable site name matching :meth:`Line.describe`."""
    if site[0] == "stem":
        return netlist.gates[site[1]].name
    sink = netlist.gates[site[1]]
    drv = netlist.gates[sink.fanin[site[2]]].name
    return f"{drv}->{sink.name}.{site[2]}"
