"""Experiment harnesses reproducing the paper's evaluation section."""

from .workloads import (PreparedCircuit, design_error_instance,
                        prepare_design_error, prepare_stuck_at,
                        stuck_at_instance)
from .table1 import Table1Cell, Table1Row, run_table1
from .table2 import Table2Cell, Table2Row, run_table2
from .ablation import AblationResult, format_ablation, run_ablation
from .tables import format_table1, format_table2
from .compare import CompareCell, CompareRow, format_compare, run_compare
from .simbench import (format_records, run_suites, speedups,
                       validate_file, validate_payload)

__all__ = [
    "format_records", "run_suites", "speedups",
    "validate_file", "validate_payload",
    "PreparedCircuit", "design_error_instance", "prepare_design_error",
    "prepare_stuck_at", "stuck_at_instance",
    "Table1Cell", "Table1Row", "run_table1",
    "Table2Cell", "Table2Row", "run_table2",
    "AblationResult", "format_ablation", "run_ablation",
    "format_table1", "format_table2",
    "CompareCell", "CompareRow", "format_compare", "run_compare",
]
