"""Simulation-kernel benchmark harness behind ``repro bench``.

Measures the hot path that dominates every diagnosis round: the
heuristic-1 suspect sweep (complement a line's ``Verr`` bits, propagate
the difference through its fanout cone, inspect the outputs).  Two
suites:

* **micro** — the suspect-scoring sweep on a cross-section of suite
  circuits at a fixed vector count, run once per kernel (``event``, the
  incremental worklist kernel, vs ``scan``, the pre-event full
  topological scan kept as baseline).
* **scaling** — full-circuit :func:`~repro.sim.logicsim.simulate`
  (kernel ``full``) plus the event-kernel sweep across a ladder of
  vector counts, to expose how throughput scales with pattern volume.

Results are emitted as ``BENCH_sim.json``.  Every record carries the
required schema fields::

    circuit       suite circuit name (str)
    nvectors      packed test vectors simulated (int > 0)
    kernel        "event" | "scan" | "full"
    wall_s        best-of-repeats wall-clock seconds (float > 0)
    events_per_s  changed gate rows produced per second (float >= 0)

plus informational extras (``suite``, ``gates``, ``suspects``,
``events``).  An *event* is one changed gate row reported by a
``propagate`` call (for ``full`` records: one gate row computed), which
is kernel-independent semantic work — so ``events_per_s`` compares
kernels fairly.  :func:`validate_payload` enforces the schema; the CI
smoke job fails on schema violations, never on timings.
"""

from __future__ import annotations

import json
import time

from ..circuit.gatetypes import SOURCE_TYPES
from ..circuit import generators
from ..faults.inject import inject_stuck_at_faults
from ..sim.compare import failing_vector_mask
from ..sim.logicsim import output_rows, propagate, propagate_scan, simulate
from ..sim.packing import PatternSet, popcount

SCHEMA_ID = "repro.bench_sim/1"
KERNELS = ("event", "scan", "full")

#: Default circuits for the micro suite (the suite's combinational
#: c-series-style cross-section, smallest to largest).
MICRO_CIRCUITS = ("c17", "r432", "r880", "r1355")
SMOKE_MICRO_CIRCUITS = ("c17", "r432")

#: Vector ladder for the scaling suite.
SCALING_VECTORS = (64, 256, 1024, 4096)
SMOKE_SCALING_VECTORS = (64, 128)

_KERNEL_FN = {"event": propagate, "scan": propagate_scan}


def _prepare(circuit, nvectors: int, seed: int = 0):
    """Baseline values + failing-vector mask for a faulty twin.

    Injects stuck-at faults until at least one vector fails (retrying
    seeds — undetectable injections are rare but possible), mirroring
    how diagnosis states are built by the engine.
    """
    patterns = PatternSet.random(circuit.num_inputs, nvectors, seed=seed)
    values = simulate(circuit, patterns)
    good_out = output_rows(circuit, values)
    for attempt in range(10):
        workload = inject_stuck_at_faults(circuit, 2, seed=seed + attempt)
        device_out = output_rows(workload.impl,
                                 simulate(workload.impl, patterns))
        err_mask = failing_vector_mask(good_out, device_out,
                                       patterns.nbits)
        if popcount(err_mask):
            return values, err_mask, patterns
    raise RuntimeError(
        f"could not provoke a failing vector on {circuit.name!r}")


def _suspect_signals(circuit, cap: int) -> list[int]:
    """Deterministic suspect pool: live non-source signals, index order."""
    live = circuit.live_set()
    pool = [g.index for g in circuit.gates
            if g.index in live and g.gtype not in SOURCE_TYPES]
    return pool[:cap]


def _sweep(kernel: str, circuit, values, err_mask, suspects) -> int:
    """One heuristic-1 sweep; returns the event count (changed rows).

    The event kernel gets a per-sweep baseline cache, exactly as the
    diagnosis engine holds one per :class:`DiagnosisState`.
    """
    fn = _KERNEL_FN[kernel]
    kwargs = {"base_ints": {}} if kernel == "event" else {}
    events = 0
    for sig in suspects:
        flipped = values[sig] ^ err_mask
        events += len(fn(circuit, values, stem_overrides={sig: flipped},
                         **kwargs))
    return events


def _timed(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return max(best, 1e-9), result


def run_micro(circuits=MICRO_CIRCUITS, nvectors: int = 1024,
              suspect_cap: int = 128, repeats: int = 3,
              scale: float = 1.0, seed: int = 0) -> list[dict]:
    """Suspect-scoring micro suite: one record per (circuit, kernel)."""
    records = []
    for name in circuits:
        circuit = generators.by_name(name, scale=scale)
        values, err_mask, _patterns = _prepare(circuit, nvectors, seed)
        suspects = _suspect_signals(circuit, suspect_cap)
        # Warm the netlist caches (fanout tables, levels) outside the
        # timed region for both kernels alike.
        circuit.event_fanouts()
        circuit.levels()
        for kernel in ("event", "scan"):
            wall, events = _timed(
                lambda k=kernel: _sweep(k, circuit, values, err_mask,
                                        suspects), repeats)
            records.append({
                "suite": "micro", "circuit": name, "nvectors": nvectors,
                "kernel": kernel, "wall_s": wall,
                "events_per_s": events / wall,
                "gates": len(circuit.gates), "suspects": len(suspects),
                "events": events,
            })
    return records


def run_scaling(circuit_name: str = "r880",
                vector_ladder=SCALING_VECTORS, suspect_cap: int = 64,
                repeats: int = 3, scale: float = 1.0,
                seed: int = 0) -> list[dict]:
    """Scaling suite: simulate + event sweep across vector counts."""
    records = []
    for nvectors in vector_ladder:
        circuit = generators.by_name(circuit_name, scale=scale)
        values, err_mask, patterns = _prepare(circuit, nvectors, seed)
        suspects = _suspect_signals(circuit, suspect_cap)
        circuit.event_fanouts()
        circuit.levels()
        wall, _ = _timed(lambda: simulate(circuit, patterns), repeats)
        records.append({
            "suite": "scaling", "circuit": circuit_name,
            "nvectors": nvectors, "kernel": "full", "wall_s": wall,
            "events_per_s": len(circuit.gates) / wall,
            "gates": len(circuit.gates), "events": len(circuit.gates),
        })
        wall, events = _timed(
            lambda: _sweep("event", circuit, values, err_mask, suspects),
            repeats)
        records.append({
            "suite": "scaling", "circuit": circuit_name,
            "nvectors": nvectors, "kernel": "event", "wall_s": wall,
            "events_per_s": events / wall,
            "gates": len(circuit.gates), "suspects": len(suspects),
            "events": events,
        })
    return records


def speedups(records) -> dict:
    """{circuit: scan_wall / event_wall} for the micro suite."""
    micro: dict[str, dict[str, float]] = {}
    for rec in records:
        if rec.get("suite") == "micro":
            micro.setdefault(rec["circuit"], {})[rec["kernel"]] = \
                rec["wall_s"]
    return {name: walls["scan"] / walls["event"]
            for name, walls in micro.items()
            if "scan" in walls and "event" in walls}


def run_suites(smoke: bool = False, repeats: int = 3,
               seed: int = 0) -> dict:
    """Run both suites and assemble the BENCH_sim.json payload."""
    if smoke:
        micro = run_micro(SMOKE_MICRO_CIRCUITS, nvectors=128,
                          suspect_cap=24, repeats=1, scale=0.3,
                          seed=seed)
        scaling = run_scaling("r880", SMOKE_SCALING_VECTORS,
                              suspect_cap=16, repeats=1, scale=0.3,
                              seed=seed)
    else:
        micro = run_micro(repeats=repeats, seed=seed)
        scaling = run_scaling(repeats=repeats, seed=seed)
    records = micro + scaling
    return {
        "schema": SCHEMA_ID,
        "smoke": smoke,
        "records": records,
        "summary": {"micro_speedup_scan_over_event": speedups(records)},
    }


# ----------------------------------------------------------------------
# schema validation (the CI smoke job's failure condition)
# ----------------------------------------------------------------------
_REQUIRED = (("circuit", str), ("nvectors", int), ("kernel", str),
             ("wall_s", float), ("events_per_s", float))


def validate_payload(payload) -> list[str]:
    """Schema errors in a BENCH_sim payload ([] when valid).

    Checks structure and value sanity (positive wall times, known
    kernels), *not* the timings themselves — a slow run is a valid run.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        errors.append(f"schema id is {payload.get('schema')!r}, "
                      f"expected {SCHEMA_ID!r}")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        errors.append("records must be a non-empty list")
        return errors
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, typ in _REQUIRED:
            value = rec.get(key)
            if value is None:
                errors.append(f"{where}: missing required key {key!r}")
            elif typ is float:
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    errors.append(f"{where}: {key} must be a number")
            elif not isinstance(value, typ) or isinstance(value, bool):
                errors.append(f"{where}: {key} must be {typ.__name__}")
        kernel = rec.get("kernel")
        if isinstance(kernel, str) and kernel not in KERNELS:
            errors.append(f"{where}: unknown kernel {kernel!r}")
        nvectors = rec.get("nvectors")
        if isinstance(nvectors, int) and not isinstance(nvectors, bool) \
                and nvectors <= 0:
            errors.append(f"{where}: nvectors must be positive")
        wall = rec.get("wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool) \
                and wall <= 0:
            errors.append(f"{where}: wall_s must be positive")
        eps = rec.get("events_per_s")
        if isinstance(eps, (int, float)) and not isinstance(eps, bool) \
                and eps < 0:
            errors.append(f"{where}: events_per_s must be >= 0")
    return errors


def validate_file(path) -> list[str]:
    """Validate an on-disk BENCH_sim.json; returns schema errors."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return validate_payload(payload)


def format_records(records) -> str:
    """Human-readable table of benchmark records."""
    lines = [f"{'suite':<9}{'circuit':<9}{'nvec':>6}{'kernel':>7}"
             f"{'wall_s':>10}{'events/s':>12}"]
    for rec in records:
        lines.append(
            f"{rec.get('suite', '-'):<9}{rec['circuit']:<9}"
            f"{rec['nvectors']:>6}{rec['kernel']:>7}"
            f"{rec['wall_s']:>10.4f}{rec['events_per_s']:>12.0f}")
    return "\n".join(lines)
