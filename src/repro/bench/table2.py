"""Table 2 harness: DEDC with 3 and 4 design errors.

The paper reports, per circuit and error count, averaged over trials:

* ``diag.`` — average diagnosis time in a single execution of the
  algorithm (path trace + heuristic 1),
* ``corr.`` — average time to return and rank corrections in a single
  execution (heuristics 2 & 3 + ranking),
* ``nodes`` — total decision-tree nodes until the first valid set,
* ``total`` — total run time.

We additionally record the §4.2 claims: the rank position of the applied
corrections inside their nodes (paper: valid corrections rank in the top
5%) and the number of rounds used (paper: <=6 typical, 9 for the hard
circuits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.netlist import Netlist
from ..diagnose.config import DiagnosisConfig, Mode
from ..diagnose.engine import IncrementalDiagnoser
from .workloads import design_error_instance, prepare_design_error


@dataclass
class Table2Cell:
    """Averages for one (circuit, error count) cell."""

    num_errors: int
    trials: int = 0
    solved: float = 0.0
    diag_time: float = 0.0      # per single execution (per node)
    corr_time: float = 0.0      # per single execution (per node)
    nodes: float = 0.0
    rounds: float = 0.0
    total_time: float = 0.0
    solution_size: float = 0.0
    worst_rank: float = 0.0     # worst rank position among applied fixes


@dataclass
class Table2Row:
    name: str
    lines: int
    sequential: bool
    cells: dict = field(default_factory=dict)


def run_circuit(circuit: Netlist, error_counts=(3, 4), trials: int = 5,
                num_vectors: int = 1024, seed: int = 0,
                max_nodes: int = 4000,
                time_budget: float | None = 90.0,
                progress=None) -> Table2Row:
    """Run the Table 2 protocol on one circuit."""
    prepared = prepare_design_error(circuit)
    row = Table2Row(prepared.name, prepared.num_lines,
                    prepared.is_sequential)
    for k in error_counts:
        cell = Table2Cell(k)
        for trial in range(trials):
            workload, patterns = design_error_instance(
                prepared, k, trial, num_vectors, seed)
            config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                                     max_errors=k + 1,
                                     max_nodes=max_nodes,
                                     time_budget=time_budget,
                                     seed=seed + trial)
            # Correction direction: erroneous netlist vs specification.
            engine = IncrementalDiagnoser(prepared.netlist, workload.impl,
                                          patterns, config)
            result = engine.run()
            stats = result.stats
            executions = max(1, stats.nodes)
            cell.trials += 1
            cell.solved += result.found
            cell.diag_time += stats.diag_time / executions
            cell.corr_time += stats.corr_time / executions
            cell.nodes += stats.nodes
            cell.rounds += stats.rounds
            cell.total_time += stats.total_time
            if result.found:
                best = result.solutions[0]
                cell.solution_size += best.size
                cell.worst_rank += max(
                    (r.rank_position for r in best.records), default=0)
            if progress:
                progress(prepared.name, k, trial, result)
        for attr in ("solved", "diag_time", "corr_time", "nodes",
                     "rounds", "total_time"):
            setattr(cell, attr, getattr(cell, attr) / max(1, cell.trials))
        solved_trials = cell.solved * cell.trials
        if solved_trials:
            cell.solution_size /= solved_trials
            cell.worst_rank /= solved_trials
        row.cells[k] = cell
    return row


def run_table2(circuits, error_counts=(3, 4), trials: int = 5,
               num_vectors: int = 1024, seed: int = 0,
               max_nodes: int = 4000,
               time_budget: float | None = 90.0,
               progress=None) -> list[Table2Row]:
    """Run the full Table 2 experiment over a circuit list."""
    return [run_circuit(c, error_counts, trials, num_vectors, seed,
                        max_nodes, time_budget, progress)
            for c in circuits]
