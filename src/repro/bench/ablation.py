"""Ablation studies on the design choices the paper argues for (§3).

Four knobs, each motivated by a specific claim:

* **heuristic 2 off** — screen corrections only for "changes something"
  instead of the Theorem-1/h2 bit count; the paper claims the screen
  "disqualifies the majority of inappropriate corrections".
* **heuristic 3 off** — accept corrections regardless of how many passing
  vectors they corrupt; the paper claims it prevents wasted exploration
  while Example 1 shows it must not be a hard zero.
* **traversal** — the paper's round-based BFS/DFS trade-off vs pure DFS
  vs pure BFS (§3.3).
* **candidate fraction** — the "top 5-20%" path-trace cut of §3.1.

Each variant runs the same design-error workloads; the output compares
success rate, nodes explored and run time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..diagnose.config import DiagnosisConfig, HLevel, Mode
from ..diagnose.engine import IncrementalDiagnoser
from .workloads import design_error_instance, prepare_design_error


@dataclass
class AblationResult:
    variant: str
    trials: int = 0
    solved: float = 0.0
    nodes: float = 0.0
    total_time: float = 0.0

    def finalize(self) -> None:
        n = max(1, self.trials)
        self.solved /= n
        self.nodes /= n
        self.total_time /= n


def _variants(base: DiagnosisConfig) -> dict:
    """The ablation grid."""
    no_h2 = replace(base, schedule=[HLevel(h.h1, 0.0, h.h3)
                                    for h in base.ladder(3)])
    no_h3 = replace(base, schedule=[HLevel(h.h1, h.h2, 0.0)
                                    for h in base.ladder(3)])
    no_h2_h3 = replace(base, schedule=[HLevel(h.h1, 0.0, 0.0)
                                       for h in base.ladder(3)])
    return {
        "paper (rounds, h2+h3)": base,
        "no heuristic 2": no_h2,
        "no heuristic 3": no_h3,
        "no screening": no_h2_h3,
        "pure DFS": replace(base, traversal="dfs"),
        "pure BFS": replace(base, traversal="bfs"),
        "candidates 5%": replace(base, candidate_fraction=0.05),
        "candidates 20%": replace(base, candidate_fraction=0.20),
        "candidates 100%": replace(base, candidate_fraction=1.0),
    }


def run_ablation(circuits, num_errors: int = 3, trials: int = 3,
                 num_vectors: int = 1024, seed: int = 0,
                 time_budget: float | None = 30.0,
                 variants: list | None = None) -> list[AblationResult]:
    """Run every ablation variant on design-error workloads."""
    base = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                           max_errors=num_errors + 1,
                           time_budget=time_budget, seed=seed)
    grid = _variants(base)
    if variants is not None:
        grid = {k: v for k, v in grid.items() if k in variants}
    results = [AblationResult(name) for name in grid]
    for circuit in circuits:
        prepared = prepare_design_error(circuit)
        for trial in range(trials):
            workload, patterns = design_error_instance(
                prepared, num_errors, trial, num_vectors, seed)
            for res, (name, config) in zip(results, grid.items()):
                engine = IncrementalDiagnoser(
                    prepared.netlist, workload.impl, patterns, config)
                outcome = engine.run()
                res.trials += 1
                res.solved += outcome.found
                res.nodes += outcome.stats.nodes
                res.total_time += outcome.stats.total_time
    for res in results:
        res.finalize()
    return results


def format_ablation(results: list[AblationResult]) -> str:
    lines = ["Ablation: design-error diagnosis variants",
             f"{'variant':<24}{'solved':>9}{'nodes':>10}{'time':>9}",
             "-" * 52]
    for res in results:
        lines.append(f"{res.variant:<24}{100 * res.solved:>8.0f}%"
                     f"{res.nodes:>10.1f}{res.total_time:>8.2f}s")
    return "\n".join(lines)
