"""Table 1 harness: exact multiple stuck-at fault diagnosis.

For every circuit and every fault count k in {1,2,3,4} the paper reports,
averaged over trials:

* ``# sites`` — distinct lines appearing in any returned tuple (what a
  test engineer must probe),
* ``time`` — average run time to discover one tuple,
* ``# tuples`` — equivalent minimal fault tuples that fully explain the
  observed behaviour.

It also tracks the fault-masking rate (tuples smaller than the injected
cardinality), which the paper reports prose-only for the sequential
circuits (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.netlist import Netlist
from ..diagnose.config import DiagnosisConfig, Mode
from ..diagnose.engine import IncrementalDiagnoser
from ..diagnose.report import matches_truth
from .workloads import prepare_stuck_at, stuck_at_instance


@dataclass
class Table1Cell:
    """Averages for one (circuit, fault count) cell."""

    num_faults: int
    trials: int = 0
    sites: float = 0.0
    tuples: float = 0.0
    time_per_tuple: float = 0.0
    total_time: float = 0.0
    recovered_rate: float = 0.0   # trials where the injected set came back
    masked_rate: float = 0.0      # trials explained by a smaller tuple
    truncated_rate: float = 0.0


@dataclass
class Table1Row:
    name: str
    lines: int
    sequential: bool
    cells: dict = field(default_factory=dict)  # num_faults -> Table1Cell


def run_circuit(circuit: Netlist, fault_counts=(1, 2, 3, 4),
                trials: int = 5, num_vectors: int = 1024,
                seed: int = 0, max_nodes: int = 4000,
                time_budget: float | None = 60.0,
                progress=None) -> Table1Row:
    """Run the Table 1 protocol on one circuit."""
    prepared = prepare_stuck_at(circuit)
    row = Table1Row(prepared.name, prepared.num_lines,
                    prepared.is_sequential)
    for k in fault_counts:
        cell = Table1Cell(k)
        for trial in range(trials):
            workload, patterns = stuck_at_instance(
                prepared, k, trial, num_vectors, seed)
            config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                     max_errors=k, max_nodes=max_nodes,
                                     time_budget=time_budget,
                                     seed=seed + trial)
            # Fault-modeling direction: correct netlist vs faulty device.
            engine = IncrementalDiagnoser(workload.impl, prepared.netlist,
                                          patterns, config)
            result = engine.run()
            cell.trials += 1
            cell.sites += len(result.distinct_sites())
            cell.tuples += len(result.solutions)
            denom = max(1, len(result.solutions))
            cell.time_per_tuple += result.stats.total_time / denom
            cell.total_time += result.stats.total_time
            cell.recovered_rate += any(
                matches_truth(s, workload.truth)
                for s in result.solutions)
            cell.masked_rate += bool(result.solutions
                                     and result.min_size < k)
            cell.truncated_rate += result.stats.truncated
            if progress:
                progress(prepared.name, k, trial, result)
        for attr in ("sites", "tuples", "time_per_tuple", "total_time",
                     "recovered_rate", "masked_rate", "truncated_rate"):
            setattr(cell, attr, getattr(cell, attr) / max(1, cell.trials))
        row.cells[k] = cell
    return row


def run_table1(circuits, fault_counts=(1, 2, 3, 4), trials: int = 5,
               num_vectors: int = 1024, seed: int = 0,
               max_nodes: int = 4000,
               time_budget: float | None = 60.0,
               progress=None) -> list[Table1Row]:
    """Run the full Table 1 experiment over a circuit list."""
    return [run_circuit(c, fault_counts, trials, num_vectors, seed,
                        max_nodes, time_budget, progress)
            for c in circuits]
