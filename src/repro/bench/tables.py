"""Text rendering of the experiment tables, paper-style."""

from __future__ import annotations

from .table1 import Table1Row
from .table2 import Table2Row


def format_table1(rows: list[Table1Row],
                  fault_counts=(1, 2, 3, 4)) -> str:
    """Render Table 1: per fault count — # sites / time / # tuples."""
    header1 = f"{'ckt':<8}{'lines':>7}"
    header2 = f"{'':<8}{'':>7}"
    for k in fault_counts:
        label = f"{k} fault" + ("s" if k > 1 else "")
        header1 += f" | {label:^26}"
        header2 += f" | {'# sites':>8}{'time':>9}{'# tuples':>9}"
    lines = ["Table 1: Results on Stuck-At Faults (time in sec.)",
             header1, header2, "-" * len(header2)]
    for row in rows:
        line = f"{row.name:<8}{row.lines:>7}"
        for k in fault_counts:
            cell = row.cells.get(k)
            if cell is None:
                line += f" | {'-':>8}{'-':>9}{'-':>9}"
            else:
                line += (f" | {cell.sites:>8.1f}{cell.time_per_tuple:>9.2f}"
                         f"{cell.tuples:>9.1f}")
        lines.append(line)
    if rows:
        avg = f"{'Average':<8}{'':>7}"
        for k in fault_counts:
            cells = [r.cells[k] for r in rows if k in r.cells]
            if not cells:
                avg += f" | {'-':>8}{'-':>9}{'-':>9}"
                continue
            avg += (f" | {sum(c.sites for c in cells) / len(cells):>8.1f}"
                    f"{sum(c.time_per_tuple for c in cells) / len(cells):>9.2f}"
                    f"{sum(c.tuples for c in cells) / len(cells):>9.1f}")
        lines.append("-" * len(header2))
        lines.append(avg)
    # masking footnote (paper §4.1 reports it prose-only)
    seq = [r for r in rows if r.sequential]
    if seq:
        k = max(fault_counts)
        rates = [r.cells[k].masked_rate for r in seq if k in r.cells]
        if rates:
            lines.append(
                f"fault masking at {k} faults (sequential circuits): "
                f"{100 * sum(rates) / len(rates):.0f}% of trials "
                f"returned a smaller explaining tuple")
    return "\n".join(lines)


def format_table2(rows: list[Table2Row], error_counts=(3, 4)) -> str:
    """Render Table 2: diag. / corr. / nodes / total per error count."""
    header1 = f"{'ckt':<8}"
    header2 = f"{'':<8}"
    for k in error_counts:
        label = f"{k} error time (sec.)"
        header1 += f" | {label:^38}"
        header2 += (f" | {'diag.':>8}{'corr.':>9}{'nodes':>9}"
                    f"{'total':>9}")
    lines = ["Table 2: Results on Design Errors",
             header1, header2, "-" * len(header2)]
    for row in rows:
        line = f"{row.name:<8}"
        for k in error_counts:
            cell = row.cells.get(k)
            if cell is None:
                line += f" | {'-':>8}{'-':>9}{'-':>9}{'-':>9}"
            else:
                line += (f" | {cell.diag_time:>8.3f}{cell.corr_time:>9.3f}"
                         f"{cell.nodes:>9.1f}{cell.total_time:>9.2f}")
        lines.append(line)
    solved = []
    for row in rows:
        for cell in row.cells.values():
            solved.append(cell.solved)
    if solved:
        lines.append("-" * len(header2))
        lines.append(f"solved: {100 * sum(solved) / len(solved):.0f}% "
                     f"of (circuit, error-count) trials")
    return "\n".join(lines)
