"""Workload preparation shared by the experiment harnesses.

Reproduces the paper's two experimental environments (§4):

* **Stuck-at** (Table 1): circuits are first *optimized for area*, then
  corrupted with 1-4 random stuck-at faults; diagnosis runs in the
  fault-modeling direction (the good netlist is modified to match the
  faulty device) with exhaustive tuple enumeration.
* **Design errors** (Table 2): the *original redundant* circuits are
  corrupted with 3-4 observable errors from the Abadir model; DEDC runs
  in the correction direction (the erroneous netlist is modified to
  match the specification), first valid correction set.

Sequential suite members are full-scanned first, mirroring the paper's
treatment of the ISCAS'89 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..circuit.sequential import full_scan
from ..circuit.transform import optimize_area
from ..faults.inject import (Workload, inject_stuck_at_faults,
                             observable_design_error_workload)
from ..sim.packing import PatternSet
from ..tgen.randgen import random_patterns


@dataclass
class PreparedCircuit:
    """A suite circuit made ready for one experiment family."""

    name: str
    netlist: Netlist        # combinational model actually diagnosed
    is_sequential: bool     # True when the original had DFFs
    num_lines: int          # ISCAS-style line count (stems + branches)


def prepare_stuck_at(circuit: Netlist) -> PreparedCircuit:
    """Full-scan + area-optimize a circuit for the Table 1 protocol."""
    sequential = not circuit.is_combinational
    model = full_scan(circuit)[0] if sequential else circuit
    model = optimize_area(model, name=circuit.name)
    return PreparedCircuit(circuit.name, model, sequential,
                           len(LineTable(model)))


def prepare_design_error(circuit: Netlist) -> PreparedCircuit:
    """Full-scan only (keep redundancy) for the Table 2 protocol."""
    sequential = not circuit.is_combinational
    model = full_scan(circuit)[0] if sequential else circuit
    model = model.compacted(circuit.name)
    return PreparedCircuit(circuit.name, model, sequential,
                           len(LineTable(model)))


def stuck_at_instance(prepared: PreparedCircuit, num_faults: int,
                      trial: int, num_vectors: int,
                      seed: int = 0) -> tuple[Workload, PatternSet]:
    """One Table 1 trial: workload + vectors (deterministic per seed)."""
    workload = inject_stuck_at_faults(prepared.netlist, num_faults,
                                      seed=seed + 7919 * trial)
    patterns = random_patterns(prepared.netlist, num_vectors,
                               seed=seed + 104729 * trial)
    return workload, patterns


def design_error_instance(prepared: PreparedCircuit, num_errors: int,
                          trial: int, num_vectors: int,
                          seed: int = 0) -> tuple[Workload, PatternSet]:
    """One Table 2 trial: observable error workload + vectors."""
    patterns = random_patterns(prepared.netlist, num_vectors,
                               seed=seed + 104729 * trial)
    workload = observable_design_error_workload(
        prepared.netlist, num_errors, patterns,
        seed=seed + 7919 * trial)
    return workload, patterns
