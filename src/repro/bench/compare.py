"""Head-to-head comparison: incremental engine vs baselines.

Runs identical stuck-at workloads through

* the paper's incremental engine (exact mode),
* the SAT formulation (:class:`repro.diagnose.satdiag.SatDiagnoser`),
* the single-fault response dictionary (only meaningful at k = 1),

and reports solve rate, tuple agreement, and run time — the cross-check
behind the "first exact multiple stuck-at diagnosis algorithm" framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnose.baselines import dictionary_diagnosis
from ..diagnose.config import DiagnosisConfig, Mode
from ..diagnose.engine import IncrementalDiagnoser
from ..diagnose.satdiag import SatDiagnoser
from .workloads import prepare_stuck_at, stuck_at_instance


@dataclass
class CompareCell:
    num_faults: int
    trials: int = 0
    engine_solved: float = 0.0
    sat_solved: float = 0.0
    dict_solved: float = 0.0
    agreement: float = 0.0       # engine tuple set == SAT tuple set
    engine_time: float = 0.0
    sat_time: float = 0.0

    def finalize(self) -> None:
        n = max(1, self.trials)
        for attr in ("engine_solved", "sat_solved", "dict_solved",
                     "agreement", "engine_time", "sat_time"):
            setattr(self, attr, getattr(self, attr) / n)


@dataclass
class CompareRow:
    name: str
    cells: dict = field(default_factory=dict)


def run_compare(circuits, fault_counts=(1, 2), trials: int = 3,
                num_vectors: int = 512, seed: int = 0,
                time_budget: float = 30.0) -> list[CompareRow]:
    rows = []
    for circuit in circuits:
        prepared = prepare_stuck_at(circuit)
        row = CompareRow(prepared.name)
        for k in fault_counts:
            cell = CompareCell(k)
            for trial in range(trials):
                workload, patterns = stuck_at_instance(
                    prepared, k, trial, num_vectors, seed)
                cell.trials += 1
                config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                         max_errors=k,
                                         time_budget=time_budget,
                                         seed=seed + trial)
                engine = IncrementalDiagnoser(
                    workload.impl, prepared.netlist, patterns,
                    config).run()
                cell.engine_solved += engine.found
                cell.engine_time += engine.stats.total_time
                sat = SatDiagnoser(workload.impl, prepared.netlist,
                                   patterns, max_faults=k,
                                   time_budget=time_budget).run()
                cell.sat_solved += sat.found
                cell.sat_time += sat.total_time
                if engine.found and sat.found:
                    cell.agreement += ({s.key for s in engine.solutions}
                                       == {s.key for s in sat.solutions})
                if k == 1:
                    matches = dictionary_diagnosis(
                        prepared.netlist, workload.impl, patterns)
                    cell.dict_solved += bool(matches)
            cell.finalize()
            row.cells[k] = cell
        rows.append(row)
    return rows


def format_compare(rows, fault_counts=(1, 2)) -> str:
    header = (f"{'ckt':<8}{'k':>3}{'engine':>9}{'SAT':>8}"
              f"{'dict':>7}{'agree':>8}{'eng t':>9}{'sat t':>9}")
    lines = ["Baseline comparison (solve rate / agreement / time)",
             header, "-" * len(header)]
    for row in rows:
        for k in fault_counts:
            cell = row.cells.get(k)
            if cell is None:
                continue
            dict_col = (f"{100 * cell.dict_solved:>6.0f}%"
                        if k == 1 else f"{'-':>7}")
            lines.append(
                f"{row.name:<8}{k:>3}"
                f"{100 * cell.engine_solved:>8.0f}%"
                f"{100 * cell.sat_solved:>7.0f}%"
                f"{dict_col}"
                f"{100 * cell.agreement:>7.0f}%"
                f"{cell.engine_time:>8.2f}s"
                f"{cell.sat_time:>8.2f}s")
    return "\n".join(lines)
