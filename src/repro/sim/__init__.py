"""Bit-parallel logic & fault simulation."""

from .packing import (PatternSet, WORD_BITS, bit_indices, num_words,
                      pack_bits, popcount, tail_mask, unpack_bits)
from .logicsim import (Simulator, lookup, output_rows, propagate,
                       propagate_scan, simulate)
from .compare import (count_failing, diff_rows, equivalent,
                      failing_vector_mask, masked)
from .faultsim import FaultSimulator, SimFault, all_faults
from .sensitize import (sensitization_masks, sensitized_lines,
                        sensitized_path)
from .vcd import write_vcd

__all__ = [
    "PatternSet", "WORD_BITS", "bit_indices", "num_words", "pack_bits",
    "popcount", "tail_mask", "unpack_bits",
    "Simulator", "lookup", "output_rows", "propagate", "propagate_scan",
    "simulate",
    "count_failing", "diff_rows", "equivalent", "failing_vector_mask",
    "masked",
    "FaultSimulator", "SimFault", "all_faults",
    "sensitization_masks", "sensitized_lines", "sensitized_path",
    "write_vcd",
]
