"""Levelized bit-parallel logic simulation.

Simulates 64 test vectors per ``uint64`` word with numpy kernels.  Two
entry points:

* :func:`simulate` — full-circuit simulation, returning a value matrix
  (one packed row per gate/signal).
* :func:`propagate` — incremental re-simulation of the fanout cone of a
  set of overridden signals/pins, returning only the changed rows.  This
  is the workhorse behind the paper's heuristic 1 (invert a suspect
  line's failing values and push the difference to the outputs) and
  heuristic 3 (push a candidate correction's effect across the passing
  vectors).

Overrides come in two flavours mirroring the line model: a *stem*
override replaces a signal everywhere; a *pin* override replaces the
value seen by one specific (gate, pin) — i.e. a fanout branch.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..circuit.gatetypes import GateType, eval_words
from ..circuit.netlist import Netlist
from ..errors import SimulationError
from .packing import PatternSet


def simulate(netlist: Netlist, patterns: PatternSet,
             ppi_values: Mapping[int, np.ndarray] | None = None
             ) -> np.ndarray:
    """Simulate all patterns; returns a (num_gates x num_words) matrix.

    ``patterns`` rows map to ``netlist.inputs`` in order.  DFF gates act
    as pseudo-inputs: their packed values come from ``ppi_values`` (zeros
    if absent) — full-scan models have no DFFs left, so most callers never
    pass it.  Detached gates get zero rows.
    """
    pis = netlist.inputs
    if patterns.num_inputs != len(pis):
        raise SimulationError(
            f"pattern set has {patterns.num_inputs} inputs, netlist "
            f"{netlist.name!r} has {len(pis)}")
    nwords = patterns.num_words
    values = np.zeros((len(netlist.gates), nwords), dtype=np.uint64)
    for row, pi in enumerate(pis):
        values[pi] = patterns.words[row]
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    gates = netlist.gates
    for idx in netlist.topo_order():
        gate = gates[idx]
        gtype = gate.gtype
        if gtype is GateType.INPUT:
            continue
        if gtype is GateType.DFF:
            if ppi_values and idx in ppi_values:
                values[idx] = ppi_values[idx]
            continue
        if gtype is GateType.CONST0:
            continue
        if gtype is GateType.CONST1:
            values[idx] = ones
            continue
        values[idx] = eval_words(gtype, [values[src] for src in gate.fanin])
    return values


def output_rows(netlist: Netlist, values: np.ndarray) -> np.ndarray:
    """Slice the primary-output rows out of a value matrix (PO order)."""
    return values[netlist.outputs]


def propagate(netlist: Netlist, values: np.ndarray,
              stem_overrides: Mapping[int, np.ndarray] | None = None,
              pin_overrides: Mapping[tuple, np.ndarray] | None = None,
              cone: set | None = None) -> dict:
    """Re-simulate the fanout cone of the overridden signals.

    Args:
        values: baseline value matrix from :func:`simulate` (not modified).
        stem_overrides: {signal: packed words} forced for all consumers.
        pin_overrides: {(sink_gate, pin): packed words} forced for one pin.
        cone: optional precomputed union fanout cone (gate index set); pass
            it when the caller caches cones to skip recomputation.

    Returns:
        {gate_index: new packed words} for every gate whose value differs
        from the baseline, **plus** all overridden stems (even when equal).
        Look up a gate first in this dict, then in ``values``.
    """
    stem_overrides = dict(stem_overrides or {})
    pin_overrides = dict(pin_overrides or {})
    if not stem_overrides and not pin_overrides:
        return {}
    if cone is None:
        cone = set()
        for sig in stem_overrides:
            cone |= netlist.fanout_cone(sig)
        for (sink, _pin) in pin_overrides:
            cone |= netlist.fanout_cone(sink)
            cone.discard(sink)
            cone.add(sink)
    changed: dict = dict(stem_overrides)
    gates = netlist.gates
    order = netlist.topo_order()
    for idx in order:
        if idx not in cone:
            continue
        gate = gates[idx]
        if idx in stem_overrides:
            continue  # forced value, do not recompute
        if gate.gtype in (GateType.INPUT, GateType.DFF,
                          GateType.CONST0, GateType.CONST1):
            continue
        ins = []
        for pin, src in enumerate(gate.fanin):
            override = pin_overrides.get((idx, pin))
            if override is not None:
                ins.append(override)
            elif src in changed:
                ins.append(changed[src])
            else:
                ins.append(values[src])
        new = eval_words(gate.gtype, ins)
        if not np.array_equal(new, values[idx]):
            changed[idx] = new
        elif idx in changed:
            del changed[idx]
    return changed


def lookup(changed: dict, values: np.ndarray, idx: int) -> np.ndarray:
    """Value row for ``idx`` after a :func:`propagate` call."""
    row = changed.get(idx)
    return values[idx] if row is None else row


class Simulator:
    """Convenience wrapper caching the value matrix for one netlist +
    pattern set, with cone caching for repeated :func:`propagate` calls."""

    def __init__(self, netlist: Netlist, patterns: PatternSet):
        self.netlist = netlist
        self.patterns = patterns
        self.values = simulate(netlist, patterns)
        self._cones: dict[int, set] = {}

    def cone_of(self, signal: int) -> set:
        cone = self._cones.get(signal)
        if cone is None:
            cone = self.netlist.fanout_cone(signal)
            self._cones[signal] = cone
        return cone

    def outputs(self) -> np.ndarray:
        return output_rows(self.netlist, self.values)

    def propagate_stem(self, signal: int,
                       words: np.ndarray) -> dict:
        return propagate(self.netlist, self.values,
                         stem_overrides={signal: words},
                         cone=self.cone_of(signal))

    def propagate_pin(self, sink: int, pin: int,
                      words: np.ndarray) -> dict:
        cone = self.cone_of(sink) | {sink}
        return propagate(self.netlist, self.values,
                         pin_overrides={(sink, pin): words}, cone=cone)
