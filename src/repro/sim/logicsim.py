"""Levelized bit-parallel logic simulation.

Simulates 64 test vectors per ``uint64`` word with numpy kernels.  Two
entry points:

* :func:`simulate` — full-circuit simulation, returning a value matrix
  (one packed row per gate/signal).
* :func:`propagate` — incremental re-simulation of the fanout cone of a
  set of overridden signals/pins, returning only the changed rows.  This
  is the workhorse behind the paper's heuristic 1 (invert a suspect
  line's failing values and push the difference to the outputs) and
  heuristic 3 (push a candidate correction's effect across the passing
  vectors).

:func:`propagate` is an *event-driven* kernel: a worklist seeded from
the overridden stems/pins is drained level by level (every fanin sits on
a strictly smaller level, so it is final before its sinks are
evaluated), gates whose fanin words did not change are never scheduled,
and the sweep stops as soon as the event frontier dies — instead of
scanning the whole ``topo_order()`` and testing cone membership per
gate.

Inside the event kernel, packed rows are carried as Python big-ints
rather than numpy arrays.  Incremental cones are deep and narrow — a
handful of gates per level — so there is nothing to vectorize *across*,
and per-gate numpy dispatch (≈ µs per call even on a 16-word row)
swamps the actual bit work.  A bitwise op on a 1024-bit Python int runs
in ≈ 100 ns, an order of magnitude cheaper; only the rows an event
actually touches are converted, lazily, and changed rows are converted
back to ``uint64`` arrays at the end.  The previous full-scan kernel is
kept as :func:`propagate_scan`: it is the obviously-correct reference
the property tests compare against and the baseline the benchmark
harness measures speedups over.

Overrides come in two flavours mirroring the line model: a *stem*
override replaces a signal everywhere; a *pin* override replaces the
value seen by one specific (gate, pin) — i.e. a fanout branch.
"""

from __future__ import annotations

import heapq
import sys
from typing import Mapping

import numpy as np

from ..circuit.gatetypes import GateType, eval_words
from ..circuit.netlist import Netlist
from ..errors import SimulationError
from .packing import PatternSet

#: Gate types :func:`propagate` never re-evaluates: sources hold their
#: baseline value and DFF fanin is a sequential edge, not an event path.
_PASSIVE_TYPES = (GateType.INPUT, GateType.DFF,
                  GateType.CONST0, GateType.CONST1)

#: (core-op index, invert) per evaluable gate type: 0 = AND, 1 = OR,
#: 2 = XOR over the fanin ints.  BUF/NOT reduce over a single fanin, so
#: any core works — AND is used.
_INT_OP = {
    GateType.BUF: (0, False), GateType.NOT: (0, True),
    GateType.AND: (0, False), GateType.NAND: (0, True),
    GateType.OR: (1, False), GateType.NOR: (1, True),
    GateType.XOR: (2, False), GateType.XNOR: (2, True),
}

_LITTLE_ENDIAN = sys.byteorder == "little"


def _row_to_int(row: np.ndarray) -> int:
    """Packed uint64 row -> one big-int (bit *i* of the stream = bit *i*)."""
    data = row if _LITTLE_ENDIAN else row.byteswap()
    return int.from_bytes(data.tobytes(), "little")


def _sim_tables(netlist: Netlist) -> tuple[list, list]:
    """Flat per-gate ``(op, invert)`` and fanin-tuple tables.

    Cached on the netlist (invalidated with the other derived structures
    on mutation) so the event kernel's hot loop does plain list indexing
    instead of ``Gate`` attribute access plus enum-keyed dict lookups.
    Passive gate types get ``None`` — they are never scheduled.
    """
    tables = netlist._sim_tables
    if tables is None:
        ops = [_INT_OP.get(g.gtype) for g in netlist.gates]
        fanins = [tuple(g.fanin) for g in netlist.gates]
        netlist._sim_tables = tables = (ops, fanins)
    return tables


def simulate(netlist: Netlist, patterns: PatternSet,
             ppi_values: Mapping[int, np.ndarray] | None = None
             ) -> np.ndarray:
    """Simulate all patterns; returns a (num_gates x num_words) matrix.

    ``patterns`` rows map to ``netlist.inputs`` in order.  DFF gates act
    as pseudo-inputs: their packed values come from ``ppi_values`` (zeros
    if absent) — full-scan models have no DFFs left, so most callers never
    pass it.  Detached gates get zero rows.
    """
    pis = netlist.inputs
    if patterns.num_inputs != len(pis):
        raise SimulationError(
            f"pattern set has {patterns.num_inputs} inputs, netlist "
            f"{netlist.name!r} has {len(pis)}")
    nwords = patterns.num_words
    values = np.zeros((len(netlist.gates), nwords), dtype=np.uint64)
    for row, pi in enumerate(pis):
        values[pi] = patterns.words[row]
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    gates = netlist.gates
    for idx in netlist.topo_order():
        gate = gates[idx]
        gtype = gate.gtype
        if gtype is GateType.INPUT:
            continue
        if gtype is GateType.DFF:
            if ppi_values and idx in ppi_values:
                values[idx] = ppi_values[idx]
            continue
        if gtype is GateType.CONST0:
            continue
        if gtype is GateType.CONST1:
            values[idx] = ones
            continue
        values[idx] = eval_words(gtype, [values[src] for src in gate.fanin])
    return values


def output_rows(netlist: Netlist, values: np.ndarray) -> np.ndarray:
    """Slice the primary-output rows out of a value matrix (PO order)."""
    return values[netlist.outputs]


def propagate(netlist: Netlist, values: np.ndarray,
              stem_overrides: Mapping[int, np.ndarray] | None = None,
              pin_overrides: Mapping[tuple, np.ndarray] | None = None,
              cone: set | None = None,
              base_ints: dict | None = None) -> dict:
    """Re-simulate the fanout cone of the overridden signals.

    Event-driven: only gates reachable from an actual value change are
    evaluated, level by level, and the sweep ends when the worklist
    empties.  An override equal to the baseline seeds no events.  Rows
    are evaluated as Python big-ints inside the kernel (see module
    docstring); only touched rows are converted.

    Args:
        values: baseline value matrix from :func:`simulate` (not modified).
        stem_overrides: {signal: packed words} forced for all consumers.
        pin_overrides: {(sink_gate, pin): packed words} forced for one pin.
        cone: optional gate-index set restricting which gates may be
            re-evaluated.  The event kernel derives the frontier itself,
            so passing the full fanout cone (what every caller used to
            do) is never needed; the parameter is honoured as a filter
            for callers that deliberately restrict propagation.
        base_ints: optional {gate: big-int row} cache of *baseline*
            conversions, owned by the caller and reused across calls that
            share one ``values`` matrix (a suspect sweep converts the
            same rows hundreds of times otherwise).  Must be dropped when
            ``values`` changes; :class:`Simulator` and
            ``DiagnosisState`` each hold one per value matrix.

    Returns:
        {gate_index: new packed words} for every gate whose value differs
        from the baseline, **plus** all overridden stems (even when equal).
        Look up a gate first in this dict, then in ``values``.
    """
    stem_overrides = dict(stem_overrides or {})
    pin_overrides = dict(pin_overrides or {})
    if not stem_overrides and not pin_overrides:
        return {}
    gates = netlist.gates
    efanouts = netlist.event_fanouts()
    levels = netlist.levels()
    ops, fanins = _sim_tables(netlist)
    nwords = values.shape[1]
    ones = (1 << (64 * nwords)) - 1
    base = base_ints if base_ints is not None else {}
    base_get = base.get
    cur: dict[int, int] = {}      # overridden/changed rows, as ints
    cur_get = cur.get
    diff: list[int] = []          # evaluated gates that differ, in order
    buckets: dict[int, list[int]] = {}
    level_heap: list[int] = []
    scheduled: set[int] = set()

    def schedule(idx: int) -> None:
        if idx in scheduled:
            return
        if cone is not None and idx not in cone:
            return
        scheduled.add(idx)
        lev = levels[idx]
        bucket = buckets.get(lev)
        if bucket is None:
            buckets[lev] = bucket = []
            heapq.heappush(level_heap, lev)
        bucket.append(idx)

    for sig, words in stem_overrides.items():
        forced = _row_to_int(words)
        cur[sig] = forced
        b = base_get(sig)
        if b is None:
            base[sig] = b = _row_to_int(values[sig])
        if forced == b:
            continue  # no event: downstream cannot change
        for sink in efanouts[sig]:
            schedule(sink)
    pins_by_sink: dict[int, dict[int, int]] = {}
    for (sink, pin), words in pin_overrides.items():
        if gates[sink].gtype in _PASSIVE_TYPES:
            continue  # sources hold their value; DFF edges are sequential
        pins_by_sink.setdefault(sink, {})[pin] = _row_to_int(words)
        schedule(sink)

    # Every scheduled gate is evaluable: event fanouts exclude DFFs, and
    # source gates never appear as sinks (they have no fanin).
    while level_heap:
        lev = heapq.heappop(level_heap)
        for idx in buckets.pop(lev):
            if idx in stem_overrides:
                continue  # forced value, do not recompute
            pin_map = pins_by_sink.get(idx) if pins_by_sink else None
            op, invert = ops[idx]
            acc = None
            for pin, src in enumerate(fanins[idx]):
                val = pin_map.get(pin) if pin_map else None
                if val is None:
                    val = cur_get(src)
                    if val is None:
                        val = base_get(src)
                        if val is None:
                            base[src] = val = _row_to_int(values[src])
                if acc is None:
                    acc = val
                elif op == 0:
                    acc &= val
                elif op == 1:
                    acc |= val
                else:
                    acc ^= val
            if invert:
                acc ^= ones
            b = base_get(idx)
            if b is None:
                base[idx] = b = _row_to_int(values[idx])
            if acc == b:
                continue  # event dies here; fanouts never scheduled by us
            cur[idx] = acc
            diff.append(idx)
            for sink in efanouts[idx]:
                schedule(sink)
    changed: dict = dict(stem_overrides)
    if diff:
        # One buffer + one frombuffer for all changed rows (the returned
        # rows are views into it), instead of a numpy call per row.
        nbytes = nwords * 8
        buf = b"".join(cur[idx].to_bytes(nbytes, "little")
                       for idx in diff)
        rows = np.frombuffer(bytearray(buf), dtype=np.uint64)
        rows = rows.reshape(len(diff), nwords)
        if not _LITTLE_ENDIAN:
            rows = rows.byteswap()
        for i, idx in enumerate(diff):
            changed[idx] = rows[i]
    return changed


def propagate_scan(netlist: Netlist, values: np.ndarray,
                   stem_overrides: Mapping[int, np.ndarray] | None = None,
                   pin_overrides: Mapping[tuple, np.ndarray] | None = None,
                   cone: set | None = None) -> dict:
    """Reference kernel: full topological scan with cone-membership tests.

    Functionally identical to :func:`propagate` (same contract, same
    returned dict) but walks the *entire* ``topo_order()`` and evaluates
    every cone gate whether or not its fanin changed.  Kept as the
    pre-event-kernel baseline for the benchmark harness and as the
    oracle for the propagate/simulate equivalence property tests.
    """
    stem_overrides = dict(stem_overrides or {})
    pin_overrides = dict(pin_overrides or {})
    if not stem_overrides and not pin_overrides:
        return {}
    if cone is None:
        cone = set()
        for sig in stem_overrides:
            cone |= netlist.fanout_cone(sig)
        for (sink, _pin) in pin_overrides:
            cone |= netlist.fanout_cone(sink)
            cone.add(sink)
    changed: dict = dict(stem_overrides)
    gates = netlist.gates
    for idx in netlist.topo_order():
        if idx not in cone:
            continue
        gate = gates[idx]
        if idx in stem_overrides:
            continue  # forced value, do not recompute
        if gate.gtype in _PASSIVE_TYPES:
            continue
        ins = []
        for pin, src in enumerate(gate.fanin):
            override = pin_overrides.get((idx, pin))
            if override is not None:
                ins.append(override)
            elif src in changed:
                ins.append(changed[src])
            else:
                ins.append(values[src])
        new = eval_words(gate.gtype, ins)
        if not np.array_equal(new, values[idx]):
            changed[idx] = new
        elif idx in changed:
            del changed[idx]
    return changed


def lookup(changed: dict, values: np.ndarray, idx: int) -> np.ndarray:
    """Value row for ``idx`` after a :func:`propagate` call."""
    row = changed.get(idx)
    return values[idx] if row is None else row


class Simulator:
    """Convenience wrapper caching the value matrix for one netlist +
    pattern set.  Cone caching lives on the :class:`Netlist` itself
    (:meth:`Netlist.sorted_cone`), so repeated :func:`propagate` calls
    and other cone consumers share one cache."""

    def __init__(self, netlist: Netlist, patterns: PatternSet):
        self.netlist = netlist
        self.patterns = patterns
        self.values = simulate(netlist, patterns)
        self._cones: dict[int, set] = {}
        # Baseline big-int rows, shared by every propagate call on this
        # (netlist, values) pair; see the base_ints arg of propagate().
        self._base_ints: dict[int, int] = {}

    def cone_of(self, signal: int) -> set:
        cone = self._cones.get(signal)
        if cone is None:
            cone = self.netlist.fanout_cone(signal)
            self._cones[signal] = cone
        return cone

    def outputs(self) -> np.ndarray:
        return output_rows(self.netlist, self.values)

    def propagate_stem(self, signal: int,
                       words: np.ndarray) -> dict:
        return propagate(self.netlist, self.values,
                         stem_overrides={signal: words},
                         base_ints=self._base_ints)

    def propagate_pin(self, sink: int, pin: int,
                      words: np.ndarray) -> dict:
        return propagate(self.netlist, self.values,
                         pin_overrides={(sink, pin): words},
                         base_ints=self._base_ints)
