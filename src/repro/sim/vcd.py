"""VCD (Value Change Dump) export of simulated patterns.

Diagnosis sessions end with a human staring at waveforms.  This writes
the packed simulation results of selected signals as a standard VCD
file, one timestep per test vector, loadable in GTKWave & friends.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..circuit.netlist import Netlist
from ..errors import SimulationError
from .packing import WORD_BITS

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal #index."""
    base = len(_ID_CHARS)
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, base)
        out.append(_ID_CHARS[rem])
    return "".join(reversed(out))


def write_vcd(path, netlist: Netlist, values: np.ndarray, nbits: int,
              signals=None, timescale: str = "1ns",
              comment: str | None = None) -> None:
    """Write a VCD of ``values`` (packed matrix from ``simulate``).

    Args:
        signals: iterable of gate indices or names to dump (default: all
            primary inputs and outputs).
        nbits: number of valid vectors (timesteps).
    """
    if signals is None:
        chosen = list(netlist.inputs) + list(netlist.outputs)
    else:
        chosen = [netlist.index_of(s) if isinstance(s, str) else int(s)
                  for s in signals]
    seen: set = set()
    ordered = [s for s in chosen if not (s in seen or seen.add(s))]
    for sig in ordered:
        if not 0 <= sig < values.shape[0]:
            raise SimulationError(f"signal index {sig} out of range")
    idents = {sig: _identifier(pos) for pos, sig in enumerate(ordered)}
    lines = ["$date", "  repro simulation dump", "$end",
             f"$timescale {timescale} $end",
             f"$scope module {netlist.name} $end"]
    if comment:
        lines[2:2] = ["$comment", f"  {comment}", "$end"]
    for sig in ordered:
        lines.append(
            f"$var wire 1 {idents[sig]} {netlist.gates[sig].name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    previous: dict = {}
    for step in range(nbits):
        word, bit = divmod(step, WORD_BITS)
        changes = []
        for sig in ordered:
            value = (int(values[sig, word]) >> bit) & 1
            if previous.get(sig) != value:
                changes.append(f"{value}{idents[sig]}")
                previous[sig] = value
        if changes or step == 0:
            lines.append(f"#{step}")
            lines.extend(changes)
    lines.append(f"#{nbits}")
    Path(path).write_text("\n".join(lines) + "\n")
