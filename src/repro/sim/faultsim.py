"""Stuck-at fault simulation (parallel-pattern single-fault propagation).

Serial over faults, 64-way bit-parallel over patterns, with fanout-cone
restricted event propagation per fault — the classic PPSFP organization.
Used by the ATPG substrate (:mod:`repro.tgen`), by test-set compaction
and by the experiment harnesses to measure fault coverage of the vector
sets fed to the diagnosis engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from .logicsim import output_rows, propagate, simulate
from .packing import PatternSet, popcount, tail_mask


@dataclass(frozen=True)
class SimFault:
    """A stuck-at fault bound to a line-table index."""

    line: int
    value: int

    def key(self) -> tuple:
        return (self.line, self.value)


def all_faults(table: LineTable) -> list[SimFault]:
    """The full (uncollapsed) stuck-at fault universe of a netlist."""
    faults = []
    for line in table:
        faults.append(SimFault(line.index, 0))
        faults.append(SimFault(line.index, 1))
    return faults


class FaultSimulator:
    """PPSFP fault simulator over a fixed netlist + pattern set."""

    def __init__(self, netlist: Netlist, patterns: PatternSet,
                 table: LineTable | None = None):
        self.netlist = netlist
        self.patterns = patterns
        self.table = table or LineTable(netlist)
        self.values = simulate(netlist, patterns)
        self.good_outputs = output_rows(netlist, self.values)
        self._tail = tail_mask(patterns.nbits)

    def detection_mask(self, fault: SimFault) -> np.ndarray:
        """Packed mask of vectors detecting ``fault`` at some output."""
        line = self.table[fault.line]
        forced = (np.zeros_like(self.values[line.driver])
                  if fault.value == 0
                  else np.full_like(self.values[line.driver],
                                    np.uint64(0xFFFFFFFFFFFFFFFF)))
        if line.is_stem:
            changed = propagate(self.netlist, self.values,
                                stem_overrides={line.driver: forced})
        else:
            changed = propagate(self.netlist, self.values,
                                pin_overrides={(line.sink, line.pin):
                                               forced})
        mask = np.zeros(self.values.shape[1], dtype=np.uint64)
        for po_pos, po in enumerate(self.netlist.outputs):
            row = changed.get(po)
            if row is not None:
                mask |= row ^ self.good_outputs[po_pos]
        mask[-1] &= self._tail
        return mask

    def detects(self, fault: SimFault) -> bool:
        return popcount(self.detection_mask(fault)) > 0

    def run(self, faults, drop_detected: bool = False) -> dict:
        """Simulate ``faults``; returns {fault: detection mask}.

        With ``drop_detected`` the result only contains the first
        detection information needed for coverage (masks still exact).
        """
        result = {}
        for fault in faults:
            mask = self.detection_mask(fault)
            if drop_detected and popcount(mask) == 0:
                continue
            result[fault] = mask
        return result

    def coverage(self, faults) -> float:
        """Fraction of ``faults`` detected by the pattern set."""
        faults = list(faults)
        if not faults:
            return 1.0
        detected = sum(1 for f in faults if self.detects(f))
        return detected / len(faults)
