"""Sensitized lines and paths (paper §2 definitions).

"A line whose value changes during simulation under the presence of
some fault(s) is called a *sensitized line* and a path of sensitized
lines is called a *sensitized path*."

These utilities materialize those definitions on top of the packed
simulator: per-signal sensitization masks for a fault, and explicit
fault-site-to-output path extraction for one vector — useful for
reports, for debugging the diagnosis heuristics, and as the semantic
ground truth behind path-trace tests.
"""

from __future__ import annotations

import numpy as np

from ..circuit.lines import LineTable
from ..circuit.netlist import Netlist
from ..sim.faultsim import SimFault
from ..sim.logicsim import propagate
from ..sim.packing import WORD_BITS, popcount


def sensitization_masks(netlist: Netlist, values: np.ndarray,
                        table: LineTable, fault: SimFault,
                        nbits: int) -> dict:
    """{signal: packed mask of vectors where the fault flips it}.

    Only signals sensitized on at least one vector appear.  The faulty
    line's own stem is included when its value actually changes.
    """
    line = table[fault.line]
    forced = (np.zeros_like(values[line.driver]) if fault.value == 0
              else np.full_like(values[line.driver],
                                np.uint64(0xFFFFFFFFFFFFFFFF)))
    if line.is_stem:
        changed = propagate(netlist, values,
                            stem_overrides={line.driver: forced})
    else:
        changed = propagate(netlist, values,
                            pin_overrides={(line.sink, line.pin):
                                           forced})
    from .packing import tail_mask
    tail = tail_mask(nbits)
    masks = {}
    for signal, row in changed.items():
        delta = np.array(row ^ values[signal], copy=True)
        delta[-1] &= tail
        if popcount(delta):
            masks[signal] = delta
    return masks


def sensitized_lines(netlist: Netlist, values: np.ndarray,
                     table: LineTable, fault: SimFault,
                     nbits: int) -> set:
    """Signals sensitized by ``fault`` on at least one vector."""
    return set(sensitization_masks(netlist, values, table, fault,
                                   nbits))


def sensitized_path(netlist: Netlist, values: np.ndarray,
                    table: LineTable, fault: SimFault, vector: int,
                    nbits: int) -> list:
    """One sensitized path fault-site -> primary output for ``vector``.

    Returns the list of gate indices along the path (fault site first),
    or ``[]`` when the fault is not observed on that vector.
    """
    masks = sensitization_masks(netlist, values, table, fault, nbits)
    word, bit = divmod(vector, WORD_BITS)

    def lit(signal: int) -> bool:
        mask = masks.get(signal)
        return mask is not None and (int(mask[word]) >> bit) & 1 == 1

    line = table[fault.line]
    # A stem fault's path starts at the driver; a branch fault is only
    # visible from its sink gate onward.
    start = line.driver if line.is_stem else line.sink
    if not lit(start):
        return []
    outputs = set(netlist.outputs)
    fanouts = netlist.fanouts()
    path = [start]
    visited = {start}
    current = start
    while current not in outputs:
        next_hop = None
        for consumer in fanouts[current]:
            if consumer in visited:
                continue
            if lit(consumer):
                next_hop = consumer
                break
        if next_hop is None:
            return []  # effect died before any output on this vector
        path.append(next_hop)
        visited.add(next_hop)
        current = next_hop
    return path
