"""Output comparison utilities: error masks over packed vectors.

Everything downstream of simulation (bit-lists, screening, verification)
reasons about *which vectors fail*.  These helpers produce tail-masked
packed difference masks so padding bits never leak into counts.
"""

from __future__ import annotations

import numpy as np

from .packing import popcount, tail_mask


def masked(words: np.ndarray, nbits: int) -> np.ndarray:
    """Copy of ``words`` with the tail padding of the last word cleared."""
    out = np.array(words, dtype=np.uint64, copy=True)
    if out.ndim == 1:
        out[-1] &= tail_mask(nbits)
    else:
        out[..., -1] &= tail_mask(nbits)
    return out


def diff_rows(spec_rows: np.ndarray, impl_rows: np.ndarray,
              nbits: int) -> np.ndarray:
    """Per-output packed mismatch masks (tail-masked)."""
    return masked(spec_rows ^ impl_rows, nbits)


def failing_vector_mask(spec_rows: np.ndarray, impl_rows: np.ndarray,
                        nbits: int) -> np.ndarray:
    """1-D packed mask of vectors failing on *any* output (tail-masked)."""
    diff = diff_rows(spec_rows, impl_rows, nbits)
    if diff.ndim == 1:
        return diff
    return np.bitwise_or.reduce(diff, axis=0)


def equivalent(spec_rows: np.ndarray, impl_rows: np.ndarray,
               nbits: int) -> bool:
    """True when the two circuits agree on every (real) vector."""
    return popcount(failing_vector_mask(spec_rows, impl_rows, nbits)) == 0


def count_failing(spec_rows: np.ndarray, impl_rows: np.ndarray,
                  nbits: int) -> int:
    """Number of failing vectors."""
    return popcount(failing_vector_mask(spec_rows, impl_rows, nbits))
