"""Bit-packing utilities for 64-way parallel-pattern simulation.

Vectors are packed along ``uint64`` words: bit *i* of word *w* holds the
value under test vector ``64*w + i``.  A :class:`PatternSet` stores the
primary-input stimulus in that packed form plus the metadata (vector
count, tail mask) that counting utilities need.
"""

from __future__ import annotations

import sys

import numpy as np

from ..errors import SimulationError

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_LITTLE_ENDIAN = sys.byteorder == "little"

# numpy >= 2.0 ships a native popcount; otherwise use a 16-bit table.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
if not _HAS_BITWISE_COUNT:  # pragma: no cover - depends on numpy version
    _POP16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                      dtype=np.uint8)


def num_words(nbits: int) -> int:
    """Words needed to hold ``nbits`` packed bits."""
    return (nbits + WORD_BITS - 1) // WORD_BITS


def tail_mask(nbits: int) -> np.uint64:
    """Mask of valid bits in the final word of an ``nbits`` stream."""
    rem = nbits % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across ``words`` (any shape)."""
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    w = words.reshape(-1).view(np.uint64)
    total = 0
    for shift in (0, 16, 32, 48):
        total += int(_POP16[(w >> np.uint64(shift))
                            & np.uint64(0xFFFF)].sum())
    return total


def _words_to_le_bytes(words: np.ndarray) -> np.ndarray:
    """Reinterpret packed words as their little-endian byte stream."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return words.view(np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (signals x nbits) 0/1 array into (signals x words) uint64.

    Vectorized via :func:`numpy.packbits` with ``bitorder="little"`` so
    bit *i* of word *w* is vector ``64*w + i`` — the byte stream is then
    viewed as little-endian ``uint64`` words (byte-swapped on big-endian
    hosts).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim == 1:
        bits = bits[np.newaxis, :]
    nsig, nbits = bits.shape
    nwords = num_words(nbits)
    packed = np.packbits(bits, axis=1, bitorder="little")
    out = np.zeros((nsig, nwords * 8), dtype=np.uint8)
    out[:, :packed.shape[1]] = packed
    words = out.view(np.uint64)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return np.ascontiguousarray(words)


def unpack_bits(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: (signals x words) -> (signals x nbits)."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[np.newaxis, :]
    nsig = words.shape[0]
    if nbits > words.shape[1] * WORD_BITS:
        raise SimulationError(
            f"cannot unpack {nbits} bits from {words.shape[1]} word(s)")
    data = _words_to_le_bytes(words).reshape(nsig, -1)
    return np.unpackbits(data, axis=1, count=nbits, bitorder="little")


def bit_indices(words: np.ndarray, nbits: int) -> list[int]:
    """Indices of set bits (vector numbers) in a packed 1-D stream.

    The stream must be tail-masked: a set bit at position >= ``nbits``
    (tail padding of the last word, or any whole word beyond it) raises
    :class:`SimulationError` instead of being silently skipped — it
    means some producer forgot to mask the padding the NOT-like gates
    flip, and counting code downstream would be corrupted too.
    """
    flat = np.ascontiguousarray(np.asarray(words, dtype=np.uint64)
                                .reshape(-1))
    nwords = num_words(nbits)
    head = flat[:nwords]
    stray = 0
    if flat.size >= nwords and nwords:
        stray = int(head[-1] & ~tail_mask(nbits))
    if flat[nwords:].size:
        stray |= int(np.bitwise_or.reduce(flat[nwords:]))
    if stray:
        raise SimulationError(
            f"bit_indices: set bits beyond nbits={nbits} "
            "(unmasked tail padding?)")
    count = min(nbits, head.size * WORD_BITS)
    if count == 0:
        return []
    bits = np.unpackbits(_words_to_le_bytes(head), count=count,
                         bitorder="little")
    return np.flatnonzero(bits).tolist()


class PatternSet:
    """A packed set of input test vectors for a fixed number of PIs."""

    def __init__(self, words: np.ndarray, nbits: int):
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise SimulationError("PatternSet expects a 2-D word array")
        if words.shape[1] != num_words(nbits):
            raise SimulationError(
                f"word count {words.shape[1]} does not match "
                f"{nbits} vectors")
        self.words = words
        self.nbits = nbits

    @property
    def num_inputs(self) -> int:
        return self.words.shape[0]

    @property
    def num_words(self) -> int:
        return self.words.shape[1]

    def __len__(self) -> int:
        return self.nbits

    @classmethod
    def from_vectors(cls, vectors) -> "PatternSet":
        """Build from an iterable of 0/1 sequences (one per vector)."""
        mat = np.asarray(list(vectors), dtype=np.uint8)
        if mat.ndim != 2:
            raise SimulationError("expected a 2-D vector array")
        return cls(pack_bits(mat.T), mat.shape[0])

    @classmethod
    def random(cls, num_inputs: int, nbits: int, seed: int = 0,
               one_probability: float = 0.5) -> "PatternSet":
        """Uniform (or weighted) random patterns."""
        rng = np.random.default_rng(seed)
        bits = (rng.random((num_inputs, nbits)) < one_probability)
        return cls(pack_bits(bits.astype(np.uint8)), nbits)

    @classmethod
    def exhaustive(cls, num_inputs: int) -> "PatternSet":
        """All 2^n vectors (n <= 20 guards accidental blow-ups)."""
        if num_inputs > 20:
            raise SimulationError(
                f"refusing exhaustive pattern set for {num_inputs} inputs")
        nbits = 1 << num_inputs
        codes = np.arange(nbits, dtype=np.uint32)
        shifts = np.arange(num_inputs, dtype=np.uint32)[:, np.newaxis]
        bits = ((codes >> shifts) & 1).astype(np.uint8)
        return cls(pack_bits(bits), nbits)

    def vector(self, index: int) -> np.ndarray:
        """Unpacked 0/1 values of vector ``index`` (one per PI)."""
        if not 0 <= index < self.nbits:
            raise SimulationError(f"vector index {index} out of range")
        w, b = divmod(index, WORD_BITS)
        return ((self.words[:, w] >> np.uint64(b)) & np.uint64(1)
                ).astype(np.uint8)

    def concat(self, other: "PatternSet") -> "PatternSet":
        """Concatenate two pattern sets over the same inputs.

        Splices the packed words directly: ``other``'s stream is shifted
        by ``self.nbits % 64`` across word boundaries and OR-ed in after
        ``self``'s (tail-masked) last word — no unpack/repack round-trip.
        """
        if other.num_inputs != self.num_inputs:
            raise SimulationError("input count mismatch in concat")
        n1, n2 = self.nbits, other.nbits
        total = num_words(n1 + n2)
        out = np.zeros((self.num_inputs, total), dtype=np.uint64)
        w1 = self.words.shape[1]
        out[:, :w1] = self.words
        if w1:
            out[:, w1 - 1] &= tail_mask(n1)
        if n2 == 0:
            return PatternSet(out, n1 + n2)
        o = np.array(other.words, dtype=np.uint64, copy=True)
        o[:, -1] &= tail_mask(n2)
        rem = n1 % WORD_BITS
        if rem == 0:
            out[:, w1:w1 + o.shape[1]] = o
        else:
            low = o << np.uint64(rem)           # into the shared word
            high = o >> np.uint64(WORD_BITS - rem)  # spill into the next
            out[:, w1 - 1] |= low[:, 0]
            ndest = total - w1                  # words after the shared one
            if ndest:
                out[:, w1:] = high[:, :ndest]
                out[:, w1:w1 + o.shape[1] - 1] |= low[:, 1:]
        return PatternSet(out, n1 + n2)

    def tail_mask(self) -> np.uint64:
        return tail_mask(self.nbits)
