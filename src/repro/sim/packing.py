"""Bit-packing utilities for 64-way parallel-pattern simulation.

Vectors are packed along ``uint64`` words: bit *i* of word *w* holds the
value under test vector ``64*w + i``.  A :class:`PatternSet` stores the
primary-input stimulus in that packed form plus the metadata (vector
count, tail mask) that counting utilities need.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# numpy >= 2.0 ships a native popcount; otherwise use a 16-bit table.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
if not _HAS_BITWISE_COUNT:  # pragma: no cover - depends on numpy version
    _POP16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                      dtype=np.uint8)


def num_words(nbits: int) -> int:
    """Words needed to hold ``nbits`` packed bits."""
    return (nbits + WORD_BITS - 1) // WORD_BITS


def tail_mask(nbits: int) -> np.uint64:
    """Mask of valid bits in the final word of an ``nbits`` stream."""
    rem = nbits % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across ``words`` (any shape)."""
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    w = words.reshape(-1).view(np.uint64)
    total = 0
    for shift in (0, 16, 32, 48):
        total += int(_POP16[(w >> np.uint64(shift))
                            & np.uint64(0xFFFF)].sum())
    return total


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (signals x nbits) 0/1 array into (signals x words) uint64."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim == 1:
        bits = bits[np.newaxis, :]
    nsig, nbits = bits.shape
    words = np.zeros((nsig, num_words(nbits)), dtype=np.uint64)
    for i in range(nbits):
        w, b = divmod(i, WORD_BITS)
        words[:, w] |= bits[:, i].astype(np.uint64) << np.uint64(b)
    return words


def unpack_bits(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: (signals x words) -> (signals x nbits)."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[np.newaxis, :]
    nsig = words.shape[0]
    bits = np.zeros((nsig, nbits), dtype=np.uint8)
    for i in range(nbits):
        w, b = divmod(i, WORD_BITS)
        bits[:, i] = ((words[:, w] >> np.uint64(b)) & np.uint64(1)
                      ).astype(np.uint8)
    return bits


def bit_indices(words: np.ndarray, nbits: int) -> list[int]:
    """Indices of set bits (vector numbers) in a packed 1-D stream."""
    out: list[int] = []
    flat = np.asarray(words, dtype=np.uint64).reshape(-1)
    for w, word in enumerate(flat):
        word = int(word)
        base = w * WORD_BITS
        while word:
            low = word & -word
            idx = base + low.bit_length() - 1
            if idx < nbits:
                out.append(idx)
            word ^= low
    return out


class PatternSet:
    """A packed set of input test vectors for a fixed number of PIs."""

    def __init__(self, words: np.ndarray, nbits: int):
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise SimulationError("PatternSet expects a 2-D word array")
        if words.shape[1] != num_words(nbits):
            raise SimulationError(
                f"word count {words.shape[1]} does not match "
                f"{nbits} vectors")
        self.words = words
        self.nbits = nbits

    @property
    def num_inputs(self) -> int:
        return self.words.shape[0]

    @property
    def num_words(self) -> int:
        return self.words.shape[1]

    def __len__(self) -> int:
        return self.nbits

    @classmethod
    def from_vectors(cls, vectors) -> "PatternSet":
        """Build from an iterable of 0/1 sequences (one per vector)."""
        mat = np.asarray(list(vectors), dtype=np.uint8)
        if mat.ndim != 2:
            raise SimulationError("expected a 2-D vector array")
        return cls(pack_bits(mat.T), mat.shape[0])

    @classmethod
    def random(cls, num_inputs: int, nbits: int, seed: int = 0,
               one_probability: float = 0.5) -> "PatternSet":
        """Uniform (or weighted) random patterns."""
        rng = np.random.default_rng(seed)
        bits = (rng.random((num_inputs, nbits)) < one_probability)
        return cls(pack_bits(bits.astype(np.uint8)), nbits)

    @classmethod
    def exhaustive(cls, num_inputs: int) -> "PatternSet":
        """All 2^n vectors (n <= 20 guards accidental blow-ups)."""
        if num_inputs > 20:
            raise SimulationError(
                f"refusing exhaustive pattern set for {num_inputs} inputs")
        nbits = 1 << num_inputs
        bits = np.zeros((num_inputs, nbits), dtype=np.uint8)
        for v in range(nbits):
            for i in range(num_inputs):
                bits[i, v] = (v >> i) & 1
        return cls(pack_bits(bits), nbits)

    def vector(self, index: int) -> np.ndarray:
        """Unpacked 0/1 values of vector ``index`` (one per PI)."""
        if not 0 <= index < self.nbits:
            raise SimulationError(f"vector index {index} out of range")
        w, b = divmod(index, WORD_BITS)
        return ((self.words[:, w] >> np.uint64(b)) & np.uint64(1)
                ).astype(np.uint8)

    def concat(self, other: "PatternSet") -> "PatternSet":
        """Concatenate two pattern sets over the same inputs."""
        if other.num_inputs != self.num_inputs:
            raise SimulationError("input count mismatch in concat")
        a = unpack_bits(self.words, self.nbits)
        b = unpack_bits(other.words, other.nbits)
        both = np.concatenate([a, b], axis=1)
        return PatternSet(pack_bits(both), self.nbits + other.nbits)

    def tail_mask(self) -> np.uint64:
        return tail_mask(self.nbits)
