"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad arity, unknown gate, cycle...)."""


class ParseError(ReproError):
    """Malformed input file (e.g. an ISCAS ``.bench`` netlist)."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class SimulationError(ReproError):
    """Invalid simulation request (shape mismatch, unknown signal...)."""


class InjectionError(ReproError):
    """A fault/error could not be injected at the requested location."""


class DiagnosisError(ReproError):
    """The diagnosis engine was configured or driven inconsistently."""


class InvariantViolation(DiagnosisError):
    """A debug-mode diagnosis invariant failed (Verr/Vcorr partition,
    Theorem 1 preconditions, or a correction referencing a dead line)."""
