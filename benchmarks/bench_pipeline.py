"""Staged-pipeline overhead benchmark (``BENCH_pipeline.json``).

The multi-layer refactor moved every diagnosis mode onto the
:class:`repro.diagnose.pipeline.DiagnosisSession` stage pipeline; its
instrumentation (one :class:`StageRecord` per stage execution) must be
close to free.  One suite, ``pipeline``: diagnose the ``bench_diag``
reference workloads at ``jobs=1`` and report, per case,

* the best-of-``REPEATS`` end-to-end wall time, and
* the per-stage breakdown of the best run — ``EngineStats.stages``
  aggregated by stage name (calls, items in/out, summed wall time).

:data:`PRE_REFACTOR_TOTALS` pins the same workloads' best-of-three
totals measured at the commit immediately before the engines moved onto
the session (same machine as the committed payload).  Full (non-smoke)
regeneration fails if a case exceeds its pre-refactor total by more
than :data:`OVERHEAD_TOLERANCE`; the schema check and the pytest entry
enforce structure and determinism only, never timings (shared CI
runners make wall-clock assertions meaningless).

Run as a script (``python benchmarks/bench_pipeline.py [--smoke]``) it
regenerates ``BENCH_pipeline.json``; under pytest it validates the
smoke payload end to end.
"""

import time

from repro.circuit import generators
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.diagnose.pipeline import STAGE_ORDER
from repro.faults import (inject_stuck_at_faults,
                          observable_design_error_workload)
from repro.sim import PatternSet
from repro.tgen import random_patterns

SCHEMA = "repro.bench_pipeline/1"
REPEATS = 5
CASES = ("exact/alu4", "dedc/alu4")
SMOKE_CASES = ("exact/c17", "dedc/alu4")

#: Best-of-``REPEATS`` end-to-end seconds for the full-size cases,
#: measured on the pre-refactor engines (commit f33015c) on the machine
#: that generated the committed payload.  The staged pipeline must stay
#: within OVERHEAD_TOLERANCE of these on regeneration.
PRE_REFACTOR_TOTALS = {"exact/alu4": 6.224, "dedc/alu4": 0.209}
OVERHEAD_TOLERANCE = 1.05


def build_case(case: str):
    """(spec, impl, patterns, config) of one reference workload.

    Same construction as ``bench_diag.py`` — the workloads
    :data:`PRE_REFACTOR_TOTALS` was measured on.
    """
    kind, name = case.split("/")
    circuit = generators.c17() if name == "c17" else generators.alu(4)
    if kind == "exact":
        workload = inject_stuck_at_faults(circuit, 2, seed=4)
        patterns = PatternSet.random(circuit.num_inputs, 512, seed=9)
        config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                 max_errors=2, jobs=1)
        return workload.impl, circuit, patterns, config
    patterns = random_patterns(circuit, 512, seed=5)
    workload = observable_design_error_workload(circuit, 2, patterns,
                                                seed=11)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=3, jobs=1)
    return circuit, workload.impl, patterns, config


def stage_breakdown(stages: list) -> list:
    """Aggregate raw stage records by stage name, pipeline order."""
    by_name: dict = {}
    for rec in stages:
        agg = by_name.setdefault(rec["stage"],
                                 {"stage": rec["stage"], "calls": 0,
                                  "in": 0, "out": 0, "wall_s": 0.0})
        agg["calls"] += 1
        agg["in"] += rec["in"]
        agg["out"] += rec["out"]
        agg["wall_s"] += rec["wall_s"]
    return [by_name[name] for name in STAGE_ORDER if name in by_name]


def pipeline_record(case: str) -> dict:
    spec, impl, patterns, config = build_case(case)
    best = None
    for _ in range(REPEATS):
        diag = IncrementalDiagnoser(spec, impl, patterns, config)
        t0 = time.perf_counter()
        result = diag.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, result)
    wall, result = best
    stats = result.stats
    return {
        "suite": "pipeline", "case": case,
        "gates": len(spec.gates), "vectors": patterns.nbits,
        "repeats": REPEATS, "found": result.found,
        "solutions": len(result.solutions), "nodes": stats.nodes,
        "truncated": stats.truncated, "total_s": wall,
        "baseline_s": PRE_REFACTOR_TOTALS.get(case),
        "stages": stage_breakdown(stats.stages),
    }


def run_suites(smoke: bool = False) -> dict:
    cases = SMOKE_CASES if smoke else CASES
    records = [pipeline_record(case) for case in cases]
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    records = payload.get("records", ())
    if not records:
        errors.append("no records")
    for record in records:
        case = record.get("case")
        if record.get("suite") != "pipeline":
            errors.append(f"unknown suite {record.get('suite')!r}")
            continue
        for key in ("case", "gates", "vectors", "repeats", "found",
                    "solutions", "nodes", "truncated", "total_s",
                    "baseline_s", "stages"):
            if key not in record:
                errors.append(f"pipeline/{case}: missing {key}")
        stages = record.get("stages", ())
        if not stages:
            errors.append(f"pipeline/{case}: no stage breakdown")
        names = [s.get("stage") for s in stages]
        for name in names:
            if name not in STAGE_ORDER:
                errors.append(f"pipeline/{case}: unknown stage {name!r}")
        in_order = [n for n in STAGE_ORDER if n in names]
        if names != in_order:
            errors.append(f"pipeline/{case}: stages out of pipeline "
                          "order")
        for agg in stages:
            if agg.get("calls", 0) < 1:
                errors.append(f"pipeline/{case}/{agg.get('stage')}: "
                              "empty aggregate")
            if agg.get("wall_s", 0.0) < 0.0:
                errors.append(f"pipeline/{case}/{agg.get('stage')}: "
                              "negative wall time")
        # both ends of the pipeline must always be present
        for required in ("ingest", "report"):
            if required not in names:
                errors.append(f"pipeline/{case}: missing {required} "
                              "stage")
        if not record.get("found", False):
            errors.append(f"pipeline/{case}: reference workload must "
                          "be diagnosed")
    return errors


def check_overhead(payload: dict) -> list:
    """Full-generation gate: totals vs the pre-refactor engines."""
    errors = []
    for record in payload.get("records", ()):
        baseline = record.get("baseline_s")
        if baseline is None:
            continue
        total = record["total_s"]
        if total > baseline * OVERHEAD_TOLERANCE:
            errors.append(
                f"pipeline/{record['case']}: {total:.3f}s exceeds "
                f"pre-refactor {baseline:.3f}s by more than "
                f"{(OVERHEAD_TOLERANCE - 1) * 100:.0f}%")
    return errors


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []
    for record in payload["records"]:
        # instrumentation must cover the whole run: the ingest stage is
        # recorded once per repeat-best run, the search stage at least
        # once per deepening level that executed
        names = [s["stage"] for s in record["stages"]]
        assert "search" in names


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_pipeline.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced cases for CI (no overhead gate)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_pipeline.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if not args.smoke:
        errors += check_overhead(payload)
    if errors:
        for err in errors:
            print(f"bench_pipeline: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        top = max(record["stages"], key=lambda s: s["wall_s"])
        baseline = record["baseline_s"]
        vs = (f" (pre-refactor {baseline:.3f}s)"
              if baseline is not None else "")
        print(f"{record['case']:>12}: {record['total_s']:.3f}s{vs} "
              f"best of {record['repeats']}, "
              f"{record['nodes']} nodes, hottest stage "
              f"{top['stage']} {top['wall_s']:.3f}s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
