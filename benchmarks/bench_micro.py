"""Micro-benchmarks for the substrate layers.

Not a paper table — these guard the throughput assumptions behind the
reproduction (bit-parallel simulation, PPSFP fault simulation, path
trace, PODEM, area optimization).  Useful for spotting performance
regressions when modifying the kernels.
"""

import pytest

from repro.bench import simbench
from repro.circuit import LineTable, generators
from repro.circuit.transform import optimize_area
from repro.diagnose import DiagnosisState, path_trace_counts
from repro.faults import inject_stuck_at_faults
from repro.faults.collapse import collapsed_faults
from repro.sim import FaultSimulator, PatternSet, output_rows, simulate
from repro.tgen.podem import Podem


@pytest.fixture(scope="module")
def alu():
    return generators.alu(8)


@pytest.fixture(scope="module")
def patterns(alu):
    return PatternSet.random(alu.num_inputs, 2048, seed=0)


def test_logic_simulation_throughput(benchmark, alu, patterns):
    result = benchmark(simulate, alu, patterns)
    assert result.shape[0] == len(alu.gates)
    benchmark.extra_info["gate_evals_per_call"] = \
        len(alu.gates) * patterns.nbits


def test_fault_simulation_throughput(benchmark, alu, patterns):
    table = LineTable(alu)
    faults = collapsed_faults(alu, table)[:100]
    fsim = FaultSimulator(alu, patterns, table)
    benchmark(lambda: [fsim.detection_mask(f) for f in faults])
    benchmark.extra_info["faults_per_call"] = len(faults)


def test_path_trace_throughput(benchmark, alu, patterns):
    workload = inject_stuck_at_faults(alu, 2, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(alu, patterns, device_out)
    counts = benchmark(path_trace_counts, state, 24, 0)
    assert counts.sum() > 0


def test_podem_throughput(benchmark, alu):
    table = LineTable(alu)
    faults = collapsed_faults(alu, table)[:40]
    podem = Podem(alu, table, backtrack_limit=100)
    results = benchmark(lambda: [podem.generate(f) for f in faults])
    assert sum(1 for a, _ in results if a is not None) > 0


@pytest.fixture(scope="module")
def suspect_sweep():
    """Heuristic-1 suspect-scoring workload on r880, 1024 vectors.

    The same setup ``repro bench`` times: flip each suspect line's
    failing-vector bits and propagate the difference to the outputs.
    """
    circuit = generators.by_name("r880")
    values, err_mask, _patterns = simbench._prepare(circuit, 1024, seed=0)
    suspects = simbench._suspect_signals(circuit, 128)
    circuit.event_fanouts()
    circuit.levels()
    return circuit, values, err_mask, suspects


def test_suspect_scoring_event_kernel(benchmark, suspect_sweep):
    circuit, values, err_mask, suspects = suspect_sweep
    events = benchmark(simbench._sweep, "event", circuit, values,
                       err_mask, suspects)
    assert events > 0
    benchmark.extra_info["suspects_per_call"] = len(suspects)


def test_suspect_scoring_scan_kernel(benchmark, suspect_sweep):
    """Pre-event-kernel baseline (full topological scan per suspect)."""
    circuit, values, err_mask, suspects = suspect_sweep
    events = benchmark(simbench._sweep, "scan", circuit, values,
                       err_mask, suspects)
    assert events > 0
    benchmark.extra_info["suspects_per_call"] = len(suspects)


def test_optimize_area_speed(benchmark):
    circuit = generators.by_name("r7552", scale=0.35)
    optimized = benchmark(optimize_area, circuit)
    assert len(optimized.gates) <= len(circuit.gates)


def test_netlist_facts_build(benchmark, alu):
    """Full dataflow digest (constants, hashes, implications, ODCs)."""
    from repro.analyze.dataflow import NetlistFacts

    def build():
        facts = NetlistFacts(alu)   # bypass the per-netlist cache
        facts.summary(deep=True)
        return facts

    facts = benchmark(build)
    benchmark.extra_info["gates"] = len(alu.gates)
    benchmark.extra_info["implications"] = \
        facts.implications().edge_count()


def test_netlist_facts_shallow_sections(benchmark, alu):
    """Ternary constants + dominators only — the per-node prescreen cost."""
    from repro.analyze.dataflow import NetlistFacts

    def build():
        facts = NetlistFacts(alu)
        facts.constants()
        facts.blocked_signals()
        return facts

    benchmark(build)
    benchmark.extra_info["gates"] = len(alu.gates)


def test_diagnosis_state_build(benchmark, alu, patterns):
    workload = inject_stuck_at_faults(alu, 2, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = benchmark(DiagnosisState, alu, patterns, device_out)
    assert state.num_err >= 0
