"""Simulation-kernel benchmarks (the ``BENCH_sim.json`` suites).

pytest-benchmark twin of ``repro bench``: times the heuristic-1
suspect-scoring sweep per (circuit, kernel) pair and the full-circuit
simulate across the vector ladder, delegating all workload construction
to :mod:`repro.bench.simbench` so the two entry points measure the same
thing.  Run as a script (``python benchmarks/bench_sim.py [--smoke]``)
it regenerates ``BENCH_sim.json`` exactly like the CLI subcommand.

Scale knobs follow conftest: ``REPRO_BENCH_SCALE`` resizes the circuits
for quick CI runs.
"""

import pytest

from conftest import SCALE
from repro.bench import simbench
from repro.circuit import generators

VECTORS = 1024
SUSPECT_CAP = 128


@pytest.fixture(scope="module", params=simbench.MICRO_CIRCUITS)
def micro_workload(request):
    circuit = generators.by_name(request.param, scale=SCALE)
    values, err_mask, _patterns = simbench._prepare(circuit, VECTORS,
                                                    seed=0)
    suspects = simbench._suspect_signals(circuit, SUSPECT_CAP)
    circuit.event_fanouts()
    circuit.levels()
    return circuit, values, err_mask, suspects


@pytest.mark.parametrize("kernel", ("event", "scan"))
def test_suspect_sweep(benchmark, micro_workload, kernel):
    circuit, values, err_mask, suspects = micro_workload
    events = benchmark(simbench._sweep, kernel, circuit, values,
                       err_mask, suspects)
    assert events > 0
    benchmark.extra_info.update({
        "circuit": circuit.name, "kernel": kernel,
        "nvectors": VECTORS, "suspects": len(suspects),
        "events_per_call": events,
    })


def test_bench_payload_schema():
    """The smoke payload must satisfy the BENCH_sim.json schema."""
    payload = simbench.run_suites(smoke=True, repeats=1)
    assert simbench.validate_payload(payload) == []


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_sim.json (same as `repro bench`)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/vectors for CI")
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    payload = simbench.run_suites(smoke=args.smoke, repeats=args.repeats)
    errors = simbench.validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(simbench.format_records(payload["records"]))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
