"""Scaling with error cardinality (§1/§4 claim).

The paper's headline quality: accuracy and run time "scale well with
increasing number of errors".  This bench sweeps 1..5 injected design
errors on a fixed circuit and records solve rate / nodes / time so the
trend is regenerable.
"""

import pytest

from conftest import BUDGET, VECTORS
from repro.bench.workloads import design_error_instance
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode


@pytest.mark.parametrize("num_errors", (1, 2, 3, 4, 5))
def test_scaling_with_error_count(benchmark, prepared_design_error,
                                  num_errors):
    prepared = prepared_design_error["r880"]
    workload, patterns = design_error_instance(prepared, num_errors,
                                               trial=0,
                                               num_vectors=VECTORS)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=num_errors + 1,
                             time_budget=BUDGET)

    def run():
        return IncrementalDiagnoser(prepared.netlist, workload.impl,
                                    patterns, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "errors_injected": num_errors,
        "solved": result.found,
        "nodes": result.stats.nodes,
        "rounds": result.stats.rounds,
    })
