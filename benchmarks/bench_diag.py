"""Parallel-diagnosis benchmarks (the ``BENCH_diag.json`` suite).

Measures the :mod:`repro.parallel` scheduler end to end: each workload
is diagnosed at ``jobs`` = 1, 2 and 4 and every record carries a
sha256 digest of the printed solution list.  The schema check enforces
the scheduler's contract — all job counts on one workload must produce
the identical digest and identical deterministic counters — but never
fails on timings: speedup is reported alongside the host's CPU count
(``cpus``) because a single-core runner cannot show one.

* **exact** — the paper's exhaustive stuck-at protocol (Table 1); one
  shard per screened root correction.
* **dedc** — the h1/h2/h3 relaxation ladder (§3.4); one shard per
  ladder attempt.

Run as a script (``python benchmarks/bench_diag.py [--smoke]``) it
regenerates ``BENCH_diag.json``; under pytest-benchmark it times the
same workloads.
"""

import hashlib
import os
import time

import pytest

from repro.circuit import generators
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.faults import (inject_stuck_at_faults,
                          observable_design_error_workload)
from repro.sim import PatternSet
from repro.tgen import random_patterns

JOBS = (1, 2, 4)
SCHEMA = "repro.bench_diag/1"
EXACT_WORKLOADS = ("alu4", "c17")
SMOKE_EXACT_WORKLOADS = ("c17",)
DEDC_WORKLOADS = ("alu4",)
SMOKE_DEDC_WORKLOADS = ("alu4",)


def build_circuit(name: str):
    if name == "c17":
        return generators.c17()
    if name == "alu4":
        return generators.alu(4)
    raise ValueError(f"unknown bench circuit {name!r}")


def solutions_digest(result) -> str:
    """sha256 of the printed solution list — the byte-identity probe."""
    text = "\n".join(s.describe() for s in result.solutions)
    return hashlib.sha256(text.encode()).hexdigest()


def _record(suite: str, circuit, jobs: int, result, wall: float) -> dict:
    return {"suite": suite, "circuit": circuit.name,
            "gates": len(circuit.gates), "jobs": jobs,
            "nodes": result.stats.nodes,
            "shards": len(result.stats.shards),
            "truncated": result.stats.truncated,
            "solutions": len(result.solutions),
            "solutions_digest": solutions_digest(result),
            "wall_s": wall}


def exact_records(name: str) -> list:
    """Exhaustive 2-fault stuck-at diagnosis at each job count."""
    circuit = build_circuit(name)
    workload = inject_stuck_at_faults(circuit, 2, seed=4)
    patterns = PatternSet.random(circuit.num_inputs, 512, seed=9)
    records = []
    for jobs in JOBS:
        config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                 max_errors=2, jobs=jobs)
        t0 = time.perf_counter()
        result = IncrementalDiagnoser(workload.impl, circuit, patterns,
                                      config).run()
        records.append(_record("exact", circuit, jobs, result,
                               time.perf_counter() - t0))
    return records


def dedc_records(name: str) -> list:
    """2-design-error ladder diagnosis at each job count."""
    circuit = build_circuit(name)
    patterns = random_patterns(circuit, 512, seed=5)
    workload = observable_design_error_workload(circuit, 2, patterns,
                                                seed=11)
    records = []
    for jobs in JOBS:
        config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                                 max_errors=3, jobs=jobs)
        t0 = time.perf_counter()
        result = IncrementalDiagnoser(circuit, workload.impl, patterns,
                                      config).run()
        records.append(_record("dedc", circuit, jobs, result,
                               time.perf_counter() - t0))
    return records


def _speedup(records: list) -> dict:
    """Per-workload jobs=1 -> jobs=max wall-clock ratio (informative
    only; see ``cpus``)."""
    by_jobs = {r["jobs"]: r for r in records}
    serial = by_jobs[min(by_jobs)]["wall_s"]
    widest = by_jobs[max(by_jobs)]
    return {"suite": records[0]["suite"],
            "circuit": records[0]["circuit"],
            "speedup": (serial / widest["wall_s"]
                        if widest["wall_s"] > 0 else 0.0)}


def run_suites(smoke: bool = False) -> dict:
    exact_names = SMOKE_EXACT_WORKLOADS if smoke else EXACT_WORKLOADS
    dedc_names = SMOKE_DEDC_WORKLOADS if smoke else DEDC_WORKLOADS
    groups = [exact_records(name) for name in exact_names]
    groups.extend(dedc_records(name) for name in dedc_names)
    return {"schema": SCHEMA, "smoke": smoke,
            "cpus": os.cpu_count() or 1,
            "records": [r for group in groups for r in group],
            "summary": [_speedup(group) for group in groups]}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    if not isinstance(payload.get("cpus"), int) or payload["cpus"] < 1:
        errors.append("cpus must be a positive integer")
    required = ("suite", "circuit", "gates", "jobs", "nodes", "shards",
                "truncated", "solutions", "solutions_digest", "wall_s")
    groups: dict = {}
    for record in payload.get("records", ()):
        if record.get("suite") not in ("exact", "dedc"):
            errors.append(f"unknown suite {record.get('suite')!r}")
            continue
        name = f"{record['suite']}/{record.get('circuit')}"
        missing = [key for key in required if key not in record]
        for key in missing:
            errors.append(f"{name}: missing {key}")
        if missing:
            continue
        groups.setdefault(name, []).append(record)
    for name, records in groups.items():
        # The determinism contract: jobs must not change what is found
        # or how much deterministic work it took — only the wall clock.
        for key in ("solutions_digest", "solutions", "nodes", "shards",
                    "truncated"):
            if len({record[key] for record in records}) != 1:
                errors.append(f"{name}: {key} differs across jobs "
                              "(scheduler nondeterminism)")
    for entry in payload.get("summary", ()):
        if "speedup" not in entry:
            errors.append(f"summary {entry.get('circuit')}: "
                          "missing speedup")
    return errors


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", JOBS)
def test_exact_jobs(benchmark, jobs):
    circuit = build_circuit("c17")
    workload = inject_stuck_at_faults(circuit, 2, seed=4)
    patterns = PatternSet.random(circuit.num_inputs, 512, seed=9)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, jobs=jobs)

    def run():
        return IncrementalDiagnoser(workload.impl, circuit, patterns,
                                    config).run()

    result = benchmark(run)
    benchmark.extra_info.update({
        "circuit": circuit.name, "jobs": jobs,
        "nodes": result.stats.nodes,
        "solutions_digest": solutions_digest(result),
    })


def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_diag.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workloads for CI")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_diag.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        print(f"{record['circuit']:>8}: {record['suite']} jobs="
              f"{record['jobs']} {record['solutions']} solutions, "
              f"{record['nodes']} nodes over {record['shards']} shards "
              f"{record['wall_s'] * 1e3:.2f}ms "
              f"[{record['solutions_digest'][:12]}]")
    for entry in payload["summary"]:
        print(f"{entry['circuit']:>8}: {entry['suite']} speedup "
              f"{entry['speedup']:.2f}x on {payload['cpus']} cpu(s)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
