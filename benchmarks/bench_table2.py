"""Table 2 regeneration: DEDC with 3 and 4 design errors.

One benchmark per (circuit, error-count) cell; extra_info carries the
paper's columns (per-execution diag/corr time, nodes, rounds) plus
solution quality.  Full averaged tables: ``python -m repro.cli table2``.
"""

import pytest

from conftest import BUDGET, TABLE_CIRCUITS, VECTORS
from repro.bench.workloads import design_error_instance
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode

ERROR_COUNTS = (3, 4)


@pytest.mark.parametrize("num_errors", ERROR_COUNTS)
@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_table2_cell(benchmark, prepared_design_error, name, num_errors):
    prepared = prepared_design_error[name]
    workload, patterns = design_error_instance(prepared, num_errors,
                                               trial=0,
                                               num_vectors=VECTORS)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=num_errors + 1,
                             time_budget=BUDGET)

    def run():
        engine = IncrementalDiagnoser(prepared.netlist, workload.impl,
                                      patterns, config)
        return engine.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    executions = max(1, stats.nodes)
    benchmark.extra_info.update({
        "circuit": name,
        "lines": prepared.num_lines,
        "errors_injected": num_errors,
        "solved": result.found,
        "solution_size": result.min_size,
        "diag_per_execution": stats.diag_time / executions,
        "corr_per_execution": stats.corr_time / executions,
        "nodes": stats.nodes,
        "rounds": stats.rounds,
        "worst_rank": max((r.rank_position
                           for s in result.solutions[:1]
                           for r in s.records), default=-1),
    })
