"""SAT-sweeping benchmarks (the ``BENCH_prove.json`` suite).

Two measurements:

* **sweep effort** — wall time and query accounting (proven / refuted /
  unknown, counterexamples harvested) for a full :meth:`Prover.sweep`
  per circuit.  The planted ``twins`` workloads carry hash-blind
  duplicate cones and an opaque constant line, so every PROVEN verdict
  there costs a real UNSAT proof; ISCAS-style circuits measure the
  overhead on irredundant logic.
* **candidate dedup** — solution-list reduction on a planted
  duplicate-correction workload: a buffered AND chain where a stuck-at-0
  anywhere on the chain yields the identical repaired function, so exact
  diagnosis inflates the answer with candidates no vector set can ever
  separate.  The proof-backed dedup pass must collapse them.

Run as a script (``python benchmarks/bench_prove.py [--smoke]``) it
regenerates ``BENCH_prove.json``; under pytest-benchmark it times the
same workloads.
"""

import time

import pytest

from conftest import SCALE
from repro.analyze.prove import Prover
from repro.circuit import GateType, Netlist, generators
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.sim import PatternSet

SWEEP_CIRCUITS = ("c17", "r432", "twins8", "twins32")
SMOKE_SWEEP_CIRCUITS = ("c17", "twins8")
DEDUP_DEPTHS = (4, 12)
SMOKE_DEDUP_DEPTHS = (4,)
SCHEMA = "repro.bench_prove/1"


def planted_twins(pairs: int = 8) -> Netlist:
    """``pairs`` hash-blind duplicate cones plus one opaque constant.

    Each pair is XOR(a, b) next to its AND/OR decomposition — the
    structural normalization cannot merge them, so the sweep has to
    prove each equivalence with an UNSAT miter.  The tail OR over all
    four two-variable minterms is a constant 1 invisible to ternary
    propagation.
    """
    nl = Netlist(f"twins{pairs}")
    a = nl.add_input("a")
    b = nl.add_input("b")
    outs = []
    for k in range(pairs):
        x = nl.add_gate(f"x{k}", GateType.XOR, [a, b])
        na = nl.add_gate(f"na{k}", GateType.NOT, [a])
        nb = nl.add_gate(f"nb{k}", GateType.NOT, [b])
        t1 = nl.add_gate(f"t1_{k}", GateType.AND, [a, nb])
        t2 = nl.add_gate(f"t2_{k}", GateType.AND, [na, b])
        y = nl.add_gate(f"y{k}", GateType.OR, [t1, t2])
        outs.extend((x, y))
    na = nl.add_gate("cna", GateType.NOT, [a])
    nb = nl.add_gate("cnb", GateType.NOT, [b])
    minterms = [nl.add_gate("m0", GateType.AND, [na, nb]),
                nl.add_gate("m1", GateType.AND, [na, b]),
                nl.add_gate("m2", GateType.AND, [a, nb]),
                nl.add_gate("m3", GateType.AND, [a, b])]
    outs.append(nl.add_gate("tank", GateType.OR, minterms))
    nl.set_outputs(outs)
    return nl


def buffered_chain(depth: int = 4) -> Netlist:
    """AND head, ``depth`` BUFs, OR tail: every sa0 on the chain is the
    same correction, so exact diagnosis returns ``depth + 2`` candidates
    that only a proof can collapse."""
    nl = Netlist(f"chain{depth}")
    x = nl.add_input("x")
    y = nl.add_input("y")
    z = nl.add_input("z")
    prev = nl.add_gate("n0", GateType.AND, [x, y])
    for d in range(depth):
        prev = nl.add_gate(f"b{d}", GateType.BUF, [prev])
    nl.set_outputs([nl.add_gate("o", GateType.OR, [prev, z])])
    return nl


def build_circuit(name: str) -> Netlist:
    if name.startswith("twins"):
        return planted_twins(pairs=int(name[len("twins"):]))
    return generators.by_name(name, scale=SCALE)


def sweep_record(circuit, conflict_budget: int = 20_000,
                 nvectors: int = 128) -> dict:
    """One full sweep on a fresh prover, with query accounting."""
    prover = Prover(circuit, conflict_budget=conflict_budget,
                    nvectors=nvectors, seed=0)
    t0 = time.perf_counter()
    result = prover.sweep()
    wall = time.perf_counter() - t0
    stats = result.stats
    return {"suite": "sweep", "circuit": circuit.name,
            "gates": len(circuit.gates), "nvectors": nvectors,
            "queries": stats.queries, "proven": stats.proven,
            "refuted": stats.refuted, "unknown": stats.unknown,
            "sim_refuted": stats.sim_refuted,
            "counterexamples": stats.counterexamples,
            "conflicts": stats.conflicts,
            "proven_constants": len(result.constants),
            "proven_classes": len(result.classes),
            "wall_s": wall}


def dedup_record(depth: int) -> dict:
    """Solution-list reduction on the buffered-chain sa0 workload."""
    good = buffered_chain(depth)
    faulty = buffered_chain(depth)
    faulty.tie_stem_to_constant(faulty.index_of("n0"), 0)
    patterns = PatternSet.exhaustive(3)
    plain = IncrementalDiagnoser(
        faulty, good, patterns,
        DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, max_errors=1,
                        prove_dedup=False)).run()
    t0 = time.perf_counter()
    deduped = IncrementalDiagnoser(
        faulty, good, patterns,
        DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, max_errors=1,
                        prove_dedup=True)).run()
    wall = time.perf_counter() - t0
    return {"suite": "dedup", "circuit": good.name,
            "gates": len(good.gates),
            "solutions_before": len(plain.solutions),
            "solutions_after": len(deduped.solutions),
            "merged": deduped.stats.dedup_merged,
            "checked": deduped.stats.dedup_checked,
            "unknown": deduped.stats.dedup_unknown,
            "wall_s": wall}


def run_suites(smoke: bool = False) -> dict:
    circuits = SMOKE_SWEEP_CIRCUITS if smoke else SWEEP_CIRCUITS
    depths = SMOKE_DEDUP_DEPTHS if smoke else DEDUP_DEPTHS
    records = [sweep_record(build_circuit(name),
                            nvectors=64 if smoke else 128)
               for name in circuits]
    records.extend(dedup_record(depth) for depth in depths)
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    for record in payload.get("records", ()):
        suite = record.get("suite")
        if suite == "sweep":
            required = ("circuit", "gates", "queries", "proven",
                        "refuted", "unknown", "sim_refuted",
                        "counterexamples", "conflicts",
                        "proven_constants", "proven_classes", "wall_s")
        elif suite == "dedup":
            required = ("circuit", "gates", "solutions_before",
                        "solutions_after", "merged", "checked",
                        "unknown", "wall_s")
        else:
            errors.append(f"unknown suite {suite!r}")
            continue
        missing = [key for key in required if key not in record]
        for key in missing:
            errors.append(f"{suite}/{record.get('circuit')}: "
                          f"missing {key}")
        if missing:
            continue
        name = f"{suite}/{record['circuit']}"
        if suite == "sweep" and (record["proven"] + record["refuted"]
                                 + record["unknown"]
                                 != record["queries"]):
            errors.append(f"{name}: proven + refuted + unknown "
                          "!= queries (a verdict was dropped)")
        if suite == "dedup":
            if (record["solutions_after"] + record["merged"]
                    != record["solutions_before"]):
                errors.append(f"{name}: after + merged != before")
            if record["merged"] > record["checked"]:
                errors.append(f"{name}: merged > checked")
    return errors


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=SWEEP_CIRCUITS)
def circuit(request):
    return build_circuit(request.param)


def test_sweep(benchmark, circuit):
    def run():
        return Prover(circuit, nvectors=128, seed=0).sweep()

    result = benchmark(run)
    benchmark.extra_info.update({
        "circuit": circuit.name, "gates": len(circuit.gates),
        "queries": result.stats.queries, "proven": result.stats.proven,
    })


@pytest.mark.parametrize("depth", DEDUP_DEPTHS)
def test_dedup_reduction(benchmark, depth):
    record = benchmark(dedup_record, depth)
    assert record["solutions_after"] + record["merged"] \
        == record["solutions_before"]
    benchmark.extra_info.update({
        "depth": depth, "merged": record["merged"],
        "solutions_before": record["solutions_before"],
    })


def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_prove.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/vectors for CI")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_prove.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        if record["suite"] == "sweep":
            print(f"{record['circuit']:>8}: sweep "
                  f"{record['queries']} queries "
                  f"({record['proven']} proven, "
                  f"{record['refuted']} refuted, "
                  f"{record['unknown']} unknown, "
                  f"{record['conflicts']} conflicts) "
                  f"{record['wall_s'] * 1e3:.2f}ms")
        else:
            print(f"{record['circuit']:>8}: dedup "
                  f"{record['solutions_before']} -> "
                  f"{record['solutions_after']} candidates "
                  f"({record['merged']} proven-equivalent merged, "
                  f"{record['wall_s'] * 1e3:.2f}ms)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
