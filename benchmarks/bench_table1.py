"""Table 1 regeneration: exact multiple stuck-at fault diagnosis.

One benchmark per (circuit, fault-count) cell of the paper's Table 1.
Timing is the benchmark value; diagnosis resolution (# tuples, # sites,
whether the injected set was recovered / masked) lands in
``extra_info`` so the JSON export carries the full table row.

Full averaged tables: ``python -m repro.cli table1``.
"""

import pytest

from conftest import BUDGET, TABLE_CIRCUITS, VECTORS
from repro.bench.workloads import stuck_at_instance
from repro.diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                            matches_truth)

FAULT_COUNTS = (1, 2, 3, 4)


@pytest.mark.parametrize("num_faults", FAULT_COUNTS)
@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_table1_cell(benchmark, prepared_stuck_at, name, num_faults):
    prepared = prepared_stuck_at[name]
    workload, patterns = stuck_at_instance(prepared, num_faults,
                                           trial=0,
                                           num_vectors=VECTORS)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=num_faults,
                             time_budget=BUDGET)

    def run():
        engine = IncrementalDiagnoser(workload.impl, prepared.netlist,
                                      patterns, config)
        return engine.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "circuit": name,
        "lines": prepared.num_lines,
        "sequential": prepared.is_sequential,
        "faults_injected": num_faults,
        "tuples": len(result.solutions),
        "sites": len(result.distinct_sites()),
        "min_tuple_size": result.min_size,
        "recovered": any(matches_truth(s, workload.truth)
                         for s in result.solutions),
        "masked": bool(result.solutions
                       and result.min_size < num_faults),
        "nodes": result.stats.nodes,
        "truncated": result.stats.truncated,
    })
