"""Shared configuration for the benchmark harness.

Scale and effort knobs come from the environment so the same files serve
quick CI runs and full paper-style regeneration:

* ``REPRO_BENCH_SCALE``   — suite size multiplier (default 0.35)
* ``REPRO_BENCH_VECTORS`` — vectors per trial (default 768)
* ``REPRO_BENCH_BUDGET``  — seconds per diagnosis run (default 30)

The canonical paper-style tables (averaged over trials, formatted like
the paper) are produced by ``python -m repro.cli table1`` / ``table2``;
these pytest-benchmark files time one representative trial per cell and
attach the resolution numbers as ``extra_info``.
"""

import os

import pytest

from repro.bench.workloads import prepare_design_error, prepare_stuck_at
from repro.circuit import generators

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
VECTORS = int(os.environ.get("REPRO_BENCH_VECTORS", "768"))
BUDGET = float(os.environ.get("REPRO_BENCH_BUDGET", "30"))

#: circuits benched per table (a representative cross-section; pass
#: REPRO_BENCH_SCALE to resize them).
TABLE_CIRCUITS = ("c17", "r432", "r499", "r880", "r1355", "r6288",
                  "s27", "q510", "q1238")


@pytest.fixture(scope="session")
def suite_by_name():
    circuits = {c.name: c for c in generators.benchmark_suite(SCALE)}
    return circuits


@pytest.fixture(scope="session")
def prepared_stuck_at(suite_by_name):
    return {name: prepare_stuck_at(suite_by_name[name])
            for name in TABLE_CIRCUITS}


@pytest.fixture(scope="session")
def prepared_design_error(suite_by_name):
    return {name: prepare_design_error(suite_by_name[name])
            for name in TABLE_CIRCUITS}
