"""Static testability benchmarks (``BENCH_testability.json``).

Two suites:

* ``scoap`` — runtime and cost extremes of the SCOAP
  controllability/observability fixed points plus the static
  untestable-fault identification (:mod:`repro.analyze.testability`)
  across the generator circuits.
* ``podem`` — a planted hard-fault workload.  Each base circuit gets
  function-preserving redundancy gadgets ``OR(stem, AND(u, NOT u))``
  with ``u = XOR(x1..x6)`` over fresh inputs: the gadget output is
  constant 0, its stuck-at-0 is statically untestable (exciting it
  needs ``u=1`` and ``u=0`` at once), and proving that by search costs
  an unguided PODEM a walk over the 6-input XOR cone.  The suite runs
  :func:`repro.tgen.deterministic_patterns_with_stats` guided
  (SCOAP-costed backtrace + static untestable pre-check) and unguided
  over the identical fault list and demands strictly fewer total
  backtracks, no new aborts, and at least one zero-search static
  classification.  Every statically-untestable verdict is cross-checked
  by SAT: tying the line to its stuck value must leave the circuit
  provably equivalent (:func:`repro.analyze.prove_equivalent` PROVEN).

The schema check enforces structure and the guidance/soundness
invariants, never timings; the committed payload is regenerated on a
quiet machine.  Run as a script
(``python benchmarks/bench_testability.py [--smoke]``) it regenerates
``BENCH_testability.json``; under pytest it validates the smoke payload
end to end.
"""

import random
import time

from conftest import SCALE
from repro.analyze.dataflow import netlist_facts
from repro.analyze.prove import prove_equivalent
from repro.analyze.testability import INF
from repro.circuit import GateType, Netlist, generators
from repro.circuit.lines import LineTable
from repro.faults.models import apply_correction, stuck_at_correction
from repro.tgen import deterministic_patterns_with_stats

SCOAP_CIRCUITS = ("c17", "rca8", "alu4", "c432")
SMOKE_SCOAP_CIRCUITS = ("c17", "rca8")
PODEM_CIRCUITS = (("c17", 3), ("rca8", 3))
SMOKE_PODEM_CIRCUITS = (("c17", 1),)
SCHEMA = "repro.bench_testability/1"
GADGET_WIDTH = 6
BACKTRACK_LIMIT = 120


def build_circuit(name: str) -> Netlist:
    if name == "alu4":
        return generators.alu(4)
    if name == "rca8":
        return generators.ripple_carry_adder(8)
    if name == "c432":
        return generators.by_name("r432", scale=SCALE)
    return generators.by_name(name, scale=SCALE)


def plant_gadget(nl: Netlist, stem: int, tag: str) -> int:
    """OR a fresh constant-0 redundancy onto ``stem``; returns its root.

    The root ``g = AND(u, NOT u)`` is identically 0, so
    ``OR(stem, g) == stem`` and the circuit function is preserved —
    but ``g`` stuck-at-0 is a redundancy whose untestability an
    unguided PODEM can only establish by exhausting the XOR cone.
    """
    u = nl.add_input(nl.fresh_name(f"{tag}_x0"))
    for i in range(1, GADGET_WIDTH):
        x = nl.add_input(nl.fresh_name(f"{tag}_x{i}"))
        u = nl.add_gate(nl.fresh_name(f"{tag}_u{i}"), GateType.XOR,
                        [u, x])
    nu = nl.add_gate(nl.fresh_name(f"{tag}_nu"), GateType.NOT, [u])
    g = nl.add_gate(nl.fresh_name(f"{tag}_g"), GateType.AND, [u, nu])
    nl.insert_binary_on_stem(stem, GateType.OR, g,
                             name=nl.fresh_name(f"{tag}_or"))
    return g


def plant_workload(name: str, gadgets: int, seed: int = 11) -> Netlist:
    nl = build_circuit(name)
    rng = random.Random(seed)
    live = nl.live_set()
    stems = [g.index for g in nl.gates
             if g.index in live and g.gtype not in
             (GateType.CONST0, GateType.CONST1, GateType.DFF)]
    for k, stem in enumerate(rng.sample(stems, gadgets)):
        plant_gadget(nl, stem, f"gdt{k}")
    nl.name = f"{name}+{gadgets}gdt"
    return nl


def scoap_record(name: str) -> dict:
    nl = build_circuit(name)
    t0 = time.perf_counter()
    facts = netlist_facts(nl)
    tb = facts.testability()
    costs = facts.scoap()
    scoap_s = time.perf_counter() - t0
    finite_cc = [c for pair in costs.pairs() for c in pair if c < INF]
    finite_co = [c for c in costs.co if c < INF]
    return {
        "suite": "scoap", "circuit": nl.name, "gates": len(nl.gates),
        "scoap_s": scoap_s,
        "max_cc": max(finite_cc, default=0),
        "max_co": max(finite_co, default=0),
        "fault_sites": len(tb.sites),
        "static_untestable": len(tb.untestable),
    }


def sat_confirm(nl: Netlist) -> tuple:
    """SAT-check every statically-untestable stuck-at on ``nl``.

    Tying the faulty line to its stuck value must be a no-op; returns
    ``(checked, confirmed)`` PROVEN counts.
    """
    table = LineTable(nl)
    keys = sorted(netlist_facts(nl).testability()
                  .untestable_line_keys(table))
    confirmed = 0
    for line, value in keys:
        tied = nl.copy()
        apply_correction(tied, LineTable(tied),
                         stuck_at_correction(table, line, value))
        verdict = prove_equivalent(nl, tied)
        if verdict.status.name == "PROVEN":
            confirmed += 1
    return len(keys), confirmed


def podem_record(name: str, gadgets: int, seed: int = 11) -> dict:
    nl = plant_workload(name, gadgets, seed)
    runs = {}
    for mode, guide in (("guided", True), ("unguided", False)):
        t0 = time.perf_counter()
        _, stats = deterministic_patterns_with_stats(
            nl.copy(), seed=0, backtrack_limit=BACKTRACK_LIMIT,
            guide=guide)
        runs[mode] = stats.to_dict()
        runs[mode]["tgen_s"] = time.perf_counter() - t0
    checked, confirmed = sat_confirm(nl)
    return {
        "suite": "podem", "circuit": nl.name, "gates": len(nl.gates),
        "gadgets": gadgets, "backtrack_limit": BACKTRACK_LIMIT,
        "guided": runs["guided"], "unguided": runs["unguided"],
        "sat_checked": checked, "sat_confirmed": confirmed,
    }


def run_suites(smoke: bool = False) -> dict:
    scoap_names = SMOKE_SCOAP_CIRCUITS if smoke else SCOAP_CIRCUITS
    podem_specs = SMOKE_PODEM_CIRCUITS if smoke else PODEM_CIRCUITS
    records = [scoap_record(name) for name in scoap_names]
    records += [podem_record(name, gadgets)
                for name, gadgets in podem_specs]
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    records = payload.get("records", ())
    if not records:
        errors.append("no records")
    zero_search = 0
    for record in records:
        suite = record.get("suite")
        circuit = record.get("circuit")
        if suite == "scoap":
            for key in ("circuit", "gates", "scoap_s", "max_cc",
                        "max_co", "fault_sites", "static_untestable"):
                if key not in record:
                    errors.append(f"scoap/{circuit}: missing {key}")
            continue
        if suite != "podem":
            errors.append(f"unknown suite {suite!r}")
            continue
        for key in ("circuit", "gates", "gadgets", "guided", "unguided",
                    "sat_checked", "sat_confirmed"):
            if key not in record:
                errors.append(f"podem/{circuit}: missing {key}")
        guided = record.get("guided", {})
        unguided = record.get("unguided", {})
        if guided.get("faults") != unguided.get("faults"):
            errors.append(f"podem/{circuit}: guided and unguided ran "
                          "different fault lists")
        if not guided.get("backtracks", 0) < unguided.get("backtracks", 0):
            errors.append(f"podem/{circuit}: guidance must strictly "
                          "reduce total backtracks")
        if guided.get("aborted", 0) > unguided.get("aborted", 0):
            errors.append(f"podem/{circuit}: guidance introduced aborts")
        if record.get("sat_confirmed") != record.get("sat_checked"):
            errors.append(f"podem/{circuit}: a statically-untestable "
                          "verdict failed its SAT cross-check")
        if record.get("sat_checked", 0) < record.get("gadgets", 0):
            errors.append(f"podem/{circuit}: every planted redundancy "
                          "must be statically identified")
        zero_search += guided.get("static_untestable", 0)
    if records and not zero_search:
        errors.append("no record classified a fault untestable with "
                      "zero search")
    return errors


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []
    for record in payload["records"]:
        if record["suite"] != "podem":
            continue
        # the planted redundancy is found without a single backtrack
        assert record["guided"]["static_untestable"] >= record["gadgets"]


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_testability.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/gadgets for CI")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_testability.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        if record["suite"] == "scoap":
            print(f"{record['circuit']:>12}: scoap {record['scoap_s']*1e3:.1f}ms "
                  f"max cc {record['max_cc']} co {record['max_co']} "
                  f"untestable {record['static_untestable']}")
        else:
            g, u = record["guided"], record["unguided"]
            print(f"{record['circuit']:>12}: backtracks "
                  f"{g['backtracks']} guided vs {u['backtracks']} "
                  f"unguided, aborts {g['aborted']} vs {u['aborted']}, "
                  f"{g['static_untestable']} static skips, "
                  f"SAT {record['sat_confirmed']}/{record['sat_checked']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
