"""Ablation benches for the design choices of §3.

Times the same 3-error DEDC workload under each variant: heuristic 2
off, heuristic 3 off, pure DFS, pure BFS, and candidate-fraction
settings — quantifying the paper's arguments for each mechanism.
"""

from dataclasses import replace

import pytest

from conftest import BUDGET, VECTORS
from repro.bench.workloads import design_error_instance
from repro.diagnose import (DiagnosisConfig, HLevel,
                            IncrementalDiagnoser, Mode)

BASE = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False, max_errors=4,
                       time_budget=BUDGET)

VARIANTS = {
    "paper": BASE,
    "no_h2": replace(BASE, schedule=[HLevel(h.h1, 0.0, h.h3)
                                     for h in BASE.ladder(3)]),
    "no_h3": replace(BASE, schedule=[HLevel(h.h1, h.h2, 0.0)
                                     for h in BASE.ladder(3)]),
    "dfs": replace(BASE, traversal="dfs"),
    "bfs": replace(BASE, traversal="bfs"),
    "candidates_5pct": replace(BASE, candidate_fraction=0.05),
    "candidates_100pct": replace(BASE, candidate_fraction=1.0),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("name", ["r432", "r880"])
def test_ablation_variant(benchmark, prepared_design_error, name,
                          variant):
    prepared = prepared_design_error[name]
    workload, patterns = design_error_instance(prepared, 3, trial=0,
                                               num_vectors=VECTORS)
    config = VARIANTS[variant]

    def run():
        return IncrementalDiagnoser(prepared.netlist, workload.impl,
                                    patterns, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "circuit": name,
        "variant": variant,
        "solved": result.found,
        "nodes": result.stats.nodes,
    })
