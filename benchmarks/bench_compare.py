"""Engine-vs-SAT timing on identical workloads.

Not a paper table: quantifies the cost of the SAT cross-check relative
to the simulation-based engine, per fault count.
"""

import pytest

from conftest import BUDGET, VECTORS
from repro.bench.workloads import stuck_at_instance
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.diagnose.satdiag import SatDiagnoser


@pytest.mark.parametrize("engine_kind", ["incremental", "sat"])
@pytest.mark.parametrize("num_faults", (1, 2))
def test_compare_engines(benchmark, prepared_stuck_at, engine_kind,
                         num_faults):
    prepared = prepared_stuck_at["r432"]
    workload, patterns = stuck_at_instance(prepared, num_faults,
                                           trial=0,
                                           num_vectors=VECTORS)

    if engine_kind == "incremental":
        def run():
            config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                     max_errors=num_faults,
                                     time_budget=BUDGET)
            return IncrementalDiagnoser(workload.impl, prepared.netlist,
                                        patterns, config).run()
    else:
        def run():
            return SatDiagnoser(workload.impl, prepared.netlist,
                                patterns, max_faults=num_faults,
                                time_budget=BUDGET).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "engine": engine_kind,
        "faults": num_faults,
        "solutions": len(result.solutions),
    })
