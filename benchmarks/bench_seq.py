"""Sequential-analysis benchmarks (the ``BENCH_seq.json`` suite).

Three measurements:

* **fixpoint** — wall time and sweep count of the reset-state ternary
  fixpoint (:func:`repro.analyze.seq.reset_fixpoint`).  The planted
  ``stuck`` workloads carry registers that provably never leave their
  reset value, so the record pins how many the fixpoint recovers;
  random sequential circuits measure convergence on irredundant state.
* **scorr** — k-induction register/signal correspondence
  (:class:`repro.analyze.seq.SeqProver`): candidate counts, base/step
  query accounting and the proven/refuted/unknown split.  The planted
  ``twinreg`` workloads duplicate every state bit through a hash-blind
  re-encoding of its next-state function, so each redundancy costs a
  real induction proof.  Every candidate must land in exactly one of
  proven/refuted/unknown — the validator enforces it.
* **prescreen** — the sequential diagnosis pre-screen
  (``DiagnosisConfig(seq_prescreen=True)`` on
  :class:`repro.diagnose.timeframe.TimeFrameDiagnoser`): node counts
  and dropped-suspect counts with the screen on vs off on a planted
  workload with provably masked logic.  The validator requires
  ``identical: true`` — the screen must not change the solution list —
  and a nonzero drop count.

Run as a script (``python benchmarks/bench_seq.py [--smoke]``) it
regenerates ``BENCH_seq.json``; under pytest-benchmark it times the
same workloads.
"""

import time

import pytest

from conftest import SCALE
from repro.analyze.seq import SeqProver, reset_fixpoint
from repro.circuit import GateType, Netlist, generators
from repro.diagnose import DiagnosisConfig
from repro.diagnose.timeframe import TimeFrameDiagnoser, random_sequences

FIXPOINT_CIRCUITS = ("s27", "stuck4", "stuck16", "rseq6")
SMOKE_FIXPOINT_CIRCUITS = ("s27", "stuck4")
SCORR_CIRCUITS = ("s27", "twinreg2", "twinreg6", "rseq6")
SMOKE_SCORR_CIRCUITS = ("s27", "twinreg2")
PRESCREEN_CONES = (2, 6)
SMOKE_PRESCREEN_CONES = (2,)
SCHEMA = "repro.bench_seq/1"


def planted_stuck(count: int = 4) -> Netlist:
    """``count`` registers that provably never leave reset.

    Each register feeds back through ``AND(r, x)`` — from reset 0 the
    AND can never produce 1, so the whole state is sequentially stuck
    at 0 while staying combinationally unconstrained (the full-scan
    view sees free state bits).  An XOR tail keeps everything live.
    """
    nl = Netlist(f"stuck{count}")
    xs = [nl.add_input(f"x{k}") for k in range(count)]
    taps = []
    for k in range(count):
        r = nl.add_gate(f"r{k}", GateType.DFF, [xs[k]])
        d = nl.add_gate(f"d{k}", GateType.AND, [r, xs[k]])
        nl.gates[r].fanin = [d]
        taps.append(nl.add_gate(f"t{k}", GateType.XOR, [r, xs[k]]))
    out = taps[0]
    for k, tap in enumerate(taps[1:], start=1):
        out = nl.add_gate(f"acc{k}", GateType.XOR, [out, tap])
    nl.set_outputs([out])
    nl._dirty()
    return nl


def planted_twin_registers(pairs: int = 2) -> Netlist:
    """``pairs`` state bits, each duplicated through a hash-blind twin.

    Register ``p`` updates from ``XOR(a, q_prev)``; its twin updates
    from the AND/OR decomposition of the same function, so structural
    normalization cannot merge them and every redundant register costs
    an induction proof.  Both start at 0, hence track forever.
    """
    nl = Netlist(f"twinreg{pairs}")
    a = nl.add_input("a")
    b = nl.add_input("b")
    outs = []
    for k in range(pairs):
        p = nl.add_gate(f"p{k}", GateType.DFF, [a])
        q = nl.add_gate(f"q{k}", GateType.DFF, [a])
        dp = nl.add_gate(f"dp{k}", GateType.XOR, [a, p])
        na = nl.add_gate(f"na{k}", GateType.NOT, [a])
        nq = nl.add_gate(f"nq{k}", GateType.NOT, [q])
        t1 = nl.add_gate(f"t1_{k}", GateType.AND, [a, nq])
        t2 = nl.add_gate(f"t2_{k}", GateType.AND, [na, q])
        dq = nl.add_gate(f"dq{k}", GateType.OR, [t1, t2])
        nl.gates[p].fanin = [dp]
        nl.gates[q].fanin = [dq]
        outs.append(nl.add_gate(f"o{k}", GateType.AND, [p, b]))
        outs.append(nl.add_gate(f"u{k}", GateType.OR, [q, b]))
    nl.set_outputs(outs)
    nl._dirty()
    return nl


def planted_masked(cones: int = 2) -> Netlist:
    """Observable core plus ``cones`` provably masked suspect cones.

    Each cone is ``AND(x_k, y_k)`` gated by a register that is
    sequentially stuck at 0, so nothing in the cone can ever reach the
    output from reset — the seq pre-screen must drop it all without
    changing the diagnosis answer (the planted fault sits on the
    observable ``hbuf`` path).
    """
    nl = Netlist(f"masked{cones}")
    h = nl.add_input("h")
    e = nl.add_input("e")
    terms = [nl.add_gate("hbuf", GateType.BUF, [h])]
    for k in range(cones):
        x = nl.add_input(f"x{k}")
        y = nl.add_input(f"y{k}")
        r = nl.add_gate(f"r{k}", GateType.DFF, [x])
        d = nl.add_gate(f"d{k}", GateType.AND, [r, x])
        nl.gates[r].fanin = [d]
        g = nl.add_gate(f"g{k}", GateType.AND, [x, y])
        terms.append(nl.add_gate(f"m{k}", GateType.AND, [g, r]))
    live = nl.add_gate("live", GateType.DFF, [e])
    terms.append(live)
    out = terms[0]
    for k, term in enumerate(terms[1:], start=1):
        out = nl.add_gate(f"or{k}", GateType.OR, [out, term])
    nl.set_outputs([out])
    nl._dirty()
    return nl


def build_circuit(name: str) -> Netlist:
    if name.startswith("stuck"):
        return planted_stuck(count=int(name[len("stuck"):]))
    if name.startswith("twinreg"):
        return planted_twin_registers(pairs=int(name[len("twinreg"):]))
    if name.startswith("rseq"):
        dffs = int(name[len("rseq"):])
        return generators.random_sequential(
            dffs, int(max(20, 10 * dffs * SCALE)), 4, 3, seed=7)
    return generators.by_name(name)


def fixpoint_record(circuit: Netlist) -> dict:
    t0 = time.perf_counter()
    fx = reset_fixpoint(circuit, 0)
    wall = time.perf_counter() - t0
    return {"suite": "fixpoint", "circuit": circuit.name,
            "gates": len(circuit.gates), "dffs": len(circuit.dffs()),
            "iterations": fx.iterations,
            "stuck_registers": len(fx.stuck_registers),
            "seq_constants": len(fx.constants), "wall_s": wall}


def scorr_record(circuit: Netlist, k: int = 2,
                 nvectors: int = 64) -> dict:
    prover = SeqProver(circuit, k=k, nvectors=nvectors, seed=0)
    t0 = time.perf_counter()
    result = prover.sweep()
    wall = time.perf_counter() - t0
    stats = result.stats
    return {"suite": "scorr", "circuit": circuit.name,
            "gates": len(circuit.gates), "dffs": len(circuit.dffs()),
            "k": k, "nvectors": nvectors,
            "constant_candidates": stats.constant_candidates,
            "pair_candidates": stats.pair_candidates,
            "base_queries": stats.base_queries,
            "step_queries": stats.step_queries,
            "proven": stats.proven, "refuted": stats.refuted,
            "unknown": stats.unknown,
            "step_restarts": stats.step_restarts,
            "conflicts": stats.conflicts,
            "proven_classes": len(result.classes),
            "wall_s": wall}


def prescreen_record(cones: int, frames: int = 6,
                     sequences: int = 24) -> dict:
    """Diagnosis with the seq pre-screen on vs off; answers must match."""
    spec = planted_masked(cones)
    device = planted_masked(cones)
    hb = device.index_of("hbuf")
    device.gates[hb].gtype = GateType.CONST1
    device.gates[hb].fanin = []
    device._dirty()
    seqs = random_sequences(spec, sequences, frames, seed=1)

    def solve(config):
        t0 = time.perf_counter()
        result = TimeFrameDiagnoser(spec, device, seqs, frames=frames,
                                    max_faults=2, config=config).run()
        wall = time.perf_counter() - t0
        key = sorted(frozenset(r.signature for r in s.records)
                     for s in result.solutions)
        return result, key, wall

    off, key_off, wall_off = solve(None)
    on, key_on, wall_on = solve(DiagnosisConfig(seq_prescreen=True))
    return {"suite": "prescreen", "circuit": spec.name,
            "gates": len(spec.gates), "frames": frames,
            "solutions": len(on.solutions),
            "identical": key_off == key_on,
            "dropped": on.stats.prescreen_dropped,
            "nodes_off": off.stats.nodes, "nodes_on": on.stats.nodes,
            "wall_off_s": wall_off, "wall_s": wall_on}


def run_suites(smoke: bool = False) -> dict:
    fixpoints = SMOKE_FIXPOINT_CIRCUITS if smoke else FIXPOINT_CIRCUITS
    scorrs = SMOKE_SCORR_CIRCUITS if smoke else SCORR_CIRCUITS
    cones = SMOKE_PRESCREEN_CONES if smoke else PRESCREEN_CONES
    records = [fixpoint_record(build_circuit(name))
               for name in fixpoints]
    records.extend(scorr_record(build_circuit(name),
                                nvectors=32 if smoke else 64)
                   for name in scorrs)
    records.extend(prescreen_record(n) for n in cones)
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    for record in payload.get("records", ()):
        suite = record.get("suite")
        if suite == "fixpoint":
            required = ("circuit", "gates", "dffs", "iterations",
                        "stuck_registers", "seq_constants", "wall_s")
        elif suite == "scorr":
            required = ("circuit", "gates", "dffs", "k", "nvectors",
                        "constant_candidates", "pair_candidates",
                        "base_queries", "step_queries", "proven",
                        "refuted", "unknown", "step_restarts",
                        "conflicts", "proven_classes", "wall_s")
        elif suite == "prescreen":
            required = ("circuit", "gates", "frames", "solutions",
                        "identical", "dropped", "nodes_off", "nodes_on",
                        "wall_off_s", "wall_s")
        else:
            errors.append(f"unknown suite {suite!r}")
            continue
        missing = [key for key in required if key not in record]
        for key in missing:
            errors.append(f"{suite}/{record.get('circuit')}: "
                          f"missing {key}")
        if missing:
            continue
        name = f"{suite}/{record['circuit']}"
        if suite == "fixpoint":
            if record["iterations"] > record["dffs"] + 1:
                errors.append(f"{name}: fixpoint ran past the "
                              "#DFFs + 1 termination bound")
            if record["circuit"].startswith("stuck") \
                    and record["stuck_registers"] != record["dffs"]:
                errors.append(f"{name}: planted stuck registers "
                              "not all recovered")
        if suite == "scorr" and (
                record["proven"] + record["refuted"] + record["unknown"]
                != record["constant_candidates"]
                + record["pair_candidates"]):
            errors.append(f"{name}: proven + refuted + unknown != "
                          "candidates (a verdict was dropped)")
        if suite == "prescreen":
            if not record["identical"]:
                errors.append(f"{name}: pre-screen changed the "
                              "solution list (soundness violation)")
            if record["dropped"] <= 0:
                errors.append(f"{name}: pre-screen dropped nothing "
                              "on the planted masked workload")
    return errors


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=FIXPOINT_CIRCUITS)
def fixpoint_circuit(request):
    return build_circuit(request.param)


def test_fixpoint(benchmark, fixpoint_circuit):
    result = benchmark(reset_fixpoint, fixpoint_circuit, 0)
    benchmark.extra_info.update({
        "circuit": fixpoint_circuit.name,
        "iterations": result.iterations,
        "stuck_registers": len(result.stuck_registers),
    })


@pytest.fixture(scope="module", params=SCORR_CIRCUITS)
def scorr_circuit(request):
    return build_circuit(request.param)


def test_scorr_sweep(benchmark, scorr_circuit):
    def run():
        return SeqProver(scorr_circuit, k=2, nvectors=64, seed=0).sweep()

    result = benchmark(run)
    stats = result.stats
    assert stats.proven + stats.refuted + stats.unknown \
        == stats.constant_candidates + stats.pair_candidates
    benchmark.extra_info.update({
        "circuit": scorr_circuit.name, "proven": stats.proven,
        "classes": len(result.classes),
    })


@pytest.mark.parametrize("cones", PRESCREEN_CONES)
def test_prescreen(benchmark, cones):
    record = benchmark(prescreen_record, cones)
    assert record["identical"]
    assert record["dropped"] > 0
    benchmark.extra_info.update({
        "cones": cones, "dropped": record["dropped"],
        "nodes_off": record["nodes_off"], "nodes_on": record["nodes_on"],
    })


def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_seq.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/vectors for CI")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_seq.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        if record["suite"] == "fixpoint":
            print(f"{record['circuit']:>10}: fixpoint "
                  f"{record['iterations']} sweep(s), "
                  f"{record['stuck_registers']} stuck register(s), "
                  f"{record['seq_constants']} seq constant(s) "
                  f"{record['wall_s'] * 1e3:.2f}ms")
        elif record["suite"] == "scorr":
            print(f"{record['circuit']:>10}: scorr "
                  f"{record['constant_candidates']}+"
                  f"{record['pair_candidates']} candidates, "
                  f"{record['proven']} proven, "
                  f"{record['refuted']} refuted, "
                  f"{record['unknown']} unknown, "
                  f"{record['conflicts']} conflicts "
                  f"{record['wall_s'] * 1e3:.2f}ms")
        else:
            print(f"{record['circuit']:>10}: prescreen "
                  f"dropped {record['dropped']}, nodes "
                  f"{record['nodes_off']} -> {record['nodes_on']}, "
                  f"identical={record['identical']} "
                  f"{record['wall_s'] * 1e3:.2f}ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
