"""Dataflow-analysis benchmarks (the ``BENCH_analyze.json`` suite).

Two measurements per circuit:

* **facts timing** — wall time to materialize each fact section
  (ternary constants, structural hashes, dominators/ODCs, implication
  closure) on a fresh :class:`NetlistFacts`.
* **suspect-set reduction** — how many path-trace-marked suspect lines
  the static pre-screen removes before the per-candidate simulation
  screen runs, on a seeded two-fault workload.

Run as a script (``python benchmarks/bench_analyze.py [--smoke]``) it
regenerates ``BENCH_analyze.json``; under pytest-benchmark it times the
same workloads per circuit.
"""

import time

import pytest

from conftest import SCALE
from repro.analyze.dataflow import NetlistFacts
from repro.circuit import GateType, Netlist, generators
from repro.diagnose import DiagnosisState, path_trace_counts
from repro.diagnose.pathtrace import marked_lines
from repro.diagnose.screening import prescreen_suspects
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet, output_rows, simulate

CIRCUITS = ("c17", "r432", "r880", "r1355", "masked24")
SMOKE_CIRCUITS = ("c17", "masked24")
VECTORS = 512
SCHEMA = "repro.bench_analyze/1"


def masked_parity_chain(width: int = 8, depth: int = 24) -> Netlist:
    """Parity chain with one ODC-masked AND cone per stage.

    The masked gates sit behind a dominator whose side input is a
    buffered constant 0, yet every failing XOR path drags them into the
    path-trace suspect set — the workload the static pre-screen exists
    to prune.  ISCAS-style circuits are irredundant, so they measure the
    pre-screen's overhead; this one measures its payoff.
    """
    nl = Netlist(f"masked{depth}")
    xs = [nl.add_input(f"x{i}") for i in range(width)]
    c0 = nl.add_gate("c0", GateType.CONST0, [])
    buf = nl.add_gate("buf", GateType.BUF, [c0])
    acc = xs[0]
    for d in range(depth):
        mid = nl.add_gate(f"mid{d}", GateType.NOT, [xs[d % width]])
        dom = nl.add_gate(f"dom{d}", GateType.AND, [mid, buf])
        mix = nl.add_gate(f"mix{d}", GateType.XOR,
                          [acc, xs[(d + 1) % width]])
        acc = nl.add_gate(f"acc{d}", GateType.XOR, [dom, mix])
    nl.set_outputs([acc])
    return nl


def build_circuit(name: str) -> Netlist:
    if name.startswith("masked"):
        return masked_parity_chain(depth=int(name[len("masked"):]))
    return generators.by_name(name, scale=SCALE)


def facts_record(circuit) -> dict:
    """Time each fact section on a fresh digest of ``circuit``."""
    record = {"suite": "facts", "circuit": circuit.name,
              "gates": len(circuit.gates)}
    facts = NetlistFacts(circuit)
    for key, section in (
            ("constants_s", facts.constants),
            ("hashes_s", facts.duplicate_groups),
            ("dominators_s", lambda: facts.blocked_signals()),
            ("implications_s", facts.implications)):
        t0 = time.perf_counter()
        section()
        record[key] = time.perf_counter() - t0
    record["implications"] = facts.implications().edge_count()
    record["known_constants"] = len(facts.known_constants(deep=True))
    record["odc_blocked"] = len(facts.blocked_signals(deep=True))
    return record


def prescreen_record(circuit, nvectors: int = VECTORS,
                     seed: int = 1) -> dict:
    """Suspect counts before/after the static pre-screen."""
    workload = inject_stuck_at_faults(circuit, 2, seed=seed)
    patterns = PatternSet.random(circuit.num_inputs, nvectors, seed=0)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(circuit, patterns, device_out)
    counts = path_trace_counts(state, 24, seed)
    lines = marked_lines(counts)
    t0 = time.perf_counter()
    kept, dropped = prescreen_suspects(state, lines, deep=True)
    wall = time.perf_counter() - t0
    return {"suite": "prescreen", "circuit": circuit.name,
            "gates": len(circuit.gates), "nvectors": nvectors,
            "suspects_before": len(lines), "suspects_after": len(kept),
            "dropped": dropped, "wall_s": wall}


def run_suites(smoke: bool = False) -> dict:
    names = SMOKE_CIRCUITS if smoke else CIRCUITS
    records = []
    for name in names:
        circuit = build_circuit(name)
        records.append(facts_record(circuit))
        records.append(prescreen_record(
            circuit, nvectors=128 if smoke else VECTORS))
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    for record in payload.get("records", ()):
        suite = record.get("suite")
        if suite == "facts":
            required = ("circuit", "gates", "constants_s", "hashes_s",
                        "dominators_s", "implications_s", "implications")
        elif suite == "prescreen":
            required = ("circuit", "gates", "suspects_before",
                        "suspects_after", "dropped", "wall_s")
        else:
            errors.append(f"unknown suite {suite!r}")
            continue
        for key in required:
            if key not in record:
                errors.append(f"{suite}/{record.get('circuit')}: "
                              f"missing {key}")
        if (suite == "prescreen" and "suspects_after" in record
                and record["suspects_after"] + record.get("dropped", 0)
                != record.get("suspects_before")):
            errors.append(f"prescreen/{record.get('circuit')}: "
                          "kept + dropped != before")
    return errors


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=CIRCUITS)
def circuit(request):
    return build_circuit(request.param)


def test_facts_digest(benchmark, circuit):
    def build():
        facts = NetlistFacts(circuit)
        facts.summary(deep=True)
        return facts

    facts = build()  # warm result for extra_info
    benchmark(build)
    benchmark.extra_info.update({
        "circuit": circuit.name, "gates": len(circuit.gates),
        "implications": facts.implications().edge_count(),
    })


def test_prescreen_reduction(benchmark, circuit):
    workload = inject_stuck_at_faults(circuit, 2, seed=1)
    patterns = PatternSet.random(circuit.num_inputs, VECTORS, seed=0)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(circuit, patterns, device_out)
    counts = path_trace_counts(state, 24, 1)
    lines = marked_lines(counts)
    kept, dropped = benchmark(prescreen_suspects, state, lines,
                              deep=True)
    assert len(kept) + dropped == len(lines)
    benchmark.extra_info.update({
        "circuit": circuit.name, "suspects_before": len(lines),
        "suspects_after": len(kept),
    })


def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_analyze.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/vectors for CI")
    parser.add_argument("--out", default="BENCH_analyze.json")
    args = parser.parse_args(argv)
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        if record["suite"] == "facts":
            print(f"{record['circuit']:>8}: facts "
                  f"const={record['constants_s'] * 1e3:.2f}ms "
                  f"hash={record['hashes_s'] * 1e3:.2f}ms "
                  f"dom={record['dominators_s'] * 1e3:.2f}ms "
                  f"impl={record['implications_s'] * 1e3:.2f}ms "
                  f"({record['implications']} implications)")
        else:
            print(f"{record['circuit']:>8}: prescreen "
                  f"{record['suspects_before']} -> "
                  f"{record['suspects_after']} suspects "
                  f"({record['dropped']} dropped, "
                  f"{record['wall_s'] * 1e3:.2f}ms)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
