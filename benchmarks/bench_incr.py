"""Incremental fact-maintenance benchmarks (``BENCH_incr.json``).

One suite, ``maintain``: apply a seeded sequence of journalled edits
(gate-type swaps, safe fanin rewires, inverter insertions) to a circuit
and keep its dataflow facts — ternary constants, structural hashes,
implication closure, observability/dominator blocking — correct after
*every* edit, two ways:

* **warm** — :func:`repro.analyze.dataflow.netlist_facts` repairs the
  cached bundle from the edit-journal delta
  (:func:`repro.analyze.incremental.warm_facts`).
* **scratch** — a fresh :class:`~repro.analyze.dataflow.NetlistFacts`
  is materialized from nothing after each edit (the pre-journal
  behaviour of the blanket ``_dirty()``).

Both paths replay the identical edit sequence (same seed) and the final
fact state is asserted equal, so the reported speedup compares equal
work.  The schema check enforces structure and the equal-work
invariants, never timings (shared CI runners make wall-clock assertions
meaningless); the committed payload is regenerated on a quiet machine.

Run as a script (``python benchmarks/bench_incr.py [--smoke]``) it
regenerates ``BENCH_incr.json``; under pytest it validates the smoke
payload end to end.
"""

import random
import time

from conftest import SCALE
from repro.analyze.dataflow import FACTS_CACHE, NetlistFacts, netlist_facts
from repro.circuit import GateType, Netlist, generators

CIRCUITS = ("c432", "alu4", "rca8")
SMOKE_CIRCUITS = ("c17", "rca8")
EDITS = 100
SMOKE_EDITS = 20
SCHEMA = "repro.bench_incr/1"

_UNARY_POOL = (GateType.BUF, GateType.NOT)
_MULTI_POOL = (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
               GateType.XOR, GateType.XNOR)


def build_circuit(name: str) -> Netlist:
    if name == "alu4":
        return generators.alu(4)
    if name == "rca8":
        return generators.ripple_carry_adder(8)
    if name == "c432":
        return generators.by_name("r432", scale=SCALE)
    return generators.by_name(name, scale=SCALE)


def apply_random_edit(rng: random.Random, nl: Netlist) -> None:
    """One journalled, acyclicity-preserving mutation."""
    editable = [g.index for g in nl.gates
                if g.gtype not in (GateType.INPUT, GateType.CONST0,
                                   GateType.CONST1, GateType.DFF)]
    while True:
        target = rng.choice(editable)
        gate = nl.gates[target]
        op = rng.randrange(3)
        if op == 0:
            pool = _UNARY_POOL if len(gate.fanin) == 1 else _MULTI_POOL
            choices = [t for t in pool if t is not gate.gtype]
            nl.set_gate_type(target, rng.choice(choices))
            return
        if op == 1:
            cone = nl.fanout_cone(target)
            sources = [g.index for g in nl.gates
                       if g.index not in cone and g.index != target]
            pin = rng.randrange(len(gate.fanin))
            src = rng.choice(sources)
            if src == gate.fanin[pin]:
                continue  # no-op rewire: journal records nothing
            nl.replace_fanin_pin(target, pin, src)
            return
        pin = rng.randrange(len(gate.fanin))
        nl.insert_gate_on_branch(target, pin, GateType.NOT)
        return


def materialize(facts: NetlistFacts) -> tuple:
    """Touch every benchmarked fact section; return a comparable state."""
    constants = dict(facts.constants())
    groups = facts.duplicate_groups()
    implications = facts.implications().edge_count()
    blocked = facts.blocked_signals(deep=True)
    return (constants, groups, implications, frozenset(blocked))


def maintain_record(name: str, edits: int, seed: int = 7) -> dict:
    """Warm-vs-scratch fact maintenance over one edit sequence."""
    warm_nl = build_circuit(name)
    scratch_nl = build_circuit(name)
    # Both paths start from materialized facts (the diagnosis root).
    FACTS_CACHE.reset()
    materialize(netlist_facts(warm_nl))
    materialize(NetlistFacts(scratch_nl))
    FACTS_CACHE.reset()

    rng = random.Random(seed)
    warm_s = 0.0
    warm_state = None
    for _ in range(edits):
        apply_random_edit(rng, warm_nl)
        t0 = time.perf_counter()
        warm_state = materialize(netlist_facts(warm_nl))
        warm_s += time.perf_counter() - t0
    reused = FACTS_CACHE.facts_reused
    delta_edits = FACTS_CACHE.delta_edits

    rng = random.Random(seed)
    scratch_s = 0.0
    scratch_state = None
    for _ in range(edits):
        apply_random_edit(rng, scratch_nl)
        t0 = time.perf_counter()
        scratch_state = materialize(NetlistFacts(scratch_nl))
        scratch_s += time.perf_counter() - t0

    assert warm_state == scratch_state, \
        f"{name}: warm facts diverged from scratch facts"
    return {
        "suite": "maintain", "circuit": warm_nl.name,
        "gates": len(warm_nl.gates), "edits": edits, "seed": seed,
        "facts_reused": reused, "delta_edits": delta_edits,
        "warm_s": warm_s, "scratch_s": scratch_s,
        "warm_per_edit_ms": warm_s / edits * 1e3,
        "scratch_per_edit_ms": scratch_s / edits * 1e3,
        "speedup": (scratch_s / warm_s) if warm_s > 0 else 0.0,
    }


def run_suites(smoke: bool = False) -> dict:
    names = SMOKE_CIRCUITS if smoke else CIRCUITS
    edits = SMOKE_EDITS if smoke else EDITS
    records = [maintain_record(name, edits) for name in names]
    return {"schema": SCHEMA, "smoke": smoke, "records": records}


def validate_payload(payload: dict) -> list:
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA}")
    records = payload.get("records", ())
    if not records:
        errors.append("no records")
    for record in records:
        if record.get("suite") != "maintain":
            errors.append(f"unknown suite {record.get('suite')!r}")
            continue
        for key in ("circuit", "gates", "edits", "seed", "facts_reused",
                    "delta_edits", "warm_s", "scratch_s", "speedup"):
            if key not in record:
                errors.append(f"maintain/{record.get('circuit')}: "
                              f"missing {key}")
        circuit = record.get("circuit")
        if record.get("facts_reused", 0) > record.get("edits", 0):
            errors.append(f"maintain/{circuit}: more warm repairs than "
                          "edit steps")
        if record.get("delta_edits", 0) < record.get("facts_reused", 1):
            errors.append(f"maintain/{circuit}: every warm repair must "
                          "replay at least one journal edit")
    return errors


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_bench_payload_schema():
    payload = run_suites(smoke=True)
    assert validate_payload(payload) == []
    for record in payload["records"]:
        # the repair path must actually carry the maintenance load
        assert record["facts_reused"] == record["edits"]


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_incr.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced circuits/edits for CI")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing payload and exit")
    parser.add_argument("--out", default="BENCH_incr.json")
    args = parser.parse_args(argv)
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            errors = validate_payload(json.load(fh))
        for err in errors:
            print(f"schema: {err}")
        print(f"{args.check}: {'FAIL' if errors else 'ok'}")
        return 2 if errors else 0
    payload = run_suites(smoke=args.smoke)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"schema: {err}")
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for record in payload["records"]:
        print(f"{record['circuit']:>10}: {record['edits']} edits "
              f"warm {record['warm_per_edit_ms']:.2f}ms/edit vs "
              f"scratch {record['scratch_per_edit_ms']:.2f}ms/edit "
              f"-> {record['speedup']:.1f}x "
              f"({record['facts_reused']} repairs, "
              f"{record['delta_edits']} journal edits)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
