"""PPSFP fault simulation against brute-force fault injection."""

import numpy as np
import pytest

from repro.circuit import LineTable, generators
from repro.sim import (FaultSimulator, PatternSet, SimFault, all_faults,
                       output_rows, popcount, simulate)
from repro.sim.compare import failing_vector_mask


def brute_force_mask(netlist, table, fault, patterns):
    """Inject the fault structurally and compare full simulations."""
    mutated = netlist.copy()
    line = table[fault.line]
    if line.is_stem:
        mutated.tie_stem_to_constant(line.driver, fault.value)
    else:
        mutated.tie_branch_to_constant(line.sink, line.pin, fault.value)
    good = output_rows(netlist, simulate(netlist, patterns))
    bad = output_rows(mutated, simulate(mutated, patterns))
    return failing_vector_mask(good, bad, patterns.nbits)


@pytest.mark.parametrize("name", ["c17", "r432"])
def test_detection_masks_match_brute_force(name):
    circuit = generators.by_name(name, scale=0.25)
    table = LineTable(circuit)
    patterns = PatternSet.random(circuit.num_inputs, 192, seed=9)
    fsim = FaultSimulator(circuit, patterns, table)
    for fault in all_faults(table):
        got = fsim.detection_mask(fault)
        want = brute_force_mask(circuit, table, fault, patterns)
        assert np.array_equal(got, want), table.describe(fault.line)


def test_all_faults_count(c17):
    table = LineTable(c17)
    assert len(all_faults(table)) == 2 * 17


def test_coverage_and_run(c17):
    table = LineTable(c17)
    patterns = PatternSet.exhaustive(5)
    fsim = FaultSimulator(c17, patterns, table)
    faults = all_faults(table)
    # exhaustive vectors detect every irredundant fault of c17 (c17 has
    # no redundancy)
    assert fsim.coverage(faults) == 1.0
    masks = fsim.run(faults)
    assert len(masks) == len(faults)
    assert all(popcount(m) > 0 for m in masks.values())
    dropped = fsim.run(faults, drop_detected=True)
    assert len(dropped) == len(faults)


def test_sparse_vectors_miss_faults(c17):
    table = LineTable(c17)
    patterns = PatternSet.from_vectors([[0, 0, 0, 0, 0]])
    fsim = FaultSimulator(c17, patterns, table)
    assert fsim.coverage(all_faults(table)) < 1.0


def test_detects_boolean(c17):
    table = LineTable(c17)
    patterns = PatternSet.exhaustive(5)
    fsim = FaultSimulator(c17, patterns, table)
    fault = SimFault(table.stem(c17.index_of("22")).index, 0)
    assert fsim.detects(fault)
