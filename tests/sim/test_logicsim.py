"""Bit-parallel simulation against the scalar oracle; incremental
propagation against full re-simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import GateType, Netlist, generators
from repro.circuit.gatetypes import eval_scalar
from repro.errors import SimulationError
from repro.sim import (PatternSet, Simulator, lookup, output_rows,
                       propagate, simulate)
from repro.sim.packing import unpack_bits


def scalar_reference(netlist, vector_bits):
    """Slow per-vector evaluation used as the oracle."""
    values = {}
    pis = netlist.inputs
    for row, pi in enumerate(pis):
        values[pi] = int(vector_bits[row])
    for idx in netlist.topo_order():
        gate = netlist.gates[idx]
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype is GateType.CONST0:
            values[idx] = 0
        elif gate.gtype is GateType.CONST1:
            values[idx] = 1
        elif gate.gtype is GateType.DFF:
            values[idx] = 0
        else:
            values[idx] = eval_scalar(gate.gtype,
                                      [values[s] for s in gate.fanin])
    return values


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_simulate_matches_scalar_oracle(seed):
    circuit = generators.random_dag(5, 40, 4, seed=seed)
    patterns = PatternSet.random(5, 70, seed=seed)
    values = simulate(circuit, patterns)
    bits = unpack_bits(values, patterns.nbits)
    for v in (0, 17, 69):
        ref = scalar_reference(circuit, patterns.vector(v))
        for idx in circuit.live_set():
            assert bits[idx, v] == ref[idx], circuit.gates[idx].name


def test_simulate_input_count_checked(c17):
    with pytest.raises(SimulationError, match="inputs"):
        simulate(c17, PatternSet.random(3, 64))


def test_constants_simulate(patterns256=None):
    nl = Netlist("k")
    a = nl.add_input("a")
    zero = nl.add_gate("z", GateType.CONST0)
    one = nl.add_gate("o", GateType.CONST1)
    g = nl.add_gate("g", GateType.AND, [a, one])
    h = nl.add_gate("h", GateType.OR, [g, zero])
    nl.set_outputs([h])
    pats = PatternSet.exhaustive(1)
    bits = unpack_bits(simulate(nl, pats), 2)
    assert list(bits[h]) == [0, 1]


def test_dff_gets_ppi_values(s27):
    pats = PatternSet.random(4, 64, seed=0)
    ff = s27.dffs()[0]
    forced = np.full(1, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
    with_state = simulate(s27, pats, ppi_values={ff: forced})
    without = simulate(s27, pats)
    assert int(with_state[ff][0]) == 0xFFFFFFFFFFFFFFFF
    assert int(without[ff][0]) == 0


def test_propagate_stem_matches_full_resim(alu4):
    pats = PatternSet.random(alu4.num_inputs, 128, seed=2)
    values = simulate(alu4, pats)
    target = alu4.index_of("fa1_s")
    forced = np.zeros_like(values[target])
    changed = propagate(alu4, values, stem_overrides={target: forced})
    # reference: copy values, force row, re-simulate downstream by
    # building a mutated netlist where the signal is a constant
    mutated = alu4.copy()
    mutated.tie_stem_to_constant(target, 0)
    ref = simulate(mutated, pats)
    for po_pos, po in enumerate(alu4.outputs):
        row = lookup(changed, values, po)
        assert np.array_equal(row, ref[mutated.outputs[po_pos]])


def test_propagate_pin_override_is_local(c17):
    pats = PatternSet.random(5, 128, seed=1)
    values = simulate(c17, pats)
    g16 = c17.index_of("16")
    g19 = c17.index_of("19")
    # force gate 16's view of signal 11 to zero; gate 19 still sees 11
    forced = np.zeros_like(values[0])
    changed = propagate(c17, values,
                        pin_overrides={(g16, 1): forced})
    mutated = c17.copy()
    mutated.tie_branch_to_constant(g16, 1, 0)
    ref = simulate(mutated, pats)
    for po_pos, po in enumerate(c17.outputs):
        assert np.array_equal(lookup(changed, values, po), ref[po])
    assert g19 not in changed  # 19 reads the unforced stem


def test_propagate_empty_override_is_noop(c17, patterns256):
    values = simulate(c17, patterns256)
    assert propagate(c17, values) == {}


def test_propagate_reports_only_changes(c17, patterns256):
    values = simulate(c17, patterns256)
    target = c17.index_of("10")
    same = values[target].copy()
    changed = propagate(c17, values, stem_overrides={target: same})
    assert set(changed) == {target}  # override recorded, nothing changed


def test_simulator_wrapper(c17, patterns256):
    sim = Simulator(c17, patterns256)
    assert sim.outputs().shape == (2, patterns256.num_words)
    target = c17.index_of("11")
    forced = np.zeros_like(sim.values[target])
    changed = sim.propagate_stem(target, forced)
    assert target in changed
    # cone caching returns the same object
    assert sim.cone_of(target) is sim.cone_of(target)
    changed_pin = sim.propagate_pin(c17.index_of("16"), 1, forced)
    assert isinstance(changed_pin, dict)
