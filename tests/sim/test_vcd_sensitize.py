"""VCD export and sensitized-line/path utilities."""

import pytest

from repro.circuit import LineTable, generators
from repro.sim import PatternSet, SimFault, popcount, simulate
from repro.sim.packing import bit_indices
from repro.sim.sensitize import (sensitization_masks, sensitized_lines,
                                 sensitized_path)
from repro.sim.vcd import write_vcd
from repro.errors import SimulationError


def test_vcd_structure(tmp_path, c17):
    patterns = PatternSet.exhaustive(5)
    values = simulate(c17, patterns)
    path = tmp_path / "c17.vcd"
    write_vcd(path, c17, values, patterns.nbits, comment="test dump")
    text = path.read_text()
    assert "$enddefinitions" in text
    assert "$var wire 1" in text
    assert f"#{patterns.nbits}" in text
    # 5 PIs + 2 POs declared
    assert text.count("$var wire 1") == 7


def test_vcd_signal_selection_and_errors(tmp_path, c17):
    patterns = PatternSet.random(5, 64, seed=0)
    values = simulate(c17, patterns)
    path = tmp_path / "one.vcd"
    write_vcd(path, c17, values, patterns.nbits, signals=["22", "16"])
    assert path.read_text().count("$var wire 1") == 2
    with pytest.raises(SimulationError):
        write_vcd(path, c17, values, patterns.nbits, signals=[9999])


def test_vcd_records_value_changes(tmp_path):
    from repro.circuit import GateType, Netlist
    nl = Netlist("toggle")
    a = nl.add_input("a")
    y = nl.add_gate("y", GateType.NOT, [a])
    nl.set_outputs([y])
    patterns = PatternSet.from_vectors([[0], [1], [1], [0]])
    values = simulate(nl, patterns)
    path = tmp_path / "t.vcd"
    write_vcd(path, nl, values, 4)
    text = path.read_text()
    assert "#0" in text and "#1" in text and "#3" in text
    assert "#2" not in text.split("$enddefinitions")[1]  # no change at 2


def test_sensitized_lines_match_detection(c17):
    table = LineTable(c17)
    patterns = PatternSet.exhaustive(5)
    values = simulate(c17, patterns)
    fault = SimFault(table.stem(c17.index_of("11")).index, 0)
    lines = sensitized_lines(c17, values, table, fault, patterns.nbits)
    assert c17.index_of("11") in lines
    # the fault reaches outputs, so at least one PO is sensitized
    assert lines & set(c17.outputs)


def test_sensitized_path_reaches_output(c17):
    table = LineTable(c17)
    patterns = PatternSet.exhaustive(5)
    values = simulate(c17, patterns)
    fault = SimFault(table.stem(c17.index_of("11")).index, 1)
    masks = sensitization_masks(c17, values, table, fault,
                                patterns.nbits)
    po_mask = None
    for po in c17.outputs:
        if po in masks:
            po_mask = masks[po]
            break
    assert po_mask is not None
    vector = bit_indices(po_mask, patterns.nbits)[0]
    path = sensitized_path(c17, values, table, fault, vector,
                           patterns.nbits)
    assert path
    assert path[0] == c17.index_of("11")
    assert path[-1] in c17.outputs


def test_sensitized_path_empty_when_unobserved(c17):
    table = LineTable(c17)
    patterns = PatternSet.exhaustive(5)
    values = simulate(c17, patterns)
    fault = SimFault(table.stem(c17.index_of("11")).index, 1)
    masks = sensitization_masks(c17, values, table, fault,
                                patterns.nbits)
    observed = set()
    for po in c17.outputs:
        if po in masks:
            observed |= set(bit_indices(masks[po], patterns.nbits))
    unobserved = [v for v in range(patterns.nbits) if v not in observed]
    if not unobserved:
        pytest.skip("fault observed on every vector")
    path = sensitized_path(c17, values, table, fault, unobserved[0],
                           patterns.nbits)
    assert path == []
