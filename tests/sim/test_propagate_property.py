"""Property tests for the event-driven incremental kernel.

:func:`repro.sim.propagate` (big-int event kernel) is checked against
two independent references on randomized netlists and overrides:

* a from-scratch oracle that re-evaluates the *entire* netlist in
  topological order honouring the overrides, and
* :func:`repro.sim.propagate_scan`, the retained pre-event kernel.

Pattern counts deliberately straddle the 64-bit word boundary
(1, 63, 64, 65, 1000) so tail-padding handling is exercised.
"""

import random

import numpy as np
import pytest

from repro.circuit import GateType, generators
from repro.circuit.gatetypes import eval_words
from repro.sim import PatternSet, propagate, propagate_scan, simulate

_PASSIVE = (GateType.INPUT, GateType.DFF, GateType.CONST0,
            GateType.CONST1)

NBITS_CASES = (1, 63, 64, 65, 1000)


def resim_oracle(netlist, values, stem_overrides=None,
                 pin_overrides=None):
    """From-scratch re-evaluation of the whole netlist under overrides.

    Independent of both kernels: no cones, no events — every gate is
    recomputed in topological order, then diffed against the baseline.
    """
    stem_overrides = dict(stem_overrides or {})
    pin_overrides = dict(pin_overrides or {})
    after = values.copy()
    for sig, words in stem_overrides.items():
        after[sig] = words
    for idx in netlist.topo_order():
        gate = netlist.gates[idx]
        if idx in stem_overrides or gate.gtype in _PASSIVE:
            continue
        ins = []
        for pin, src in enumerate(gate.fanin):
            words = pin_overrides.get((idx, pin))
            ins.append(after[src] if words is None else words)
        after[idx] = eval_words(gate.gtype, ins)
    changed = dict(stem_overrides)
    for idx in range(len(netlist.gates)):
        if idx not in changed and \
                not np.array_equal(after[idx], values[idx]):
            changed[idx] = after[idx]
    return changed


def assert_same_changes(result, reference):
    assert set(result) == set(reference)
    for idx in reference:
        assert np.array_equal(result[idx], reference[idx]), idx


def random_row(rng, nwords):
    bits = rng.getrandbits(64 * nwords)
    return np.frombuffer(bits.to_bytes(nwords * 8, "little"),
                         dtype=np.uint64).copy()


@pytest.mark.parametrize("nbits", NBITS_CASES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_stem_overrides_match_oracle_and_scan(nbits, seed):
    circuit = generators.random_dag(6, 80, 6, seed=seed)
    patterns = PatternSet.random(6, nbits, seed=seed)
    values = simulate(circuit, patterns)
    rng = random.Random(1000 * seed + nbits)
    cache = {}  # one base_ints cache shared across all calls, as users do
    for trial in range(3):
        n_stems = rng.randint(1, 3)
        stems = {sig: random_row(rng, patterns.num_words)
                 for sig in rng.sample(range(len(circuit.gates)), n_stems)}
        reference = resim_oracle(circuit, values, stems)
        event = propagate(circuit, values, stem_overrides=stems,
                          base_ints=cache)
        scan = propagate_scan(circuit, values, stem_overrides=stems)
        assert_same_changes(event, reference)
        assert_same_changes(scan, reference)


@pytest.mark.parametrize("nbits", NBITS_CASES)
@pytest.mark.parametrize("seed", (3, 4))
def test_pin_and_mixed_overrides_match_oracle(nbits, seed):
    circuit = generators.random_dag(6, 80, 6, seed=seed)
    patterns = PatternSet.random(6, nbits, seed=seed)
    values = simulate(circuit, patterns)
    rng = random.Random(1000 * seed + nbits)
    with_fanin = [g.index for g in circuit.gates if g.fanin]
    for trial in range(3):
        pins = {}
        for sink in rng.sample(with_fanin, rng.randint(1, 2)):
            pin = rng.randrange(len(circuit.gates[sink].fanin))
            pins[(sink, pin)] = random_row(rng, patterns.num_words)
        stems = {}
        if trial:  # mixed stem + pin overrides on later trials
            sig = rng.randrange(len(circuit.gates))
            stems[sig] = random_row(rng, patterns.num_words)
        reference = resim_oracle(circuit, values, stems, pins)
        event = propagate(circuit, values, stem_overrides=stems,
                          pin_overrides=pins)
        scan = propagate_scan(circuit, values, stem_overrides=stems,
                              pin_overrides=pins)
        assert_same_changes(event, reference)
        assert_same_changes(scan, reference)


@pytest.mark.parametrize("nbits", (63, 65))
def test_equal_override_seeds_no_events(nbits):
    circuit = generators.random_dag(5, 50, 4, seed=9)
    patterns = PatternSet.random(5, nbits, seed=9)
    values = simulate(circuit, patterns)
    sig = circuit.outputs[0]
    same = values[sig].copy()
    changed = propagate(circuit, values, stem_overrides={sig: same})
    # contract: the overridden stem is reported even though it is equal,
    # and nothing downstream is touched
    assert set(changed) == {sig}
    assert np.array_equal(changed[sig], same)


def test_events_do_not_cross_dffs():
    circuit = generators.random_sequential(6, 60, 5, 4, seed=5)
    patterns = PatternSet.random(6, 100, seed=5)
    values = simulate(circuit, patterns)
    rng = random.Random(5)
    dffs = set(circuit.dffs())
    # override every DFF data source: state must stay frozen
    sources = {circuit.gates[ff].fanin[0] for ff in dffs}
    stems = {src: random_row(rng, patterns.num_words) for src in sources}
    reference = resim_oracle(circuit, values, stems)
    event = propagate(circuit, values, stem_overrides=stems)
    assert_same_changes(event, reference)
    assert not (set(event) & dffs)


def test_cone_filter_restricts_propagation():
    circuit = generators.random_dag(5, 60, 4, seed=11)
    patterns = PatternSet.random(5, 128, seed=11)
    values = simulate(circuit, patterns)
    sig = circuit.inputs[0]
    forced = values[sig] ^ np.uint64(0xFFFFFFFFFFFFFFFF)
    unrestricted = propagate(circuit, values,
                             stem_overrides={sig: forced})
    full_cone = circuit.fanout_cone(sig)
    same = propagate(circuit, values, stem_overrides={sig: forced},
                     cone=full_cone)
    assert_same_changes(same, unrestricted)
    empty = propagate(circuit, values, stem_overrides={sig: forced},
                      cone=set())
    assert set(empty) == {sig}
