"""Output comparison and failing-vector masks."""

import numpy as np

from repro.sim.compare import (count_failing, diff_rows, equivalent,
                               failing_vector_mask, masked)


def test_masked_clears_tail():
    words = np.full((2, 2), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
    out = masked(words, 70)
    assert int(out[0, 0]) == 0xFFFFFFFFFFFFFFFF
    assert int(out[0, 1]) == 0b111111
    # original untouched
    assert int(words[0, 1]) == 0xFFFFFFFFFFFFFFFF


def test_masked_1d():
    words = np.full(2, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
    assert int(masked(words, 65)[1]) == 1


def test_diff_and_failing_mask():
    spec = np.array([[0b1100], [0b0000]], dtype=np.uint64)
    impl = np.array([[0b1000], [0b0001]], dtype=np.uint64)
    diff = diff_rows(spec, impl, 4)
    assert int(diff[0, 0]) == 0b0100
    assert int(diff[1, 0]) == 0b0001
    mask = failing_vector_mask(spec, impl, 4)
    assert int(mask[0]) == 0b0101
    assert count_failing(spec, impl, 4) == 2
    assert not equivalent(spec, impl, 4)


def test_equivalent_ignores_tail_garbage():
    spec = np.array([[0b0011]], dtype=np.uint64)
    impl = np.array([[0b1011]], dtype=np.uint64)  # differs at bit 3
    assert equivalent(spec, impl, 3)   # only 3 vectors are real
    assert not equivalent(spec, impl, 4)
