"""Bit packing, popcount, and PatternSet."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.packing import (PatternSet, WORD_BITS, bit_indices,
                               num_words, pack_bits, popcount, tail_mask,
                               unpack_bits)


def test_num_words():
    assert num_words(0) == 0
    assert num_words(1) == 1
    assert num_words(64) == 1
    assert num_words(65) == 2
    assert num_words(128) == 2


def test_tail_mask():
    assert int(tail_mask(64)) == 0xFFFFFFFFFFFFFFFF
    assert int(tail_mask(1)) == 1
    assert int(tail_mask(3)) == 0b111
    assert int(tail_mask(128)) == 0xFFFFFFFFFFFFFFFF


def test_popcount_known_values():
    assert popcount(np.array([0], dtype=np.uint64)) == 0
    assert popcount(np.array([0xFF, 0x1], dtype=np.uint64)) == 9
    assert popcount(np.full(10, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)) \
        == 640


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=8))
def test_popcount_matches_python(words):
    arr = np.array(words, dtype=np.uint64)
    assert popcount(arr) == sum(bin(w).count("1") for w in words)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 4), st.integers(1, 200), st.integers(0, 2**31))
def test_pack_unpack_roundtrip(nsig, nbits, seed):
    rng = np.random.default_rng(seed)
    bits = (rng.random((nsig, nbits)) < 0.5).astype(np.uint8)
    packed = pack_bits(bits)
    assert packed.shape == (nsig, num_words(nbits))
    assert np.array_equal(unpack_bits(packed, nbits), bits)


def test_bit_indices():
    words = np.array([0b1011, 0], dtype=np.uint64)
    assert bit_indices(words, 128) == [0, 1, 3]
    # unmasked tails are a producer bug and are rejected loudly
    words = np.array([1 << 63], dtype=np.uint64)
    with pytest.raises(SimulationError, match="beyond nbits"):
        bit_indices(words, 10)
    # ... including whole words beyond num_words(nbits)
    words = np.array([1, 1], dtype=np.uint64)
    with pytest.raises(SimulationError, match="beyond nbits"):
        bit_indices(words, 64)
    assert bit_indices(np.array([1, 0], dtype=np.uint64), 64) == [0]


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 150), st.integers(0, 2**31))
def test_bit_indices_matches_loop(nbits, seed):
    rng = np.random.default_rng(seed)
    bits = (rng.random(nbits) < 0.3).astype(np.uint8)
    packed = pack_bits(bits)[0]
    expected = [i for i in range(nbits) if bits[i]]
    assert bit_indices(packed, nbits) == expected


def test_pattern_set_from_vectors():
    pats = PatternSet.from_vectors([[0, 1], [1, 1], [1, 0]])
    assert pats.nbits == 3
    assert pats.num_inputs == 2
    assert list(pats.vector(0)) == [0, 1]
    assert list(pats.vector(2)) == [1, 0]


def test_pattern_set_vector_bounds():
    pats = PatternSet.from_vectors([[0, 1]])
    with pytest.raises(SimulationError):
        pats.vector(5)


def test_pattern_set_random_deterministic():
    a = PatternSet.random(4, 100, seed=3)
    b = PatternSet.random(4, 100, seed=3)
    c = PatternSet.random(4, 100, seed=4)
    assert np.array_equal(a.words, b.words)
    assert not np.array_equal(a.words, c.words)


def test_pattern_set_random_bias():
    dense = PatternSet.random(2, 2048, seed=1, one_probability=0.9)
    ones = popcount(dense.words[:, :-1]) \
        + popcount(dense.words[:, -1] & dense.tail_mask())
    assert ones / (2 * 2048) > 0.85


def test_pattern_set_exhaustive():
    pats = PatternSet.exhaustive(3)
    assert pats.nbits == 8
    seen = {tuple(pats.vector(v)) for v in range(8)}
    assert len(seen) == 8
    with pytest.raises(SimulationError):
        PatternSet.exhaustive(21)


def test_pattern_set_concat():
    a = PatternSet.from_vectors([[0, 0], [1, 1]])
    b = PatternSet.from_vectors([[1, 0]])
    both = a.concat(b)
    assert both.nbits == 3
    assert list(both.vector(2)) == [1, 0]
    mismatched = PatternSet.from_vectors([[1, 0, 1]])
    with pytest.raises(SimulationError):
        a.concat(mismatched)


@pytest.mark.parametrize("n1,n2", [
    (1, 1), (63, 1), (1, 63), (63, 65), (65, 63), (37, 91),
    (64, 64), (64, 3), (3, 64), (100, 28), (127, 129),
])
def test_pattern_set_concat_unaligned(n1, n2):
    """Packed-word splicing agrees with bit-level concatenation when
    neither side is a multiple of 64."""
    rng = np.random.default_rng(n1 * 1000 + n2)
    a_bits = (rng.random((3, n1)) < 0.5).astype(np.uint8)
    b_bits = (rng.random((3, n2)) < 0.5).astype(np.uint8)
    a = PatternSet(pack_bits(a_bits), n1)
    b = PatternSet(pack_bits(b_bits), n2)
    both = a.concat(b)
    assert both.nbits == n1 + n2
    expected = np.concatenate([a_bits, b_bits], axis=1)
    assert np.array_equal(unpack_bits(both.words, n1 + n2), expected)
    # tail padding of the result is clean
    assert int(both.words[:, -1].max() & ~both.tail_mask()) == 0


def test_pattern_set_concat_ignores_dirty_tails():
    """Junk in either operand's tail padding must not leak through."""
    a = PatternSet.random(2, 37, seed=5)
    b = PatternSet.random(2, 91, seed=6)
    expected = a.concat(b)
    wa = a.words.copy()
    wa[:, -1] |= ~np.uint64(tail_mask(37))
    wb = b.words.copy()
    wb[:, -1] |= ~np.uint64(tail_mask(91))
    got = PatternSet(wa, 37).concat(PatternSet(wb, 91))
    assert np.array_equal(got.words, expected.words)


def test_pattern_set_shape_validation():
    with pytest.raises(SimulationError):
        PatternSet(np.zeros((2, 3), dtype=np.uint64), 64)  # word mismatch
    with pytest.raises(SimulationError):
        PatternSet(np.zeros(4, dtype=np.uint64), 64)  # 1-D
