"""Additional simulator coverage: multi-override propagation."""

import numpy as np

from repro.circuit import GateType, Netlist
from repro.sim import PatternSet, lookup, propagate, simulate


def chain():
    nl = Netlist("chain")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.OR, [g1, a])
    g3 = nl.add_gate("g3", GateType.XOR, [g2, b])
    nl.set_outputs([g3])
    return nl


def test_multiple_stem_overrides_compose():
    nl = chain()
    patterns = PatternSet.exhaustive(2)
    values = simulate(nl, patterns)
    zeros = np.zeros_like(values[0])
    ones = np.full_like(values[0], np.uint64(0xFFFFFFFFFFFFFFFF))
    changed = propagate(nl, values,
                        stem_overrides={nl.index_of("g1"): ones,
                                        nl.index_of("a"): zeros})
    # reference: mutate structurally
    ref = nl.copy()
    ref.tie_stem_to_constant(ref.index_of("g1"), 1)
    ref.tie_stem_to_constant(ref.index_of("a"), 0)
    ref_values = simulate(ref, patterns)
    got = lookup(changed, values, nl.outputs[0])
    mask = np.uint64(0b1111)
    assert (got[0] & mask) == (ref_values[ref.outputs[0]][0] & mask)


def test_mixed_stem_and_pin_overrides():
    nl = chain()
    patterns = PatternSet.exhaustive(2)
    values = simulate(nl, patterns)
    ones = np.full_like(values[0], np.uint64(0xFFFFFFFFFFFFFFFF))
    g2 = nl.index_of("g2")
    changed = propagate(nl, values,
                        stem_overrides={nl.index_of("b"): ones},
                        pin_overrides={(g2, 1): ones})
    ref = nl.copy()
    ref.tie_stem_to_constant(ref.index_of("b"), 1)
    ref.tie_branch_to_constant(g2, 1, 1)
    ref_values = simulate(ref, patterns)
    got = lookup(changed, values, nl.outputs[0])
    mask = np.uint64(0b1111)
    assert (got[0] & mask) == (ref_values[ref.outputs[0]][0] & mask)


def test_lookup_falls_back_to_baseline():
    nl = chain()
    patterns = PatternSet.exhaustive(2)
    values = simulate(nl, patterns)
    assert np.array_equal(lookup({}, values, 0), values[0])
