"""Edit journal semantics, no-op mutations, per-mutator invalidation."""

import pytest

from repro.circuit import GateType, Netlist
from repro.circuit.delta import JOURNAL_CAP, NetlistDelta, NetlistEdit


def diamond():
    nl = Netlist("diamond")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.OR, [a, b])
    g3 = nl.add_gate("g3", GateType.NAND, [g1, g2])
    nl.set_outputs([g3])
    return nl


# ----------------------------------------------------------------------
# journal basics
# ----------------------------------------------------------------------
def test_version_advances_per_primitive_edit():
    nl = diamond()
    v0 = nl.version
    nl.set_gate_type(nl.index_of("g1"), GateType.NOR)
    assert nl.version == v0 + 1
    nl.set_fanin(nl.index_of("g3"), [nl.index_of("g2"),
                                     nl.index_of("g1")])
    assert nl.version == v0 + 3  # two pin_replaced records


def test_edits_since_returns_exact_slice():
    nl = diamond()
    v0 = nl.version
    assert list(nl.edits_since(v0)) == []          # empty delta, not None
    assert nl.edits_since(v0)is not None
    nl.set_gate_type(nl.index_of("g1"), GateType.NOR)
    nl.replace_fanin_pin(nl.index_of("g3"), 0, nl.index_of("g2"))
    delta = nl.edits_since(v0)
    assert isinstance(delta, NetlistDelta)
    assert [e.kind for e in delta] == ["type_changed", "pin_replaced"]
    assert delta.touched_gates() == {nl.index_of("g1"), nl.index_of("g3")}
    assert delta.touched_sources() == {nl.index_of("g1"),
                                       nl.index_of("g2")}
    # a later snapshot sees only the tail
    mid = nl.version
    nl.set_outputs([nl.index_of("g1")])
    tail = nl.edits_since(mid)
    assert [e.kind for e in tail] == ["outputs_set"]
    assert tail.outputs_changed()
    assert tail.outputs_before() == (nl.index_of("g3"),)


def test_edits_since_none_after_dirty_and_for_bogus_versions():
    nl = diamond()
    v0 = nl.version
    nl._dirty()
    assert nl.edits_since(v0) is None              # full invalidation
    assert list(nl.edits_since(nl.version)) == []  # new snapshot fine
    assert nl.edits_since(nl.version + 5) is None  # future version


def test_journal_is_bounded():
    nl = Netlist("big")
    a = nl.add_input("a")
    v0 = nl.version
    for i in range(JOURNAL_CAP + 10):
        nl.add_gate(f"g{i}", GateType.BUF, [a])
    assert len(nl._journal) <= JOURNAL_CAP
    assert nl.edits_since(v0) is None              # fell off the window
    recent = nl.edits_since(nl.version - 5)
    assert recent is not None and len(recent) == 5


def test_copy_starts_fresh_journal():
    nl = diamond()
    nl.set_gate_type(nl.index_of("g1"), GateType.NOR)
    dup = nl.copy()
    assert dup.version == 0
    assert list(dup.edits_since(0)) == []
    dup.replace_fanin_pin(dup.index_of("g3"), 0, dup.index_of("g2"))
    assert len(dup.edits_since(0)) == 1


def test_compound_mutators_decompose_into_primitives():
    nl = diamond()
    v0 = nl.version
    a = nl.index_of("a")
    inv = nl.insert_gate_on_stem(a, GateType.NOT)
    kinds = [e.kind for e in nl.edits_since(v0)]
    assert kinds[0] == "gate_added"
    assert kinds.count("pin_replaced") == 2        # g1 and g2 rewired
    assert "outputs_set" not in kinds              # a was not a PO
    delta = nl.edits_since(v0)
    assert inv in delta.touched_gates()
    assert a in delta.touched_sources()
    assert delta.connectivity_changed()


# ----------------------------------------------------------------------
# no-op mutations must not invalidate anything
# ----------------------------------------------------------------------
def test_noop_set_gate_type_keeps_version_and_caches():
    nl = diamond()
    topo = nl.topo_order()
    cone = nl.sorted_cone(nl.index_of("a"))
    v = nl.version
    nl.set_gate_type(nl.index_of("g1"), GateType.AND)  # already AND
    assert nl.version == v
    assert nl.topo_order() is topo
    assert nl.sorted_cone(nl.index_of("a")) is cone


def test_noop_replace_fanin_pin_keeps_version_and_caches():
    nl = diamond()
    g1 = nl.index_of("g1")
    fos = nl.fanouts()
    lev = nl.levels()
    v = nl.version
    nl.replace_fanin_pin(g1, 0, nl.gates[g1].fanin[0])  # same source
    assert nl.version == v
    assert nl.fanouts() is fos
    assert nl.levels() is lev


def test_noop_set_fanin_and_outputs_keep_version():
    nl = diamond()
    g3 = nl.index_of("g3")
    v = nl.version
    nl.set_fanin(g3, list(nl.gates[g3].fanin))
    nl.set_outputs(list(nl.outputs))
    assert nl.version == v
    assert list(nl.edits_since(v)) == []


# ----------------------------------------------------------------------
# per-mutator invalidation matrix: exactly which caches drop
# ----------------------------------------------------------------------
def _warm(nl):
    """Materialize every structural cache and return the objects."""
    return {
        "fanouts": nl.fanouts(),
        "event_fanouts": nl.event_fanouts(),
        "topo": nl.topo_order(),
        "levels": nl.levels(),
    }


def test_matrix_type_change_comb_to_comb_preserves_structure():
    nl = diamond()
    before = _warm(nl)
    cone = nl.sorted_cone(nl.index_of("a"))
    nl.set_gate_type(nl.index_of("g1"), GateType.NOR)
    # connectivity untouched: every structural cache survives as-is
    assert nl.fanouts() is before["fanouts"]
    assert nl.event_fanouts() is before["event_fanouts"]
    assert nl.topo_order() is before["topo"]
    assert nl.levels() is before["levels"]
    assert nl.sorted_cone(nl.index_of("a")) is cone
    assert nl._sim_tables is None                  # semantics changed


def test_matrix_outputs_set_preserves_structure():
    nl = diamond()
    before = _warm(nl)
    nl.set_outputs([nl.index_of("g1")])
    assert nl.fanouts() is before["fanouts"]
    assert nl.event_fanouts() is before["event_fanouts"]
    assert nl.topo_order() is before["topo"]
    assert nl.levels() is before["levels"]


def test_matrix_pin_edit_patches_fanouts_drops_levels_and_cones():
    nl = diamond()
    a, b = nl.index_of("a"), nl.index_of("b")
    g1, g2 = nl.index_of("g1"), nl.index_of("g2")
    before = _warm(nl)
    cone_a = nl.sorted_cone(a)
    nl.replace_fanin_pin(g1, 0, g2)                # a -> g2 on pin 0
    assert nl.fanouts() is before["fanouts"]       # patched in place
    assert g1 not in nl.fanouts()[a]
    assert g1 in nl.fanouts()[g2]
    assert nl.event_fanouts() is before["event_fanouts"]
    assert nl.topo_order() is before["topo"]       # order still valid
    assert nl.levels() is not before["levels"]     # recomputed lazily
    assert nl.levels()[g1] == 2
    assert nl.sorted_cone(a) is not cone_a         # cone membership moved
    assert set(nl.sorted_cone(a)) == {a, g2, g1, nl.index_of("g3")}


def test_matrix_gate_added_extends_everything_in_place():
    nl = diamond()
    before = _warm(nl)
    cone_b = nl.sorted_cone(nl.index_of("b"))
    g3 = nl.index_of("g3")
    g4 = nl.add_gate("g4", GateType.NOT, [g3])
    assert nl.fanouts() is before["fanouts"]
    assert nl.fanouts()[g3] == [g4]
    assert nl.event_fanouts() is before["event_fanouts"]
    assert nl.topo_order() is before["topo"]
    assert nl.topo_order()[-1] == g4
    assert nl.levels() is before["levels"]         # appended, not dropped
    assert nl.levels()[g4] == nl.levels()[g3] + 1
    assert nl.sorted_cone(nl.index_of("b")) is not cone_b
    assert g4 in nl.sorted_cone(nl.index_of("b"))


def test_matrix_cut_type_change_falls_back_to_full_invalidate():
    nl = Netlist("seq")
    a = nl.add_input("a")
    ff = nl.add_gate("ff", GateType.DFF, [a])
    g = nl.add_gate("g", GateType.BUF, [ff])
    nl.set_outputs([g])
    before = _warm(nl)
    v = nl.version
    nl.set_gate_type(ff, GateType.NOT)             # DFF -> comb: cut edit
    assert nl.edits_since(v) is None               # journal reset
    assert nl._fanouts is None and nl._topo is None
    assert nl._facts is None
    assert nl.fanouts() is not before["fanouts"]


def test_matrix_topo_rank_repair_on_order_violating_edge():
    # Build so that g_late precedes g_early in the cached order, then
    # add the edge g_late -> g_early: Pearce-Kelly must repair ranks
    # without a full recompute (same list object, still a valid order).
    nl = Netlist("pk")
    a = nl.add_input("a")
    early = nl.add_gate("early", GateType.BUF, [a])
    late = nl.add_gate("late", GateType.NOT, [a])
    nl.set_outputs([early, late])
    topo = nl.topo_order()
    assert topo.index(early) < topo.index(late)
    nl.set_fanin(early, [late])
    assert nl.topo_order() is topo                 # repaired in place
    pos = nl.topo_positions()
    for gate in nl.gates:
        for src in gate.fanin:
            assert pos[src] < pos[gate.index]


def test_cycle_creating_edge_raises_lazily():
    nl = Netlist("cyc")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.BUF, [a])
    g2 = nl.add_gate("g2", GateType.NOT, [g1])
    nl.set_outputs([g2])
    nl.topo_order()
    nl.replace_fanin_pin(g1, 0, g2)                # closes a comb cycle
    from repro.errors import NetlistError
    with pytest.raises(NetlistError, match="cycle"):
        nl.topo_order()


def test_delta_accessors_on_handwritten_edits():
    delta = NetlistDelta((
        NetlistEdit("type_changed", gate=3, old=GateType.AND,
                    new=GateType.OR),
    ))
    assert not delta.connectivity_changed()
    assert not delta.outputs_changed()
    assert delta.touched_gates() == {3}
    assert delta.touched_sources() == set()
    assert len(delta) == 1 and bool(delta)
    assert not NetlistDelta(())
