"""Area optimization and XOR expansion preserve circuit function."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (GateType, Netlist, expand_xor, generators,
                           optimize_area, validate)
from repro.sim import PatternSet, equivalent, output_rows, simulate


def _equiv(a, b, nbits=256, seed=0):
    patterns = PatternSet.random(a.num_inputs, nbits, seed)
    return equivalent(output_rows(a, simulate(a, patterns)),
                      output_rows(b, simulate(b, patterns)), nbits)


def test_constant_folding():
    nl = Netlist("x")
    a = nl.add_input("a")
    zero = nl.add_gate("zero", GateType.CONST0)
    g = nl.add_gate("g", GateType.AND, [a, zero])   # == 0
    h = nl.add_gate("h", GateType.OR, [g, a])       # == a
    nl.set_outputs([h])
    opt = optimize_area(nl)
    assert _equiv(nl, opt)
    # everything should fold down to a buffer/wire of `a`
    assert len(opt.live_set()) <= 2


def test_xor_constant_folding():
    nl = Netlist("x")
    a = nl.add_input("a")
    one = nl.add_gate("one", GateType.CONST1)
    g = nl.add_gate("g", GateType.XOR, [a, one])    # == NOT a
    nl.set_outputs([g])
    opt = optimize_area(nl)
    assert _equiv(nl, opt)
    assert opt.gate("g").gtype in (GateType.NOT,)


def test_double_inverter_collapse():
    nl = Netlist("x")
    a = nl.add_input("a")
    n1 = nl.add_gate("n1", GateType.NOT, [a])
    n2 = nl.add_gate("n2", GateType.NOT, [n1])
    g = nl.add_gate("g", GateType.AND, [n2, a])
    nl.set_outputs([g])
    opt = optimize_area(nl)
    assert _equiv(nl, opt)
    assert opt.gate("g").fanin == [opt.index_of("a"), opt.index_of("a")]


def test_structural_hashing_shares_duplicates():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.AND, [b, a])    # commutative dup
    o = nl.add_gate("o", GateType.XOR, [g1, g2])    # == 0
    o2 = nl.add_gate("o2", GateType.OR, [g1, g2])   # == g1
    nl.set_outputs([o, o2])
    opt = optimize_area(nl)
    assert _equiv(nl, opt)
    live = opt.live_set()
    and_gates = [g for g in opt.gates
                 if g.index in live and g.gtype is GateType.AND]
    assert len(and_gates) <= 1


@pytest.mark.parametrize("name", ["c17", "r499", "r880"])
def test_optimize_suite_circuits(name):
    circuit = generators.by_name(name, scale=0.25)
    opt = optimize_area(circuit)
    validate(opt)
    assert _equiv(circuit, opt, 512)
    assert len(opt.gates) <= len(circuit.gates)


def test_expand_xor_removes_all_xors(rca4):
    expanded = expand_xor(rca4)
    validate(expanded)
    live = expanded.live_set()
    for gate in expanded.gates:
        if gate.index in live:
            assert gate.gtype not in (GateType.XOR, GateType.XNOR)
    assert _equiv(rca4, expanded, 512)


def test_expand_xor_handles_xnor_and_wide_gates():
    nl = Netlist("x")
    ins = [nl.add_input(f"i{k}") for k in range(3)]
    g = nl.add_gate("g", GateType.XNOR, ins)
    nl.set_outputs([g])
    expanded = expand_xor(nl)
    patterns = PatternSet.exhaustive(3)
    assert equivalent(output_rows(nl, simulate(nl, patterns)),
                      output_rows(expanded, simulate(expanded, patterns)),
                      patterns.nbits)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), gates=st.integers(10, 80))
def test_optimize_random_circuits_equivalent(seed, gates):
    """Property: area optimization never changes the PO functions."""
    circuit = generators.random_dag(6, gates, 4, seed=seed)
    opt = optimize_area(circuit)
    validate(opt)
    assert _equiv(circuit, opt, 256, seed=seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_expand_xor_random_circuits_equivalent(seed):
    circuit = generators.random_dag(6, 50, 4, seed=seed)
    expanded = expand_xor(circuit)
    assert _equiv(circuit, expanded, 256, seed=seed)
