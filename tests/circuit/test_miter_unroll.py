"""Miter construction and time-frame expansion."""

import random

import pytest

from repro.circuit import GateType, Netlist, generators
from repro.circuit.miter import build_miter
from repro.circuit.sequential import SequentialSimulator
from repro.circuit.unroll import pack_sequences, unroll
from repro.errors import NetlistError
from repro.sim import PatternSet, output_rows, popcount, simulate
from repro.sim.compare import failing_vector_mask
from repro.sim.packing import unpack_bits


def test_miter_of_identical_circuits_is_zero(c17):
    miter = build_miter(c17, c17.copy())
    patterns = PatternSet.exhaustive(5)
    out = output_rows(miter, simulate(miter, patterns))
    assert popcount(out[:, : patterns.num_words]
                    & patterns.tail_mask()) == 0


def test_miter_detects_differences(c17):
    other = c17.copy("c17_mut")
    other.set_gate_type(other.index_of("10"), GateType.AND)
    miter = build_miter(c17, other)
    patterns = PatternSet.exhaustive(5)
    out = output_rows(miter, simulate(miter, patterns))
    # miter fires exactly where the two circuits disagree
    direct = failing_vector_mask(
        output_rows(c17, simulate(c17, patterns)),
        output_rows(other, simulate(other, patterns)), patterns.nbits)
    assert popcount(out & direct) == popcount(direct)
    assert popcount(out[0, -1] & patterns.tail_mask()) \
        == popcount(direct)


def test_miter_interface_checks(c17, alu4, s27):
    with pytest.raises(NetlistError, match="count mismatch"):
        build_miter(c17, alu4)
    with pytest.raises(NetlistError, match="combinational"):
        build_miter(s27, s27)


def test_unroll_matches_cycle_simulation(s27):
    frames = 6
    model, umap = unroll(s27, frames, initial_state=0)
    assert model.is_combinational
    assert model.num_inputs == frames * s27.num_inputs
    assert model.num_outputs == frames * s27.num_outputs
    rng = random.Random(3)
    names = [s27.gates[i].name for i in s27.inputs]
    sequences = [[[rng.randint(0, 1) for _ in names]
                  for _ in range(frames)] for _ in range(20)]
    patterns = pack_sequences(s27, umap, sequences)
    out = unpack_bits(output_rows(model, simulate(model, patterns)),
                      patterns.nbits)
    for v, seq in enumerate(sequences):
        sim = SequentialSimulator(s27, initial_state=0)
        for t, cycle in enumerate(seq):
            ref = sim.step(dict(zip(names, cycle)))
            for p, po_pos in enumerate(umap.po_positions[t]):
                assert out[po_pos, v] == ref[p], (v, t, p)


def test_unroll_unknown_reset_exposes_state_inputs(s27):
    model, _ = unroll(s27, 2, initial_state=None)
    assert model.num_inputs == 2 * s27.num_inputs + len(s27.dffs())


def test_unroll_validation(s27):
    with pytest.raises(NetlistError):
        unroll(s27, 0)
    model, umap = unroll(s27, 2)
    with pytest.raises(NetlistError, match="cycles"):
        pack_sequences(s27, umap, [[[0, 0, 0, 0]]])  # 1 cycle, need 2
