"""Miter construction and time-frame expansion."""

import random

import pytest

from repro.circuit import GateType, Netlist, generators
from repro.circuit.miter import build_miter
from repro.circuit.sequential import SequentialSimulator
from repro.circuit.unroll import pack_sequences, unroll
from repro.errors import NetlistError
from repro.sim import PatternSet, output_rows, popcount, simulate
from repro.sim.compare import failing_vector_mask
from repro.sim.packing import unpack_bits


def test_miter_of_identical_circuits_is_zero(c17):
    miter = build_miter(c17, c17.copy())
    patterns = PatternSet.exhaustive(5)
    out = output_rows(miter, simulate(miter, patterns))
    assert popcount(out[:, : patterns.num_words]
                    & patterns.tail_mask()) == 0


def test_miter_detects_differences(c17):
    other = c17.copy("c17_mut")
    other.set_gate_type(other.index_of("10"), GateType.AND)
    miter = build_miter(c17, other)
    patterns = PatternSet.exhaustive(5)
    out = output_rows(miter, simulate(miter, patterns))
    # miter fires exactly where the two circuits disagree
    direct = failing_vector_mask(
        output_rows(c17, simulate(c17, patterns)),
        output_rows(other, simulate(other, patterns)), patterns.nbits)
    assert popcount(out & direct) == popcount(direct)
    assert popcount(out[0, -1] & patterns.tail_mask()) \
        == popcount(direct)


def test_miter_interface_checks(c17, alu4, s27):
    with pytest.raises(NetlistError, match="count mismatch"):
        build_miter(c17, alu4)
    with pytest.raises(NetlistError, match="combinational"):
        build_miter(s27, s27)


def test_unroll_matches_cycle_simulation(s27):
    frames = 6
    model, umap = unroll(s27, frames, initial_state=0)
    assert model.is_combinational
    assert model.num_inputs == frames * s27.num_inputs
    assert model.num_outputs == frames * s27.num_outputs
    rng = random.Random(3)
    names = [s27.gates[i].name for i in s27.inputs]
    sequences = [[[rng.randint(0, 1) for _ in names]
                  for _ in range(frames)] for _ in range(20)]
    patterns = pack_sequences(s27, umap, sequences)
    out = unpack_bits(output_rows(model, simulate(model, patterns)),
                      patterns.nbits)
    for v, seq in enumerate(sequences):
        sim = SequentialSimulator(s27, initial_state=0)
        for t, cycle in enumerate(seq):
            ref = sim.step(dict(zip(names, cycle)))
            for p, po_pos in enumerate(umap.po_positions[t]):
                assert out[po_pos, v] == ref[p], (v, t, p)


def test_unroll_unknown_reset_exposes_state_inputs(s27):
    model, _ = unroll(s27, 2, initial_state=None)
    assert model.num_inputs == 2 * s27.num_inputs + len(s27.dffs())


def test_unroll_validation(s27):
    with pytest.raises(NetlistError):
        unroll(s27, 0)
    model, umap = unroll(s27, 2)
    with pytest.raises(NetlistError, match="cycles"):
        pack_sequences(s27, umap, [[[0, 0, 0, 0]]])  # 1 cycle, need 2


def test_unroll_single_frame(s27):
    # frames=1: no cross-frame wiring, every DFF reads its reset value
    model, umap = unroll(s27, 1, initial_state=0)
    assert model.is_combinational
    assert model.num_inputs == s27.num_inputs
    assert umap.frames == 1 and len(umap.instance) == 1
    assert umap.init_rows == {}
    names = [s27.gates[i].name for i in s27.inputs]
    seqs = [[[1, 0, 1, 0]], [[0, 1, 1, 1]]]
    patterns = pack_sequences(s27, umap, seqs)
    out = unpack_bits(output_rows(model, simulate(model, patterns)),
                      patterns.nbits)
    for v, seq in enumerate(seqs):
        ref = SequentialSimulator(s27, 0).step(dict(zip(names, seq[0])))
        for p, po_pos in enumerate(umap.po_positions[0]):
            assert out[po_pos, v] == ref[p]


def test_unroll_zero_dff_netlist(c17):
    # a combinational netlist unrolls to independent copies per frame
    model, umap = unroll(c17, 3, initial_state=None)
    assert model.num_inputs == 3 * c17.num_inputs
    assert model.num_outputs == 3 * c17.num_outputs
    assert umap.init_rows == {}
    rng = random.Random(5)
    names = [c17.gates[i].name for i in c17.inputs]
    seqs = [[[rng.randint(0, 1) for _ in names] for _ in range(3)]
            for _ in range(8)]
    patterns = pack_sequences(c17, umap, seqs)
    out = unpack_bits(output_rows(model, simulate(model, patterns)),
                      patterns.nbits)
    sim = SequentialSimulator(c17, 0)  # stateless: plain evaluation
    for v, seq in enumerate(seqs):
        for t, cycle in enumerate(seq):
            ref = sim.step(dict(zip(names, cycle)))
            for p, po_pos in enumerate(umap.po_positions[t]):
                assert out[po_pos, v] == ref[p]


def test_unroll_x_reset_roundtrip_matches_simulator(s27):
    # X reset exposes @init inputs; pack_sequences(initial_bits=...)
    # must make the unrolled model agree with SequentialSimulator
    # started from the same concrete state, for both init encodings.
    frames = 4
    model, umap = unroll(s27, frames, initial_state=None)
    dffs = s27.dffs()
    assert set(umap.init_rows) == set(dffs)
    rng = random.Random(11)
    names = [s27.gates[i].name for i in s27.inputs]
    seqs = [[[rng.randint(0, 1) for _ in names] for _ in range(frames)]
            for _ in range(16)]
    by_index = {dff: rng.randint(0, 1) for dff in dffs}
    by_name = {s27.gates[dff].name: bit for dff, bit in by_index.items()}
    for initial_bits in (by_index, by_name, 1):
        patterns = pack_sequences(s27, umap, seqs,
                                  initial_bits=initial_bits)
        state = 1 if isinstance(initial_bits, int) else by_index
        out = unpack_bits(output_rows(model, simulate(model, patterns)),
                          patterns.nbits)
        for v, seq in enumerate(seqs):
            sim = SequentialSimulator(s27, initial_state=state)
            for t, cycle in enumerate(seq):
                ref = sim.step(dict(zip(names, cycle)))
                for p, po_pos in enumerate(umap.po_positions[t]):
                    assert out[po_pos, v] == ref[p], (v, t, p)


def test_pack_sequences_initial_bits_validation(s27):
    model, umap = unroll(s27, 2, initial_state=None)
    good = [[[0, 0, 0, 0], [1, 1, 1, 1]]]
    with pytest.raises(NetlistError, match="no free @init input"):
        pack_sequences(s27, umap, good, initial_bits={"nope": 1})
    with pytest.raises(NetlistError, match="must be 0 or 1"):
        pack_sequences(s27, umap, good, initial_bits={"G5": 2})
    # constant reset leaves no @init rows: initial_bits is ignored
    cmodel, cumap = unroll(s27, 2, initial_state=0)
    assert cumap.init_rows == {}
    pack_sequences(s27, cumap, good, initial_bits={"G5": 1})


def test_unroll_mixed_reset_state(s27):
    # per-DFF mapping mixing constants with X: only the X register
    # becomes a free @init input
    dffs = s27.dffs()
    state = {s27.gates[dff].name: 0 for dff in dffs[1:]}
    state[s27.gates[dffs[0]].name] = None
    model, umap = unroll(s27, 2, initial_state=state)
    assert set(umap.init_rows) == {dffs[0]}
    assert model.num_inputs == 2 * s27.num_inputs + 1
