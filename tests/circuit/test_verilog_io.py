"""Structural Verilog reader/writer."""

import pytest

from repro.circuit import GateType, generators, validate
from repro.circuit import verilog_io
from repro.errors import ParseError
from repro.sim import PatternSet, equivalent, output_rows, simulate


def _equiv(a, b, nbits=256):
    patterns = PatternSet.random(a.num_inputs, nbits, seed=0)
    return equivalent(output_rows(a, simulate(a, patterns)),
                      output_rows(b, simulate(b, patterns)), nbits)


@pytest.mark.parametrize("maker", [
    generators.c17,
    lambda: generators.ripple_carry_adder(4),
    lambda: generators.alu(4),
    lambda: generators.hamming_corrector(8),
])
def test_roundtrip_preserves_function(maker):
    circuit = maker()
    text = verilog_io.dumps(circuit)
    back = verilog_io.loads(text)
    validate(back)
    assert back.num_inputs == circuit.num_inputs
    assert back.num_outputs == circuit.num_outputs
    assert _equiv(circuit, back)


def test_parse_handwritten():
    netlist = verilog_io.loads("""
    // a tiny module
    module t (a, b, y);
      input a, b;
      output y;
      wire w1, w2;   /* block
                        comment */
      nand u0 (w1, a, b);
      not u1 (w2, w1);
      buf u2 (y, w2);
    endmodule
    """)
    assert netlist.num_inputs == 2
    assert netlist.gate("w1").gtype is GateType.NAND
    assert netlist.gate("y").gtype is GateType.BUF


def test_parse_constants_and_assign():
    netlist = verilog_io.loads("""
    module k (a, y);
      input a;
      output y;
      wire zero, thru;
      assign zero = 1'b0;
      assign thru = a;
      or u0 (y, thru, zero);
    endmodule
    """)
    assert netlist.gate("zero").gtype is GateType.CONST0
    assert netlist.gate("thru").gtype is GateType.BUF


def test_file_roundtrip(tmp_path):
    circuit = generators.comparator(3)
    path = tmp_path / "cmp.v"
    verilog_io.dump(circuit, path)
    back = verilog_io.load(path)
    assert _equiv(circuit, back)


def test_errors():
    with pytest.raises(ParseError, match="module"):
        verilog_io.loads("wire x;")
    with pytest.raises(ParseError, match="driven twice"):
        verilog_io.loads("""
        module m (a, y); input a; output y;
        not u0 (y, a);
        buf u1 (y, a);
        endmodule""")
    with pytest.raises(ParseError, match="never driven"):
        verilog_io.loads("""
        module m (a, y); input a; output y;
        not u0 (y, ghost);
        endmodule""")
    with pytest.raises(ParseError, match="cycle"):
        verilog_io.loads("""
        module m (a, y); input a; output y;
        and u0 (y, a, w);
        not u1 (w, y);
        endmodule""")


def test_sequential_rejected_on_dump(s27):
    with pytest.raises(ParseError, match="combinational"):
        verilog_io.dumps(s27)


def test_identifier_sanitization(c17):
    """c17's numeric signal names must become legal identifiers."""
    text = verilog_io.dumps(c17)
    assert "module m_c17" in text or "module c17" in text
    back = verilog_io.loads(text)
    assert _equiv(c17, back)
