"""Malformed-input error paths in the file readers, and the automatic
lint-on-load hook both readers run after parsing."""

import pytest

from repro.analyze import set_load_lint_policy
from repro.circuit import bench_io, verilog_io
from repro.errors import ParseError

BENCH_DEAD_CONE = """
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
d1 = NOT(a)
d2 = AND(d1, b)
"""

VERILOG_DEAD_CONE = """
module m (a, b, y);
  input a, b;
  output y;
  wire d1, d2;
  nand u0 (y, a, b);
  not  u1 (d1, a);
  and  u2 (d2, d1, b);
endmodule
"""


# ---------------------------------------------------------------- bench
def test_bench_bad_arity_raises():
    with pytest.raises(ParseError):
        bench_io.loads("INPUT(x)\nOUTPUT(y)\ny = NOT(x, x)\n")


def test_bench_undefined_signal_raises():
    with pytest.raises(ParseError, match="never defined"):
        bench_io.loads("INPUT(x)\nOUTPUT(y)\ny = OR(x, ghost)\n")


def test_bench_cyclic_definition_raises():
    with pytest.raises(ParseError, match="cycle"):
        bench_io.loads(
            "INPUT(x)\nOUTPUT(p)\np = AND(x, q)\nq = NOT(p)\n")


def test_bench_no_outputs_caught_by_load_lint():
    with pytest.raises(ParseError, match="no-outputs"):
        bench_io.loads("INPUT(x)\ny = NOT(x)\n")


def test_bench_no_outputs_loads_with_lint_off():
    nl = bench_io.loads("INPUT(x)\ny = NOT(x)\n", lint="off")
    assert nl.num_outputs == 0


def test_bench_dead_cone_warns_not_fails(capsys):
    nl = bench_io.loads(BENCH_DEAD_CONE)  # default: errors only
    assert nl.num_outputs == 1
    bench_io.loads(BENCH_DEAD_CONE, name="dc.bench", lint="warn")
    err = capsys.readouterr().err
    assert "dc.bench: warning:" in err and "dead-gate" in err
    with pytest.raises(ParseError, match="strict"):
        bench_io.loads(BENCH_DEAD_CONE, lint="strict")


def test_bench_process_wide_policy_applies(tmp_path):
    path = tmp_path / "dc.bench"
    path.write_text(BENCH_DEAD_CONE)
    previous = set_load_lint_policy("strict")
    try:
        with pytest.raises(ParseError, match="strict"):
            bench_io.load(path)
    finally:
        set_load_lint_policy(previous)
    assert bench_io.load(path).name == "dc"


# -------------------------------------------------------------- verilog
def test_verilog_undefined_signal_raises():
    with pytest.raises(ParseError, match="never driven"):
        verilog_io.loads("""
        module m (a, y);
          input a;
          output y;
          and u0 (y, a, ghost);
        endmodule
        """)


def test_verilog_cyclic_definition_raises():
    with pytest.raises(ParseError, match="cycle"):
        verilog_io.loads("""
        module m (a, y);
          input a;
          output y;
          wire w;
          and u0 (w, a, y);
          not u1 (y, w);
        endmodule
        """)


def test_verilog_bad_arity_raises():
    with pytest.raises(ParseError, match="needs an output"):
        verilog_io.loads("""
        module m (a, y);
          input a;
          output y;
          not u0 (y);
        endmodule
        """)


def test_verilog_dead_cone_warns_not_fails(capsys):
    nl = verilog_io.loads(VERILOG_DEAD_CONE)
    assert nl.num_outputs == 1
    verilog_io.loads(VERILOG_DEAD_CONE, name="m.v", lint="warn")
    err = capsys.readouterr().err
    assert "m.v: warning:" in err
    with pytest.raises(ParseError, match="strict"):
        verilog_io.loads(VERILOG_DEAD_CONE, lint="strict")


def test_verilog_no_outputs_caught_by_load_lint():
    with pytest.raises(ParseError, match="no-outputs"):
        verilog_io.loads("""
        module m (a);
          input a;
          wire w;
          not u0 (w, a);
        endmodule
        """)
