"""Netlist construction, queries and mutation operators."""

import pytest

from repro.circuit import GateType, Netlist
from repro.errors import NetlistError


def tiny():
    nl = Netlist("tiny")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.NOT, [g1])
    nl.set_outputs([g2])
    return nl


def test_add_gate_assigns_indices_in_order():
    nl = tiny()
    assert [g.index for g in nl.gates] == [0, 1, 2, 3]
    assert nl.gate("g1").fanin == [0, 1]


def test_duplicate_name_rejected():
    nl = tiny()
    with pytest.raises(NetlistError, match="duplicate"):
        nl.add_gate("g1", GateType.NOT, [0])


def test_bad_arity_rejected():
    nl = tiny()
    with pytest.raises(NetlistError):
        nl.add_gate("bad", GateType.NOT, [0, 1])
    with pytest.raises(NetlistError):
        nl.add_gate("bad2", GateType.INPUT, [0])


def test_dangling_fanin_rejected():
    nl = tiny()
    with pytest.raises(NetlistError, match="out of range"):
        nl.add_gate("bad", GateType.NOT, [99])


def test_gate_lookup_by_name_and_index():
    nl = tiny()
    assert nl.gate("a").index == nl.index_of("a")
    assert nl.gate(0).name == "a"
    with pytest.raises(NetlistError, match="no gate named"):
        nl.gate("nope")


def test_fanouts_with_multiplicity():
    nl = Netlist("fan")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.AND, [a, a])
    nl.set_outputs([g])
    assert nl.fanouts()[a] == [g, g]


def test_topo_order_respects_dependencies():
    nl = tiny()
    order = nl.topo_order()
    pos = {idx: i for i, idx in enumerate(order)}
    for gate in nl.gates:
        for src in gate.fanin:
            assert pos[src] < pos[gate.index]


def test_topo_order_includes_detached_gates():
    nl = tiny()
    orphan = nl.add_gate("orphan", GateType.OR, [0, 1])
    assert orphan in nl.topo_order()
    assert orphan not in nl.live_set()


def test_cycle_detected():
    nl = Netlist("cyc")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.AND, [a, a])
    g2 = nl.add_gate("g2", GateType.OR, [g1, a])
    nl.gates[g1].fanin = [a, g2]  # force a cycle behind the API
    nl._dirty()
    nl.set_outputs([g2])
    with pytest.raises(NetlistError, match="cycle"):
        nl.topo_order()


def test_dff_breaks_combinational_cycles():
    nl = Netlist("seq")
    a = nl.add_input("a")
    ff = nl.add_gate("ff", GateType.DFF, [a])
    g = nl.add_gate("g", GateType.AND, [a, ff])
    nl.gates[ff].fanin = [g]  # feedback through the DFF is legal
    nl._dirty()
    nl.set_outputs([g])
    assert set(nl.topo_order()) == {a, ff, g}
    assert not nl.is_combinational


def test_levels_monotone():
    nl = tiny()
    levels = nl.levels()
    assert levels[nl.index_of("a")] == 0
    assert levels[nl.index_of("g1")] == 1
    assert levels[nl.index_of("g2")] == 2


def test_cones():
    nl = tiny()
    a = nl.index_of("a")
    g2 = nl.index_of("g2")
    assert g2 in nl.fanout_cone(a)
    assert a in nl.fanin_cone(g2)
    assert nl.fanin_cone(a) == {a}


def test_copy_is_independent():
    nl = tiny()
    dup = nl.copy()
    dup.set_gate_type(dup.index_of("g1"), GateType.OR)
    assert nl.gate("g1").gtype is GateType.AND
    dup.gates[0].fanin.append  # no-op; just ensure lists are distinct
    assert dup.gates[2].fanin is not nl.gates[2].fanin


def test_set_gate_type_checks_arity():
    nl = tiny()
    with pytest.raises(NetlistError):
        nl.set_gate_type(nl.index_of("g2"), GateType.INPUT)
    nl.set_gate_type(nl.index_of("g1"), GateType.NOR)
    assert nl.gate("g1").gtype is GateType.NOR


def test_replace_and_remove_fanin_pin():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    g = nl.add_gate("g", GateType.AND, [a, b, c])
    nl.set_outputs([g])
    nl.replace_fanin_pin(g, 1, c)
    assert nl.gates[g].fanin == [a, c, c]
    nl.remove_fanin_pin(g, 0)
    assert nl.gates[g].fanin == [c, c]
    with pytest.raises(NetlistError, match="no pin"):
        nl.remove_fanin_pin(g, 5)


def test_remove_fanin_pin_degrades_to_unary():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g = nl.add_gate("g", GateType.NAND, [a, b])
    nl.set_outputs([g])
    nl.remove_fanin_pin(g, 1)
    assert nl.gates[g].gtype is GateType.NOT
    with pytest.raises(NetlistError, match="1-input"):
        nl.remove_fanin_pin(g, 0)


def test_add_fanin_pin_promotes_unary():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    nl.add_fanin_pin(g, b)
    assert nl.gates[g].gtype is GateType.NAND
    assert nl.gates[g].fanin == [a, b]


def test_insert_gate_on_stem_rewires_everything():
    nl = Netlist("x")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.BUF, [a])
    g2 = nl.add_gate("g2", GateType.NOT, [a])
    nl.set_outputs([g1, g2, a])
    inv = nl.insert_gate_on_stem(a, GateType.NOT)
    assert nl.gates[g1].fanin == [inv]
    assert nl.gates[g2].fanin == [inv]
    assert nl.outputs == [g1, g2, inv]
    assert nl.gates[inv].fanin == [a]


def test_insert_gate_on_branch_rewires_one_pin():
    nl = Netlist("x")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.BUF, [a])
    g2 = nl.add_gate("g2", GateType.NOT, [a])
    nl.set_outputs([g1, g2])
    inv = nl.insert_gate_on_branch(g2, 0, GateType.NOT)
    assert nl.gates[g1].fanin == [a]
    assert nl.gates[g2].fanin == [inv]


def test_bypass_gate():
    nl = Netlist("x")
    a = nl.add_input("a")
    inv = nl.add_gate("inv", GateType.NOT, [a])
    g = nl.add_gate("g", GateType.BUF, [inv])
    nl.set_outputs([g, inv])
    nl.bypass_gate(inv)
    assert nl.gates[g].fanin == [a]
    assert nl.outputs == [g, a]
    with pytest.raises(NetlistError):
        nl.bypass_gate(g if len(nl.gates[g].fanin) != 1 else a)


def test_tie_stem_to_constant():
    nl = tiny()
    g1 = nl.index_of("g1")
    const = nl.tie_stem_to_constant(g1, 1)
    assert nl.gates[const].gtype is GateType.CONST1
    assert nl.gate("g2").fanin == [const]
    # g1 itself is now detached from the outputs
    assert g1 not in nl.live_set()


def test_tie_branch_to_constant():
    nl = Netlist("x")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.BUF, [a])
    g2 = nl.add_gate("g2", GateType.NOT, [a])
    nl.set_outputs([g1, g2])
    const = nl.tie_branch_to_constant(g2, 0, 0)
    assert nl.gates[g2].fanin == [const]
    assert nl.gates[g1].fanin == [a]  # other branch untouched


def test_compacted_drops_detached_keeps_inputs():
    nl = tiny()
    nl.add_gate("orphan", GateType.OR, [0, 1])
    packed = nl.compacted()
    names = {g.name for g in packed.gates}
    assert "orphan" not in names
    assert {"a", "b", "g1", "g2"} <= names
    assert packed.num_outputs == 1


def test_fresh_name():
    nl = tiny()
    assert nl.fresh_name("new") == "new"
    assert nl.fresh_name("g1") == "g1_1"


def test_stats(c17):
    stats = c17.stats()
    assert stats["gates"] == 11
    assert stats["inputs"] == 5
    assert stats["outputs"] == 2
    assert stats["depth"] == 3


# ----------------------------------------------------------------------
# derived-structure caching and invalidation
# ----------------------------------------------------------------------
def test_cone_caches_are_stable_between_calls():
    nl = tiny()
    a = nl.index_of("a")
    assert nl.sorted_cone(a) is nl.sorted_cone(a)
    assert nl.fanout_cone(a) is nl.fanout_cone(a)
    assert nl.event_fanouts() is nl.event_fanouts()
    assert nl.levels() is nl.levels()
    assert nl.topo_positions() is nl.topo_positions()


def test_sorted_cone_is_topologically_ordered():
    nl = tiny()
    a = nl.index_of("a")
    cone = nl.sorted_cone(a)
    pos = nl.topo_positions()
    assert set(cone) == nl.fanout_cone(a)
    assert list(cone) == sorted(cone, key=pos.__getitem__)


def test_mutation_updates_cone_and_level_caches():
    nl = tiny()
    a = nl.index_of("a")
    g2 = nl.index_of("g2")
    before_cone = nl.sorted_cone(a)
    before_sets = nl.fanout_cone(a)
    lev_g2 = nl.levels()[g2]
    # new consumer of g2 must show up in every derived structure; cones
    # containing g2 are dropped, event fanouts and levels are patched in
    # place (the cached objects may be reused — content is the contract)
    g3 = nl.add_gate("g3", GateType.NOT, [g2])
    nl.set_outputs([g3])
    after_cone = nl.sorted_cone(a)
    assert after_cone is not before_cone
    assert g3 in after_cone
    after_sets = nl.fanout_cone(a)
    assert after_sets is not before_sets
    assert g3 in after_sets
    assert g3 in nl.event_fanouts()[g2]
    assert nl.levels()[g3] == lev_g2 + 1
    assert nl.levels() == nl.copy().levels()


def test_replace_fanin_pin_invalidates_cones():
    nl = tiny()
    a = nl.index_of("a")
    b = nl.index_of("b")
    g1 = nl.index_of("g1")
    assert g1 in nl.fanout_cone(a)
    nl.replace_fanin_pin(g1, 0, b)  # g1 now reads b twice
    assert nl.fanout_cone(a) == {a}
    assert nl.fanout_cone(b) == {b, g1, nl.index_of("g2")}
    # multi-pin consumer appears once in the deduplicated event fanouts
    assert nl.event_fanouts()[b] == (g1,)
    assert nl.fanouts()[b] == [g1, g1]


def test_set_fanin_invalidates_event_fanouts():
    nl = tiny()
    a = nl.index_of("a")
    b = nl.index_of("b")
    g1 = nl.index_of("g1")
    assert nl.event_fanouts()[a] == (g1,)
    nl.set_fanin(g1, [b, b])
    assert nl.event_fanouts()[a] == ()
    assert nl.event_fanouts()[b] == (g1,)


def test_event_fanouts_exclude_dff_sinks():
    nl = Netlist("seq")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    ff = nl.add_gate("ff", GateType.DFF, [g])
    h = nl.add_gate("h", GateType.BUF, [g])
    nl.set_outputs([ff, h])
    assert ff in nl.fanouts()[g]
    assert nl.event_fanouts()[g] == (h,)
