"""The line model: stems, branches and the ISCAS line count."""

from repro.circuit import GateType, LineKind, LineTable, Netlist


def test_c17_has_17_lines(c17):
    """c17 famously has 17 lines: 11 signals + 6 fanout branches."""
    table = LineTable(c17)
    assert table.num_stems == 11
    assert table.num_branches == 6
    assert len(table) == 17


def test_single_fanout_has_no_branch():
    nl = Netlist("x")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.BUF, [a])
    nl.set_outputs([g])
    table = LineTable(nl)
    assert table.num_branches == 0
    assert table.branch(g, 0) is None


def test_branch_lookup_and_describe():
    nl = Netlist("x")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.BUF, [a])
    g2 = nl.add_gate("g2", GateType.NOT, [a])
    nl.set_outputs([g1, g2])
    table = LineTable(nl)
    branch = table.branch(g2, 0)
    assert branch is not None
    assert branch.kind is LineKind.BRANCH
    assert branch.driver == a
    assert branch.describe(nl) == "a->g2.0"
    stem = table.stem(a)
    assert stem.is_stem
    assert stem.describe(nl) == "a"


def test_only_live_filter():
    nl = Netlist("x")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.BUF, [a])
    orphan = nl.add_gate("orphan", GateType.NOT, [a])
    nl.set_outputs([g])
    live_table = LineTable(nl, only_live=True)
    full_table = LineTable(nl, only_live=False)
    live_names = {line.describe(nl) for line in live_table}
    full_names = {line.describe(nl) for line in full_table}
    assert "orphan" not in live_names
    assert "orphan" in full_names


def test_deterministic_order(c17):
    t1 = LineTable(c17)
    t2 = LineTable(c17)
    assert [l.describe(c17) for l in t1] == [l.describe(c17) for l in t2]
    # stems first, then branches
    kinds = [l.kind for l in t1]
    first_branch = kinds.index(LineKind.BRANCH)
    assert all(k is LineKind.STEM for k in kinds[:first_branch])
    assert all(k is LineKind.BRANCH for k in kinds[first_branch:])
