"""ISCAS .bench parsing and serialization."""

import pytest

from repro.circuit import GateType, bench_io, validate
from repro.errors import ParseError
from repro.sim import PatternSet, equivalent, output_rows, simulate


def test_parse_c17(c17):
    assert c17.num_inputs == 5
    assert c17.num_outputs == 2
    assert sum(1 for g in c17.gates
               if g.gtype is GateType.NAND) == 6


def test_parse_s27(s27):
    assert s27.num_inputs == 4
    assert s27.num_outputs == 1
    assert len(s27.dffs()) == 3
    assert not s27.is_combinational


def test_roundtrip_preserves_function(c17):
    text = bench_io.dumps(c17)
    back = bench_io.loads(text, "c17_back")
    validate(back)
    patterns = PatternSet.exhaustive(5)
    a = output_rows(c17, simulate(c17, patterns))
    b = output_rows(back, simulate(back, patterns))
    assert equivalent(a, b, patterns.nbits)


def test_roundtrip_sequential(s27):
    text = bench_io.dumps(s27)
    back = bench_io.loads(text)
    assert len(back.dffs()) == 3
    assert back.num_inputs == 4


def test_file_roundtrip(tmp_path, c17):
    path = tmp_path / "c17.bench"
    bench_io.dump(c17, path)
    back = bench_io.load(path)
    assert back.name == "c17"
    assert len(back.gates) == len(c17.gates)


def test_comments_and_case_insensitivity():
    nl = bench_io.loads("""
    # a comment
    INPUT(x)   # trailing comment
    output(y)
    y = nand(x, x)
    """)
    assert nl.num_inputs == 1
    assert nl.gate("y").gtype is GateType.NAND


def test_buff_and_inv_aliases():
    nl = bench_io.loads("""
    INPUT(x)
    OUTPUT(y)
    a = BUFF(x)
    y = INV(a)
    """)
    assert nl.gate("a").gtype is GateType.BUF
    assert nl.gate("y").gtype is GateType.NOT


def test_unknown_gate_rejected():
    with pytest.raises(ParseError, match="unknown gate"):
        bench_io.loads("INPUT(x)\nOUTPUT(y)\ny = FROB(x)\n")


def test_undefined_signal_rejected():
    with pytest.raises(ParseError, match="never defined"):
        bench_io.loads("INPUT(x)\nOUTPUT(y)\ny = AND(x, ghost)\n")


def test_undefined_output_rejected():
    with pytest.raises(ParseError, match="never defined"):
        bench_io.loads("INPUT(x)\nOUTPUT(nope)\ny = NOT(x)\n")


def test_double_definition_rejected():
    with pytest.raises(ParseError, match="defined twice"):
        bench_io.loads("INPUT(x)\nOUTPUT(y)\ny = NOT(x)\ny = BUFF(x)\n")


def test_combinational_cycle_rejected():
    with pytest.raises(ParseError, match="cycle"):
        bench_io.loads("""
        INPUT(x)
        OUTPUT(a)
        a = AND(x, b)
        b = NOT(a)
        """)


def test_dff_cycle_allowed():
    nl = bench_io.loads("""
    INPUT(x)
    OUTPUT(q)
    q = DFF(d)
    d = AND(x, q)
    """)
    assert nl.gate("q").gtype is GateType.DFF
    assert nl.gate("q").fanin == [nl.index_of("d")]


def test_garbage_line_rejected():
    with pytest.raises(ParseError, match="cannot parse"):
        bench_io.loads("INPUT(x)\nOUTPUT(x)\nthis is not bench\n")


def test_dff_arity_enforced():
    with pytest.raises(ParseError):
        bench_io.loads("INPUT(x)\nOUTPUT(q)\nq = DFF(x, x)\n")
