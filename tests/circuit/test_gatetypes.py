"""Gate semantics: scalar truth tables and bit-parallel consistency."""

import itertools

import numpy as np
import pytest

from repro.circuit.gatetypes import (GateType, INVERTED_COUNTERPART,
                                     LOGIC_TYPES, MULTI_INPUT_TYPES,
                                     REPLACEMENT_CLASSES, SOURCE_TYPES,
                                     UNARY_TYPES, arity_ok,
                                     controlling_value, eval_scalar,
                                     eval_words, has_controlling_value)

BINARY_TRUTH = {
    GateType.AND: [0, 0, 0, 1],
    GateType.NAND: [1, 1, 1, 0],
    GateType.OR: [0, 1, 1, 1],
    GateType.NOR: [1, 0, 0, 0],
    GateType.XOR: [0, 1, 1, 0],
    GateType.XNOR: [1, 0, 0, 1],
}


@pytest.mark.parametrize("gtype,truth", sorted(BINARY_TRUTH.items(),
                                               key=lambda kv: kv[0].name))
def test_binary_truth_tables(gtype, truth):
    for a, b in itertools.product((0, 1), repeat=2):
        assert eval_scalar(gtype, [a, b]) == truth[2 * a + b]
        # all these gates are commutative
        assert eval_scalar(gtype, [b, a]) == truth[2 * a + b]


def test_unary_truth_tables():
    assert eval_scalar(GateType.NOT, [0]) == 1
    assert eval_scalar(GateType.NOT, [1]) == 0
    assert eval_scalar(GateType.BUF, [0]) == 0
    assert eval_scalar(GateType.BUF, [1]) == 1


def test_constants():
    assert eval_scalar(GateType.CONST0, []) == 0
    assert eval_scalar(GateType.CONST1, []) == 1


@pytest.mark.parametrize("n_inputs", [1, 2, 3, 4])
@pytest.mark.parametrize("gtype", sorted(MULTI_INPUT_TYPES,
                                         key=lambda g: g.name))
def test_words_match_scalar(gtype, n_inputs):
    """Bit-parallel evaluation agrees with the scalar oracle on every
    input combination, bit position by bit position."""
    combos = list(itertools.product((0, 1), repeat=n_inputs))
    words = []
    for pin in range(n_inputs):
        packed = 0
        for bit, combo in enumerate(combos):
            packed |= combo[pin] << bit
        words.append(np.array([packed], dtype=np.uint64))
    result = eval_words(gtype, words)
    for bit, combo in enumerate(combos):
        expected = eval_scalar(gtype, combo)
        assert (int(result[0]) >> bit) & 1 == expected, (gtype, combo)


def test_words_not_flips_all_bits():
    x = np.array([0x00FF00FF00FF00FF], dtype=np.uint64)
    assert int(eval_words(GateType.NOT, [x])[0]) == 0xFF00FF00FF00FF00


def test_controlling_values():
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NAND) == 0
    assert controlling_value(GateType.OR) == 1
    assert controlling_value(GateType.NOR) == 1
    for gtype in (GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
        assert controlling_value(gtype) is None
    assert has_controlling_value(GateType.AND)
    assert not has_controlling_value(GateType.XOR)


def test_arity_rules():
    for gtype in SOURCE_TYPES:
        assert arity_ok(gtype, 0)
        assert not arity_ok(gtype, 1)
    for gtype in UNARY_TYPES:
        assert arity_ok(gtype, 1)
        assert not arity_ok(gtype, 2)
    for gtype in MULTI_INPUT_TYPES:
        assert arity_ok(gtype, 2)
        assert arity_ok(gtype, 5)
        assert not arity_ok(gtype, 0)


def test_inverted_counterparts_are_involutions():
    for gtype, inv in INVERTED_COUNTERPART.items():
        assert INVERTED_COUNTERPART[inv] is gtype
        # semantic check on two inputs (or one for BUF/NOT)
        n = 1 if gtype in UNARY_TYPES else 2
        for combo in itertools.product((0, 1), repeat=n):
            assert eval_scalar(gtype, combo) == 1 - eval_scalar(inv, combo)


def test_replacement_classes_exclude_self():
    for gtype, repls in REPLACEMENT_CLASSES.items():
        assert gtype not in repls
        assert len(set(repls)) == len(repls)


def test_eval_scalar_rejects_input_type_without_values():
    with pytest.raises(IndexError):
        eval_scalar(GateType.BUF, [])


def test_logic_types_partition():
    assert GateType.DFF not in LOGIC_TYPES
    assert GateType.INPUT not in LOGIC_TYPES
    assert GateType.AND in LOGIC_TYPES
    assert GateType.NOT in LOGIC_TYPES
