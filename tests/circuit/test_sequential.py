"""Full-scan transform and cycle-accurate sequential simulation."""

import random

from repro.circuit import (GateType, SequentialSimulator, full_scan,
                           generators)
from repro.sim import PatternSet, output_rows, simulate
from repro.sim.packing import unpack_bits


def test_full_scan_structure(s27):
    scan, smap = full_scan(s27)
    assert scan.is_combinational
    assert scan.num_inputs == 4 + 3       # PIs + PPIs
    assert scan.num_outputs == 1 + 3      # POs + PPOs
    assert smap.num_pis == 4
    assert smap.num_pos == 1
    assert len(smap.ppi_of_dff) == 3


def test_full_scan_of_combinational_is_identity(c17):
    scan, smap = full_scan(c17)
    assert scan.num_inputs == c17.num_inputs
    assert scan.num_outputs == c17.num_outputs
    assert not smap.ppi_of_dff


def test_scan_model_matches_one_cycle_of_sequential(s27):
    """One scan-load + capture == one cycle of the sequential machine.

    For every (state, input) pair: feeding the state through the PPIs
    must reproduce the cycle simulator's outputs on the real POs and its
    next state on the PPOs.
    """
    scan, smap = full_scan(s27)
    rng = random.Random(7)
    dffs = s27.dffs()
    pi_names = [s27.gates[i].name for i in s27.inputs]
    for _ in range(50):
        state = {dff: rng.randint(0, 1) for dff in dffs}
        pis = {name: rng.randint(0, 1) for name in pi_names}
        # cycle-accurate reference
        sim = SequentialSimulator(s27)
        sim.state = dict(state)
        ref_out = sim.step(pis)
        ref_next = dict(sim.state)
        # scan model: one combinational evaluation
        vector = []
        for gate_idx in scan.inputs:
            name = scan.gates[gate_idx].name
            if name in pis:
                vector.append(pis[name])
            else:  # a PPI carries the DFF's current state
                dff = s27.index_of(name)
                vector.append(state[dff])
        patterns = PatternSet.from_vectors([vector])
        out = unpack_bits(output_rows(scan, simulate(scan, patterns)), 1)
        for pos in range(smap.num_pos):
            assert out[pos, 0] == ref_out[pos]
        for dff, ppo_pos in smap.ppo_of_dff.items():
            assert out[ppo_pos, 0] == ref_next[dff]


def test_sequential_simulator_reset():
    s27 = generators.s27()
    sim = SequentialSimulator(s27, initial_state=1)
    assert all(v == 1 for v in sim.state.values())
    sim.reset(0)
    assert all(v == 0 for v in sim.state.values())


def test_sequential_simulator_runs_a_trace(s27):
    sim = SequentialSimulator(s27)
    rng = random.Random(1)
    names = [s27.gates[i].name for i in s27.inputs]
    seen = set()
    for _ in range(20):
        out = sim.step({n: rng.randint(0, 1) for n in names})
        assert set(out) == {0}
        assert out[0] in (0, 1)
        seen.add(tuple(sim.state.values()))
    assert len(seen) > 1  # the machine actually moves
