"""Additional netlist mutation coverage."""

import pytest

from repro.circuit import GateType, Netlist
from repro.errors import NetlistError
from repro.sim import PatternSet, simulate
from repro.sim.packing import unpack_bits


def test_insert_binary_on_stem():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    y = nl.add_gate("y", GateType.BUF, [a])
    nl.set_outputs([y, a])
    new = nl.insert_binary_on_stem(a, GateType.AND, b)
    # consumers and PO slots now read AND(a, b)
    assert nl.gates[y].fanin == [new]
    assert nl.outputs[1] == new
    assert nl.gates[new].fanin == [a, b]
    patterns = PatternSet.exhaustive(2)
    outs = unpack_bits(simulate(nl, patterns)[[y]], 4)
    for v in range(4):
        bits = patterns.vector(v)
        assert outs[0, v] == (bits[0] & bits[1])


def test_insert_binary_name_collision_handled():
    nl = Netlist("x")
    a = nl.add_input("a")
    b = nl.add_input("b")
    nl.add_gate("a_and2", GateType.AND, [a, b])  # occupy the name
    y = nl.add_gate("y", GateType.BUF, [a])
    nl.set_outputs([y])
    new = nl.insert_binary_on_stem(a, GateType.AND, b)
    assert nl.gates[new].name != "a_and2"


def test_set_fanin_checks_arity():
    nl = Netlist("x")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    with pytest.raises(NetlistError):
        nl.set_fanin(g, [a, a])
    nl.set_fanin(g, [a])  # same arity fine


def test_compacted_renumbers_consistently(alu4):
    from repro.circuit import validate
    mutated = alu4.copy()
    mutated.tie_stem_to_constant(mutated.index_of("fa1_s"), 0)
    packed = mutated.compacted("packed")
    validate(packed)
    # detached subtree gone, function preserved on outputs
    from repro.sim import equivalent, output_rows
    patterns = PatternSet.random(alu4.num_inputs, 128, seed=0)
    assert equivalent(
        output_rows(mutated, simulate(mutated, patterns)),
        output_rows(packed, simulate(packed, patterns)), 128)


def test_repr_and_len(c17):
    assert len(c17) == 11
    assert "c17" in repr(c17)
