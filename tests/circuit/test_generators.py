"""Functional correctness of the benchmark circuit generators."""

import pytest

from repro.circuit import generators, validate
from repro.circuit.lines import LineTable
from repro.sim import PatternSet, output_rows, simulate
from repro.sim.packing import unpack_bits


def _io_bits(netlist, patterns):
    values = simulate(netlist, patterns)
    ins = unpack_bits(patterns.words, patterns.nbits)
    outs = unpack_bits(output_rows(netlist, values), patterns.nbits)
    return ins, outs


def _word(bits, lo, width, vec):
    return sum(int(bits[lo + i, vec]) << i for i in range(width))


def test_ripple_carry_adder_exhaustive():
    nl = generators.ripple_carry_adder(3)
    patterns = PatternSet.exhaustive(7)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 3, v)
        b = _word(ins, 3, 3, v)
        cin = ins[6, v]
        assert _word(outs, 0, 4, v) == a + b + cin


def test_array_multiplier_exhaustive(mult3):
    patterns = PatternSet.exhaustive(6)
    ins, outs = _io_bits(mult3, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 3, v)
        b = _word(ins, 3, 3, v)
        assert _word(outs, 0, 6, v) == a * b


def test_array_multiplier_sampled_width8():
    nl = generators.array_multiplier(8)
    patterns = PatternSet.random(16, 256, seed=5)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 8, v)
        b = _word(ins, 8, 8, v)
        assert _word(outs, 0, 16, v) == a * b


def test_comparator():
    nl = generators.comparator(4)
    patterns = PatternSet.exhaustive(8)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 4, v)
        b = _word(ins, 4, 4, v)
        gt, eq, lt = outs[0, v], outs[1, v], outs[2, v]
        assert (gt, eq, lt) == (int(a > b), int(a == b), int(a < b))


@pytest.mark.parametrize("op,expected", [
    (0, lambda a, b, w: (a + b) % (1 << w)),           # ADD
    (1, lambda a, b, w: (a - b) % (1 << w)),           # SUB
    (2, lambda a, b, w: a & b),                        # AND
    (3, lambda a, b, w: a | b),                        # OR
    (4, lambda a, b, w: a ^ b),                        # XOR
    (5, lambda a, b, w: (~(a | b)) % (1 << w)),        # NOR
    (6, lambda a, b, w: a),                            # pass A
    (7, lambda a, b, w: (~a) % (1 << w)),              # NOT A
])
def test_alu_ops(op, expected):
    width = 4
    nl = generators.alu(width)
    vectors = []
    cases = [(3, 9), (15, 15), (0, 0), (7, 12), (1, 2), (10, 5)]
    for a, b in cases:
        bits = [(a >> i) & 1 for i in range(width)]
        bits += [(b >> i) & 1 for i in range(width)]
        bits += [(op >> i) & 1 for i in range(3)]
        vectors.append(bits)
    patterns = PatternSet.from_vectors(vectors)
    outs = unpack_bits(output_rows(nl, simulate(nl, patterns)),
                       patterns.nbits)
    for v, (a, b) in enumerate(cases):
        got = _word(outs, 0, width, v)
        want = expected(a, b, width)
        assert got == want, (op, a, b, got, want)
        zero_flag = outs[width + 1, v]
        assert zero_flag == int(want == 0)


def test_barrel_shifter():
    width = 8
    nl = generators.barrel_shifter(width)
    cases = [(0b10110001, s) for s in range(8)]
    vectors = []
    for data, shift in cases:
        bits = [(data >> i) & 1 for i in range(width)]
        bits += [(shift >> i) & 1 for i in range(3)]
        vectors.append(bits)
    patterns = PatternSet.from_vectors(vectors)
    outs = unpack_bits(output_rows(nl, simulate(nl, patterns)),
                       patterns.nbits)
    for v, (data, shift) in enumerate(cases):
        assert _word(outs, 0, width, v) == (data << shift) & 0xFF


def test_priority_encoder():
    width = 8
    nl = generators.priority_encoder(width)
    patterns = PatternSet.exhaustive(width)
    ins, outs = _io_bits(nl, patterns)
    bits = max(1, (width - 1).bit_length())
    for v in range(patterns.nbits):
        req = _word(ins, 0, width, v)
        valid = outs[bits, v]
        assert valid == int(req != 0)
        if req:
            assert _word(outs, 0, bits, v) == req.bit_length() - 1


def test_decoder():
    nl = generators.decoder(3)
    patterns = PatternSet.exhaustive(4)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        sel = _word(ins, 0, 3, v)
        en = ins[3, v]
        for code in range(8):
            assert outs[code, v] == int(en and code == sel)


def test_parity_tree():
    nl = generators.parity_tree(9)
    patterns = PatternSet.exhaustive(9)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        assert outs[0, v] == _word(ins, 0, 9, v).bit_count() % 2


def test_hamming_corrector_fixes_single_bit_errors():
    data_bits = 8
    nl = generators.hamming_corrector(data_bits)
    # parity bit count for 8 data bits is 4
    p = nl.num_inputs - data_bits
    import random
    rng = random.Random(0)

    def encode(data):
        # mirror the generator's position convention
        n = data_bits + p
        codeword = {}
        di = 0
        data_positions = []
        for pos in range(1, n + 1):
            if pos & (pos - 1) == 0:
                continue
            codeword[pos] = (data >> di) & 1
            data_positions.append(pos)
            di += 1
        parities = []
        for bit in range(p):
            par = 0
            for pos, val in codeword.items():
                if (pos >> bit) & 1:
                    par ^= val
            parities.append(par)
        return codeword, parities, data_positions

    vectors = []
    expect = []
    for _ in range(40):
        data = rng.randrange(1 << data_bits)
        codeword, parities, dpos = encode(data)
        flip = rng.choice([None] + dpos)
        bits_in = []
        for pos in dpos:
            val = codeword[pos] ^ (1 if pos == flip else 0)
            bits_in.append(val)
        bits_in += parities
        vectors.append(bits_in)
        expect.append((data, flip is not None))
    patterns = PatternSet.from_vectors(vectors)
    nlout = unpack_bits(output_rows(nl, simulate(nl, patterns)),
                        patterns.nbits)
    for v, (data, had_error) in enumerate(expect):
        assert _word(nlout, 0, data_bits, v) == data
        assert nlout[data_bits, v] == int(had_error)


def test_random_dag_is_valid_and_deterministic():
    a = generators.random_dag(8, 60, 4, seed=42)
    b = generators.random_dag(8, 60, 4, seed=42)
    validate(a)
    assert [g.gtype for g in a.gates] == [g.gtype for g in b.gates]
    assert [g.fanin for g in a.gates] == [g.fanin for g in b.gates]
    c = generators.random_dag(8, 60, 4, seed=43)
    assert [g.fanin for g in a.gates] != [g.fanin for g in c.gates]


def test_random_sequential_has_feedback():
    nl = generators.random_sequential(6, 80, 5, 4, seed=1)
    validate(nl)
    assert len(nl.dffs()) == 5
    assert not nl.is_combinational


def test_suite_names_unique_and_valid():
    suite = generators.benchmark_suite(scale=0.25)
    names = [c.name for c in suite]
    assert len(names) == len(set(names))
    for circuit in suite:
        validate(circuit)
        assert len(LineTable(circuit)) > 0


def test_by_name():
    nl = generators.by_name("c17")
    assert nl.name == "c17"
    with pytest.raises(KeyError):
        generators.by_name("nope")


def test_carry_lookahead_adder():
    nl = generators.carry_lookahead_adder(4)
    patterns = PatternSet.exhaustive(9)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 4, v)
        b = _word(ins, 4, 4, v)
        cin = ins[8, v]
        assert _word(outs, 0, 5, v) == a + b + cin


def test_kogge_stone_adder():
    nl = generators.kogge_stone_adder(5)
    patterns = PatternSet.random(10, 200, seed=4)
    ins, outs = _io_bits(nl, patterns)
    for v in range(patterns.nbits):
        a = _word(ins, 0, 5, v)
        b = _word(ins, 5, 5, v)
        assert _word(outs, 0, 6, v) == a + b


def test_crc_checker_matches_reference():
    poly, crc_bits, data_bits = 0x5, 3, 10
    nl = generators.crc_checker(data_bits, poly=poly, crc_bits=crc_bits)
    patterns = PatternSet.random(data_bits, 256, seed=0)
    ins, outs = _io_bits(nl, patterns)

    def reference(bits):
        state = [0] * crc_bits
        for d in bits:
            feedback = state[-1] ^ d
            nxt = []
            for k in range(crc_bits):
                val = state[k - 1] if k else 0
                if (poly >> k) & 1:
                    val ^= feedback
                nxt.append(val)
            state = nxt
        return state

    for v in range(patterns.nbits):
        bits = [int(ins[i, v]) for i in range(data_bits)]
        got = [int(outs[k, v]) for k in range(crc_bits)]
        assert got == reference(bits), (v, bits)


def test_lfsr_loads_and_shifts():
    from repro.circuit import SequentialSimulator
    width = 5
    nl = generators.lfsr(width, taps=(0, 2))
    sim = SequentialSimulator(nl)
    seed_value = [1, 0, 1, 1, 0]
    inputs = {"load": 1}
    inputs.update({f"seed{i}": seed_value[i] for i in range(width)})
    sim.step(inputs)                 # load cycle
    assert [sim.state[ff] for ff in nl.dffs()] == seed_value
    inputs["load"] = 0
    before = [sim.state[ff] for ff in nl.dffs()]
    sim.step(inputs)                 # shift cycle
    after = [sim.state[ff] for ff in nl.dffs()]
    assert after[1:] == before[:-1]  # shifted by one
