"""Structural validation checks."""

import pytest

from repro.circuit import GateType, Netlist, issues, validate
from repro.errors import NetlistError


def good():
    nl = Netlist("g")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    return nl


def test_good_netlist_has_no_issues():
    assert issues(good()) == []
    validate(good())


def test_no_outputs_detected():
    nl = good()
    nl.outputs = []
    assert any("no primary outputs" in p for p in issues(nl))
    with pytest.raises(NetlistError):
        validate(nl)


def test_no_inputs_detected():
    nl = Netlist("x")
    c = nl.add_gate("c", GateType.CONST1)
    nl.set_outputs([c])
    assert any("no primary inputs" in p for p in issues(nl))


def test_bad_index_field_detected():
    nl = good()
    nl.gates[1].index = 42
    assert any("index field" in p for p in issues(nl))


def test_duplicate_names_detected():
    nl = good()
    nl.gates[1].name = "a"
    assert any("duplicate" in p for p in issues(nl))


def test_duplicate_name_reported_once():
    """A name occurring K times yields ONE problem, not K-1."""
    nl = Netlist("d")
    nl.add_input("a")
    nl.add_gate("b", GateType.NOT, [0])
    nl.add_gate("c", GateType.NOT, [0])
    nl.set_outputs([1, 2])
    nl.gates[1].name = "a"
    nl.gates[2].name = "a"
    dupes = [p for p in issues(nl) if "duplicate" in p]
    assert len(dupes) == 1
    assert "3 gates" in dupes[0]


def test_bad_arity_detected():
    nl = good()
    nl.gates[1].fanin = [0, 0]
    assert any("NOT with 2" in p for p in issues(nl))


def test_out_of_range_fanin_detected():
    nl = good()
    nl.gates[1].fanin = [17]
    assert any("missing gate" in p for p in issues(nl))


def test_out_of_range_output_detected():
    nl = good()
    nl.outputs = [99]
    assert any("output references missing" in p for p in issues(nl))


def test_cycle_detected_by_validate():
    nl = Netlist("x")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.AND, [a, a])
    g2 = nl.add_gate("g2", GateType.OR, [g1, a])
    nl.gates[g1].fanin = [a, g2]
    nl._dirty()
    nl.set_outputs([g2])
    assert any("cycle" in p for p in issues(nl))


def test_validate_reports_count_of_extra_problems():
    nl = good()
    nl.outputs = []
    nl.gates[1].fanin = [0, 0]
    with pytest.raises(NetlistError, match="more"):
        validate(nl)
