"""Exception hierarchy and top-level API surface."""

import pytest

import repro
from repro.errors import (DiagnosisError, InjectionError, NetlistError,
                          ParseError, ReproError, SimulationError)


def test_all_errors_derive_from_repro_error():
    for exc_type in (NetlistError, ParseError, SimulationError,
                     InjectionError, DiagnosisError):
        assert issubclass(exc_type, ReproError)


def test_parse_error_carries_line_number():
    err = ParseError("bad token", line_no=42)
    assert "line 42" in str(err)
    assert err.line_no == 42
    plain = ParseError("no location")
    assert plain.line_no is None


def test_one_except_catches_everything(c17):
    from repro.circuit import bench_io
    with pytest.raises(ReproError):
        bench_io.loads("garbage ===")
    with pytest.raises(ReproError):
        c17.copy().gate("missing")


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2
