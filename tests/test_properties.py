"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit import LineTable, generators
from repro.diagnose import DiagnosisState, IncrementalDiagnoser
from repro.diagnose.config import DiagnosisConfig, Mode
from repro.faults import inject_stuck_at_faults
from repro.faults.models import (Correction, CorrectionKind,
                                 apply_correction, corrected_line_words)
from repro.sim import (PatternSet, output_rows, popcount, simulate)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 4_000), count=st.integers(1, 3))
def test_injected_faults_reproduce_as_corrections(seed, count):
    """Applying the ground-truth stuck-ats to the good netlist must
    reproduce the faulty implementation's behaviour exactly."""
    spec = generators.random_dag(5, 40, 3, seed=seed % 6)
    workload = inject_stuck_at_faults(spec, count, seed=seed)
    patterns = PatternSet.random(5, 192, seed=seed)
    table = LineTable(spec)
    modeled = spec.copy()
    for record in workload.truth:
        line = next(l for l in table if l.describe(spec) == record.site)
        kind = (CorrectionKind.STUCK_AT_1 if record.kind == "sa1"
                else CorrectionKind.STUCK_AT_0)
        apply_correction(modeled, table, Correction(line.index, kind))
    from repro.sim.compare import equivalent
    impl_out = output_rows(workload.impl,
                           simulate(workload.impl, patterns))
    modeled_out = output_rows(modeled, simulate(modeled, patterns))
    assert equivalent(impl_out, modeled_out, patterns.nbits)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 4_000))
def test_corrected_line_words_is_sound(seed):
    """Random circuit, random stuck-at/inverter correction: the
    no-mutation prediction equals the post-application simulation."""
    import random
    rng = random.Random(seed)
    circuit = generators.random_dag(5, 30, 3, seed=seed % 6)
    table = LineTable(circuit)
    patterns = PatternSet.random(5, 128, seed=seed)
    values = simulate(circuit, patterns)
    line = table[rng.randrange(len(table))]
    kind = rng.choice([CorrectionKind.STUCK_AT_0,
                       CorrectionKind.STUCK_AT_1,
                       CorrectionKind.INSERT_INVERTER])
    corr = Correction(line.index, kind)
    predicted = corrected_line_words(circuit, table, corr, values)
    mutated = circuit.copy()
    apply_correction(mutated, table, corr)
    new_values = simulate(mutated, patterns)
    new_gate = len(circuit.gates)  # all three kinds add one gate
    from repro.sim import tail_mask
    mask = tail_mask(patterns.nbits)
    assert (predicted[-1] & mask) == (new_values[new_gate][-1] & mask)
    assert np.array_equal(predicted[:-1], new_values[new_gate][:-1])


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2_000))
def test_diagnosis_state_invariants(seed):
    spec = generators.random_dag(5, 35, 3, seed=seed % 4)
    workload = inject_stuck_at_faults(spec, 2, seed=seed)
    patterns = PatternSet.random(5, 200, seed=seed + 1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(spec, patterns, device_out)
    # masks partition V
    assert state.num_err + state.num_corr == patterns.nbits
    assert popcount(state.err_mask & state.corr_mask) == 0
    # pair count is at least the vector count and at most vec * outputs
    assert state.num_err_pairs >= state.num_err
    assert state.num_err_pairs <= state.num_err * spec.num_outputs
    assert 0.0 <= state.v_ratio <= 1.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_engine_solutions_always_rectify(seed):
    """Whatever the engine returns, it is a valid correction set."""
    spec = generators.random_dag(5, 35, 3, seed=seed % 4)
    workload = inject_stuck_at_faults(spec, 2, seed=seed)
    patterns = PatternSet.random(5, 256, seed=seed + 1)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, max_nodes=1500,
                             time_budget=20.0)
    result = IncrementalDiagnoser(workload.impl, spec, patterns,
                                  config).run()
    from repro.diagnose import rectifies
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)
