"""Deep-rule regressions: planted defects the shallow rules miss."""

from repro.analyze import lint_netlist
from repro.circuit import GateType, Netlist


def planted_netlist() -> Netlist:
    """One provably-constant line and one duplicate pair, both invisible
    to the shallow semantic rules (no CONST gates, no repeated pins, no
    unreachable logic)."""
    nl = Netlist("planted")
    a = nl.add_input("a")
    b = nl.add_input("b")
    na = nl.add_gate("na", GateType.NOT, [a])
    k = nl.add_gate("k", GateType.AND, [a, na])   # == 0, by contradiction
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.AND, [b, a])  # duplicate of g1
    o1 = nl.add_gate("o1", GateType.OR, [k, g1])
    o2 = nl.add_gate("o2", GateType.XOR, [g2, na])
    nl.set_outputs([o1, o2])
    return nl


def odc_netlist() -> Netlist:
    """A line whose only path to a PO runs through an AND whose other
    input is a constant 0 hidden behind a buffer chain."""
    nl = Netlist("odc")
    a = nl.add_input("a")
    c0 = nl.add_gate("c0", GateType.CONST0, [])
    buf = nl.add_gate("buf", GateType.BUF, [c0])
    mid = nl.add_gate("mid", GateType.NOT, [a])
    dom = nl.add_gate("dom", GateType.AND, [mid, buf])
    nl.set_outputs([dom])
    return nl


def fired(report, rule):
    return [d for d in report.diagnostics if d.rule == rule]


def test_shallow_rules_miss_the_plants():
    report = lint_netlist(planted_netlist())
    assert report.clean


def test_deep_flags_planted_constant_line():
    report = lint_netlist(planted_netlist(), deep=True)
    diags = fired(report, "const-line")
    assert [d.gate for d in diags] == ["k"]
    assert diags[0].data["value"] == 0
    assert diags[0].data["proof"] == "implication-contradiction"


def test_deep_flags_planted_duplicate_pair():
    report = lint_netlist(planted_netlist(), deep=True)
    diags = fired(report, "duplicate-logic")
    assert any(set(d.data["gates"]) >= {"g1", "g2"} for d in diags)


def test_deep_flags_odc_masked_line():
    report = lint_netlist(odc_netlist(), deep=True)
    diags = fired(report, "odc-unobservable")
    assert {d.gate for d in diags} == {"a", "mid"}
    for d in diags:
        assert d.data["dominator"] == "dom"
        assert d.data["side_input"] in ("buf", "c0")
        assert d.data["controlling_value"] == 0
    # the shallow observability rule sees nothing: a path exists
    shallow = lint_netlist(odc_netlist())
    assert not fired(shallow, "unobservable-line")


def test_deep_group_not_run_by_default():
    report = lint_netlist(planted_netlist())
    assert "deep" not in {d.rule for d in report.diagnostics}
    assert "deep" not in report.skipped_groups  # not requested, not skipped


def test_deep_group_gated_on_earlier_errors():
    nl = planted_netlist()
    nl.gates[3].fanin = [42, 0]  # structural breakage
    report = lint_netlist(nl, deep=True)
    assert not report.ok
    assert "deep" in report.skipped_groups


def test_deep_rules_suppressible():
    report = lint_netlist(planted_netlist(), deep=True,
                          suppress=["const-line"])
    assert not fired(report, "const-line")
    assert fired(report, "duplicate-logic")


def test_deep_rules_skip_dead_logic():
    nl = planted_netlist()
    na2 = nl.add_gate("na2", GateType.NOT, [0])
    nl.add_gate("kdead", GateType.AND, [0, na2])  # dead const line
    report = lint_netlist(nl, deep=True)
    assert [d.gate for d in fired(report, "const-line")] == ["k"]
